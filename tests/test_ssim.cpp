// SSIM correctness and analytic-gradient validation. The gradient feeds
// USB's Alg. 2 loss, so this is load-bearing for the whole method.
#include <gtest/gtest.h>

#include "gradcheck.h"
#include "metrics/ssim.h"

namespace usb {
namespace {

using testing::expect_gradient_close;
using testing::fill_uniform;

TEST(Ssim, IdenticalImagesScoreOne) {
  Rng rng(1);
  Tensor x(Shape{1, 3, 16, 16});
  fill_uniform(x, rng, 0.0F, 1.0F);
  EXPECT_NEAR(ssim(x, x), 1.0F, 1e-4F);
}

TEST(Ssim, SymmetricInArguments) {
  Rng rng(2);
  Tensor x(Shape{1, 1, 16, 16});
  Tensor y(Shape{1, 1, 16, 16});
  fill_uniform(x, rng, 0.0F, 1.0F);
  fill_uniform(y, rng, 0.0F, 1.0F);
  EXPECT_NEAR(ssim(x, y), ssim(y, x), 1e-5F);
}

TEST(Ssim, DecreasesWithNoise) {
  Rng rng(3);
  Tensor x(Shape{1, 1, 20, 20});
  fill_uniform(x, rng, 0.2F, 0.8F);
  Tensor y_small = x;
  Tensor y_large = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    y_small[i] += rng.uniform_float(-0.02F, 0.02F);
    y_large[i] += rng.uniform_float(-0.3F, 0.3F);
  }
  const float s_small = ssim(x, y_small);
  const float s_large = ssim(x, y_large);
  EXPECT_GT(s_small, s_large);
  EXPECT_LT(s_large, 0.95F);
  EXPECT_GT(s_small, 0.8F);
}

TEST(Ssim, BoundedAboveByOne) {
  Rng rng(4);
  Tensor x(Shape{2, 1, 14, 14});
  Tensor y(Shape{2, 1, 14, 14});
  fill_uniform(x, rng, 0.0F, 1.0F);
  fill_uniform(y, rng, 0.0F, 1.0F);
  EXPECT_LE(ssim(x, y), 1.0F + 1e-5F);
}

TEST(Ssim, RejectsShapeMismatchAndTinyImages) {
  EXPECT_THROW((void)ssim(Tensor(Shape{1, 1, 16, 16}), Tensor(Shape{1, 1, 16, 15})),
               std::invalid_argument);
  EXPECT_THROW((void)ssim(Tensor(Shape{1, 1, 8, 8}), Tensor(Shape{1, 1, 8, 8})),
               std::invalid_argument);  // smaller than the 11x11 window
}

TEST(Ssim, ValueMatchesGradientVariant) {
  Rng rng(5);
  Tensor x(Shape{1, 3, 16, 16});
  Tensor y(Shape{1, 3, 16, 16});
  fill_uniform(x, rng, 0.0F, 1.0F);
  fill_uniform(y, rng, 0.0F, 1.0F);
  const SsimResult result = ssim_with_gradient(x, y);
  EXPECT_NEAR(result.value, ssim(x, y), 1e-5F);
  EXPECT_EQ(result.grad_y.shape(), y.shape());
}

TEST(Ssim, AnalyticGradientMatchesFiniteDifference) {
  Rng rng(6);
  // Small geometry (window 5) keeps the finite-difference sweep fast while
  // exercising the full adjoint path.
  SsimConfig config;
  config.window = 5;
  config.sigma = 1.0;
  Tensor x(Shape{1, 2, 9, 9});
  Tensor y(Shape{1, 2, 9, 9});
  fill_uniform(x, rng, 0.1F, 0.9F);
  fill_uniform(y, rng, 0.1F, 0.9F);

  const SsimResult result = ssim_with_gradient(x, y, config);
  auto loss = [&](const Tensor& probe) { return static_cast<double>(ssim(x, probe, config)); };
  expect_gradient_close(loss, y, result.grad_y, 1e-3, 2e-2, 1e-4);
}

TEST(Ssim, GradientPointsTowardReference) {
  // Gradient ascent on SSIM should increase similarity to x.
  Rng rng(7);
  Tensor x(Shape{1, 1, 16, 16});
  fill_uniform(x, rng, 0.2F, 0.8F);
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] += rng.uniform_float(-0.2F, 0.2F);

  const float before = ssim(x, y);
  for (int step = 0; step < 40; ++step) {
    const SsimResult result = ssim_with_gradient(x, y);
    // Normalized ascent: fixed step length along the gradient direction.
    const float norm = std::max(result.grad_y.l2_norm(), 1e-8F);
    y.add_scaled(result.grad_y, 0.05F / norm);
  }
  EXPECT_GT(ssim(x, y), before + 0.02F);
}

}  // namespace
}  // namespace usb
