// Central finite-difference gradient checking.
//
// Every hand-written backward in the library is validated against
//   dL/dx_i ~= (L(x + h e_i) - L(x - h e_i)) / 2h
// on small random problems. Relative tolerance is loose-ish (1e-2) because
// forward passes run in float32 while the difference quotient amplifies
// rounding error.
#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace usb::testing {

/// Fills a tensor with uniform values in [lo, hi].
inline void fill_uniform(Tensor& t, Rng& rng, float lo = -1.0F, float hi = 1.0F) {
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
}

/// Checks grad against central differences of `loss` at `x`.
/// `loss` must be a pure function of its argument.
inline void expect_gradient_close(const std::function<double(const Tensor&)>& loss,
                                  const Tensor& x, const Tensor& grad, double h = 1e-3,
                                  double rel_tol = 2e-2, double abs_tol = 2e-4) {
  ASSERT_EQ(x.shape(), grad.shape());
  Tensor probe = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float original = probe[i];
    probe[i] = original + static_cast<float>(h);
    const double plus = loss(probe);
    probe[i] = original - static_cast<float>(h);
    const double minus = loss(probe);
    probe[i] = original;
    const double numeric = (plus - minus) / (2.0 * h);
    const double analytic = grad[i];
    const double scale = std::max({std::abs(numeric), std::abs(analytic), 1.0});
    EXPECT_NEAR(analytic, numeric, std::max(abs_tol, rel_tol * scale))
        << "element " << i << " analytic=" << analytic << " numeric=" << numeric;
  }
}

}  // namespace usb::testing
