// Tests for losses (CE / targeted CE / MSE gradients) and optimizers
// (SGD momentum semantics, Adam convergence, AdamState for free tensors).
#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace usb {
namespace {

using testing::expect_gradient_close;
using testing::fill_uniform;

TEST(SoftmaxCrossEntropy, KnownValue) {
  SoftmaxCrossEntropy loss;
  // Uniform logits over 4 classes: CE = log(4).
  const Tensor logits(Shape{2, 4});
  const float value = loss.forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Tensor logits(Shape{3, 5});
  fill_uniform(logits, rng, -2.0F, 2.0F);
  const std::vector<std::int64_t> labels{0, 2, 4};
  SoftmaxCrossEntropy loss;
  (void)loss.forward(logits, labels);
  const Tensor grad = loss.backward();

  auto loss_fn = [&](const Tensor& probe) {
    SoftmaxCrossEntropy probe_loss;
    return static_cast<double>(probe_loss.forward(probe, labels));
  };
  expect_gradient_close(loss_fn, logits, grad, 1e-3, 1e-2);
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  Rng rng(2);
  Tensor logits(Shape{4, 6});
  fill_uniform(logits, rng, -1.0F, 1.0F);
  SoftmaxCrossEntropy loss;
  (void)loss.forward(logits, {1, 2, 3, 4});
  const Tensor grad = loss.backward();
  for (std::int64_t r = 0; r < 4; ++r) {
    double row_sum = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) row_sum += grad.at2(r, c);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(TargetedCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Tensor logits(Shape{3, 4});
  fill_uniform(logits, rng, -2.0F, 2.0F);
  TargetedCrossEntropy loss;
  (void)loss.forward(logits, 2);
  const Tensor grad = loss.backward();
  auto loss_fn = [&](const Tensor& probe) {
    TargetedCrossEntropy probe_loss;
    return static_cast<double>(probe_loss.forward(probe, 2));
  };
  expect_gradient_close(loss_fn, logits, grad);
}

TEST(TargetedCrossEntropy, RejectsBadTarget) {
  TargetedCrossEntropy loss;
  EXPECT_THROW((void)loss.forward(Tensor(Shape{1, 3}), 3), std::invalid_argument);
  EXPECT_THROW((void)loss.forward(Tensor(Shape{1, 3}), -1), std::invalid_argument);
}

TEST(MeanSquaredError, ValueAndGradient) {
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {0, 2, 3, 6});
  MeanSquaredError loss;
  EXPECT_NEAR(loss.forward(a, b), (1.0F + 0.0F + 0.0F + 4.0F) / 4.0F, 1e-6F);
  const Tensor grad = loss.backward();
  EXPECT_NEAR(grad[0], 2.0F * 1.0F / 4.0F, 1e-6F);
  EXPECT_NEAR(grad[3], 2.0F * -2.0F / 4.0F, 1e-6F);
}

TEST(SgdOptimizer, PlainStepWithoutMomentum) {
  Parameter p("w", Tensor(Shape{2}, {1.0F, -1.0F}));
  p.grad = Tensor(Shape{2}, {0.5F, -0.5F});
  SgdConfig config;
  config.lr = 0.1F;
  config.momentum = 0.0F;
  Sgd sgd({&p}, config);
  sgd.step();
  EXPECT_NEAR(p.value[0], 1.0F - 0.05F, 1e-6F);
  EXPECT_NEAR(p.value[1], -1.0F + 0.05F, 1e-6F);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  Parameter p("w", Tensor(Shape{1}, {0.0F}));
  SgdConfig config;
  config.lr = 1.0F;
  config.momentum = 0.5F;
  Sgd sgd({&p}, config);
  p.grad[0] = 1.0F;
  sgd.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0F, 1e-6F);
  p.grad[0] = 1.0F;
  sgd.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5F, 1e-6F);
}

TEST(SgdOptimizer, WeightDecayPullsTowardZero) {
  Parameter p("w", Tensor(Shape{1}, {2.0F}));
  SgdConfig config;
  config.lr = 0.1F;
  config.momentum = 0.0F;
  config.weight_decay = 0.5F;
  Sgd sgd({&p}, config);
  p.grad[0] = 0.0F;
  sgd.step();
  EXPECT_LT(p.value[0], 2.0F);
}

TEST(AdamOptimizer, ConvergesOnQuadratic) {
  // minimize f(w) = (w - 3)^2
  Parameter p("w", Tensor(Shape{1}, {0.0F}));
  AdamConfig config;
  config.lr = 0.1F;
  Adam adam({&p}, config);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0F * (p.value[0] - 3.0F);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0F, 0.05F);
}

TEST(AdamState, MatchesAdamOnSameTrajectory) {
  Parameter p("w", Tensor(Shape{3}, {1.0F, -2.0F, 0.5F}));
  Tensor free_value = p.value;

  AdamConfig config;
  config.lr = 0.05F;
  Adam adam({&p}, config);
  AdamState state(free_value.shape(), config);

  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    Tensor grad(Shape{3});
    fill_uniform(grad, rng, -1.0F, 1.0F);
    p.grad = grad;
    adam.step();
    state.step(free_value, grad);
    p.zero_grad();
  }
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], free_value[i], 1e-6F);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Parameter a("a", Tensor(Shape{2}));
  Parameter b("b", Tensor(Shape{2}));
  a.grad.fill(3.0F);
  b.grad.fill(-1.0F);
  Sgd sgd({&a, &b}, SgdConfig{});
  sgd.zero_grad();
  EXPECT_EQ(a.grad.abs_sum(), 0.0F);
  EXPECT_EQ(b.grad.abs_sum(), 0.0F);
}

}  // namespace
}  // namespace usb
