// Wire protocol: exact round trips and hostile-input strictness.
//
// The load-bearing contracts under test:
//  - encode/decode round trips are EXACT for both record types — verified
//    the strong way, by re-encoding the decoded value and comparing the
//    byte vectors (doubles travel as raw IEEE bits, so even the NaN
//    mask_l1 of a quarantined class survives);
//  - a request that crossed the wire produces a report byte-identical to
//    the locally built request's;
//  - corrupt input of ANY kind — truncation at every byte length, bad
//    magic/version/record tag, oversized or negative length prefixes,
//    single-byte corruption at every offset — throws WireError and never
//    crashes. This suite runs under the ASan and UBSan CI jobs, which is
//    where "never crashes" becomes "never UB".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/checkpoint.h"
#include "nn/trainer.h"
#include "service/detection_service.h"
#include "service/wire.h"
#include "utils/serialize.h"

namespace usb {
namespace {

// A request exercising every serialized field, zoo form.
wire::WireScanRequest sample_zoo_request() {
  wire::WireScanRequest request;
  request.request_id = 0x1122334455667788ULL;  // v2: every bit must survive
  ModelCaseSpec spec;
  spec.dataset = DatasetSpec::gtsrb_like();
  spec.arch = Architecture::kMiniEffNet;
  spec.attack.kind = AttackKind::kIad;
  spec.attack.trigger_size = 4;
  spec.attack.target_class = 7;
  spec.attack.poison_rate = 0.12345678901234567;
  spec.attack.seed = 0xdeadbeefcafef00dULL;
  spec.model_index = 3;
  spec.scale.models_per_case = 5;
  spec.scale.epochs = 2;
  spec.scale.train_size = 1234;
  spec.scale.test_size = 321;
  spec.scale.fast = true;
  spec.scale.model_cache_dir = "/tmp/zoo-cache";
  request.model_ref = ModelRef::from_zoo(std::move(spec));
  request.probe_key = ProbeKey{DatasetSpec::mnist_like(), 300, 0x9e0beULL};
  request.method = "USB";
  request.options.priority = -3;
  request.options.fair_weight = 2.5;
  request.options.deadline_seconds = 12.75;
  request.options.max_retries = 4;
  request.options.retry_backoff_seconds = 0.125;
  request.options.unsheddable = true;
  EarlyExitOptions early;
  early.enabled = true;
  early.round_steps = 7;
  early.min_rounds = 2;
  early.margin = 1.4826;
  early.async = true;
  request.options.early_exit = early;
  return request;
}

wire::WireScanRequest sample_checkpoint_request() {
  wire::WireScanRequest request;
  request.model_ref = ModelRef::from_checkpoint("/models/fleet/worker-17.ckpt");
  request.probe_key = ProbeKey{DatasetSpec::cifar10_like(), 96, 42};
  request.method = "NC";
  return request;
}

// A result exercising every serialized field, including a quarantined
// class whose statistic is NaN and a partial per-class state vector.
wire::WireScanResult sample_result() {
  wire::WireScanResult result;
  result.request_id = 0xFFFFFFFFFFFFFFFFULL;  // v2 echo, extreme value
  result.status = ScanStatus::kTimedOut;
  result.error = "deadline expired after 2 classes";
  result.retries = 2;
  DetectionReport& report = result.report;
  report.method = "USB";
  report.per_class.resize(3);
  for (std::size_t t = 0; t < 3; ++t) {
    TriggerEstimate& estimate = report.per_class[t];
    estimate.target_class = static_cast<std::int64_t>(t);
    estimate.pattern = Tensor(Shape({1, 4, 4}));
    estimate.mask = Tensor(Shape({4, 4}));
    for (std::int64_t i = 0; i < 16; ++i) {
      estimate.pattern.data()[i] = 0.0625F * static_cast<float>(i + t);
      estimate.mask.data()[i] = 1.0F - 0.03125F * static_cast<float>(i);
    }
    estimate.mask_l1 = 3.25 + static_cast<double>(t);
    estimate.final_loss = 0.001953125;
    estimate.fooling_rate = 0.96875;
  }
  // Quarantined class: NaN statistic must survive the wire bit-for-bit.
  report.per_class[1].mask_l1 = std::numeric_limits<double>::quiet_NaN();
  report.per_class_state = {ClassScanState::kFinalized, ClassScanState::kNumericallyUnstable,
                            ClassScanState::kRefining};
  report.verdict.backdoored = true;
  report.verdict.flagged_classes = {0};
  report.verdict.norms = {3.25, std::numeric_limits<double>::quiet_NaN(), 5.25};
  report.verdict.anomaly = {-2.5, 0.0, 1.5};
  report.per_class_seconds = {0.25, 0.5, 0.0};
  report.wall_seconds = 1.75;
  return result;
}

// Re-encoding the decoded value must reproduce the input bytes exactly.
// This is stronger than field-by-field comparison: nothing can be dropped,
// defaulted, or rounded without the byte vectors diverging.
template <typename Encode, typename Decode>
void expect_exact_round_trip(Encode encode, Decode decode) {
  const std::vector<std::uint8_t> once = encode();
  const auto decoded = decode(once);
  std::vector<std::uint8_t> twice;
  if constexpr (std::is_same_v<std::decay_t<decltype(decoded)>, wire::WireScanRequest>) {
    twice = wire::encode_request(decoded);
  } else {
    twice = wire::encode_result(decoded);
  }
  EXPECT_EQ(once, twice) << "decode -> encode did not reproduce the bytes";
}

TEST(Wire, RequestRoundTripIsExactZooForm) {
  expect_exact_round_trip([] { return wire::encode_request(sample_zoo_request()); },
                          [](const std::vector<std::uint8_t>& bytes) {
                            return wire::decode_request(bytes);
                          });
  // Spot-check the semantically load-bearing fields survived too.
  const wire::WireScanRequest decoded =
      wire::decode_request(wire::encode_request(sample_zoo_request()));
  EXPECT_EQ(decoded.request_id, 0x1122334455667788ULL);
  ASSERT_TRUE(decoded.model_ref.zoo.has_value());
  EXPECT_EQ(decoded.model_ref.key(), sample_zoo_request().model_ref.key());
  EXPECT_EQ(decoded.probe_key, sample_zoo_request().probe_key);
  EXPECT_EQ(decoded.method, "USB");
  EXPECT_EQ(decoded.options.priority, -3);
  ASSERT_TRUE(decoded.options.early_exit.has_value());
  EXPECT_EQ(decoded.options.early_exit->round_steps, 7);
  EXPECT_EQ(decoded.options.early_exit->margin, 1.4826);
}

TEST(Wire, RequestRoundTripIsExactCheckpointForm) {
  expect_exact_round_trip([] { return wire::encode_request(sample_checkpoint_request()); },
                          [](const std::vector<std::uint8_t>& bytes) {
                            return wire::decode_request(bytes);
                          });
  const wire::WireScanRequest decoded =
      wire::decode_request(wire::encode_request(sample_checkpoint_request()));
  EXPECT_EQ(decoded.model_ref.checkpoint_path, "/models/fleet/worker-17.ckpt");
  EXPECT_FALSE(decoded.options.early_exit.has_value());
}

TEST(Wire, ResultRoundTripIsExactIncludingNaN) {
  expect_exact_round_trip([] { return wire::encode_result(sample_result()); },
                          [](const std::vector<std::uint8_t>& bytes) {
                            return wire::decode_result(bytes);
                          });
  const wire::WireScanResult decoded = wire::decode_result(wire::encode_result(sample_result()));
  EXPECT_EQ(decoded.status, ScanStatus::kTimedOut);
  EXPECT_EQ(decoded.retries, 2);
  EXPECT_TRUE(std::isnan(decoded.report.per_class[1].mask_l1));
  EXPECT_TRUE(std::isnan(decoded.report.verdict.norms[1]));
  EXPECT_TRUE(decoded.report.per_class[0].pattern.equals(sample_result().report.per_class[0].pattern));
  EXPECT_EQ(decoded.report.per_class_state, sample_result().report.per_class_state);
}

// The acceptance-criteria pin: a request that crossed the wire produces a
// report byte-identical to the locally built one.
TEST(Wire, DecodedRequestProducesIdenticalReport) {
  DatasetSpec spec;
  spec.name = "wire-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 4;
  Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                spec.num_classes, /*seed=*/61);
  const std::string path = testing::TempDir() + "wire_roundtrip.ckpt";
  save_checkpoint(victim, path);

  wire::WireScanRequest local;
  local.model_ref = ModelRef::from_checkpoint(path);
  local.probe_key = ProbeKey{spec, 32, /*seed=*/62};
  local.method = "NC";
  const wire::WireScanRequest remote = wire::decode_request(wire::encode_request(local));

  DetectionService service;
  auto submit = [&](const wire::WireScanRequest& request) {
    ReverseOptConfig config;
    config.steps = 4;
    ScanRequest scan;
    scan.model_ref = request.model_ref;
    scan.detector = std::make_unique<NeuralCleanse>(config);
    scan.probe_key = request.probe_key;
    scan.options = request.options;
    return service.submit(std::move(scan));
  };
  const ScanHandle local_handle = submit(local);
  const ScanHandle remote_handle = submit(remote);
  const ScanOutcome& local_outcome = local_handle.wait();
  const ScanOutcome& remote_outcome = remote_handle.wait();
  ASSERT_EQ(local_outcome.status, ScanStatus::kDone) << local_outcome.error;
  ASSERT_EQ(remote_outcome.status, ScanStatus::kDone) << remote_outcome.error;

  // Byte-identical: serialize both reports and compare the byte vectors.
  // Timing fields are wall-clock (the one legitimately non-deterministic
  // part of a report) and are zeroed; everything else must match exactly.
  auto serialized_without_timing = [](const ScanOutcome& outcome) {
    wire::WireScanResult result;
    result.status = outcome.status;
    result.report = outcome.report;
    result.report.per_class_seconds.assign(result.report.per_class_seconds.size(), 0.0);
    result.report.wall_seconds = 0.0;
    return wire::encode_result(result);
  };
  EXPECT_EQ(serialized_without_timing(local_outcome), serialized_without_timing(remote_outcome));
}

TEST(Wire, TruncationAtEveryLengthThrows) {
  for (const std::vector<std::uint8_t>& full :
       {wire::encode_request(sample_zoo_request()), wire::encode_result(sample_result())}) {
    const bool is_request = full == wire::encode_request(sample_zoo_request());
    for (std::size_t length = 0; length < full.size(); ++length) {
      const std::span<const std::uint8_t> cut(full.data(), length);
      if (is_request) {
        EXPECT_THROW((void)wire::decode_request(cut), wire::WireError) << "length " << length;
      } else {
        EXPECT_THROW((void)wire::decode_result(cut), wire::WireError) << "length " << length;
      }
    }
  }
}

TEST(Wire, SingleByteCorruptionNeverCrashes) {
  // Flip every byte of a valid encoding in turn; decode must either
  // succeed (the byte was slack in a float/string) or throw WireError —
  // anything else (crash, other exception type, UB under the sanitizer
  // jobs) fails the test.
  const std::vector<std::uint8_t> request_bytes = wire::encode_request(sample_zoo_request());
  for (std::size_t i = 0; i < request_bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = request_bytes;
    corrupt[i] ^= 0xFF;
    try {
      (void)wire::decode_request(corrupt);
    } catch (const wire::WireError&) {
    }
  }
  const std::vector<std::uint8_t> result_bytes = wire::encode_result(sample_result());
  for (std::size_t i = 0; i < result_bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = result_bytes;
    corrupt[i] ^= 0xFF;
    try {
      (void)wire::decode_result(corrupt);
    } catch (const wire::WireError&) {
    }
  }
}

TEST(Wire, BadMagicVersionAndRecordTagThrow) {
  std::vector<std::uint8_t> bytes = wire::encode_request(sample_checkpoint_request());
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW((void)wire::decode_request(bad), wire::WireError);
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] = 0xFE;  // version
    try {
      (void)wire::decode_request(bad);
      FAIL() << "wrong version must throw";
    } catch (const wire::WireError& error) {
      EXPECT_NE(std::string(error.what()).find("version"), std::string::npos) << error.what();
    }
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[8] = 7;  // record tag
    EXPECT_THROW((void)wire::decode_request(bad), wire::WireError);
  }
  // A result frame fed to the request decoder (and vice versa) is a clean
  // record-type error, not a misparse.
  EXPECT_THROW((void)wire::decode_request(wire::encode_result(sample_result())),
               wire::WireError);
  EXPECT_THROW((void)wire::decode_result(bytes), wire::WireError);
}

TEST(Wire, OversizedAndNegativeLengthPrefixesThrowBeforeAllocation) {
  // Hand-craft a checkpoint-form request whose path length claims 2^40
  // bytes: the decoder must reject it against the remaining input, not
  // attempt the allocation.
  for (const std::int64_t claimed : {std::int64_t{1} << 40, std::int64_t{-8}}) {
    BinaryWriter writer;
    writer.write_u32(wire::kMagic);
    writer.write_u32(wire::kVersion);
    writer.write_u32(1);        // request record
    writer.write_i64(7);        // request id (v2)
    writer.write_u32(0);        // checkpoint form
    writer.write_i64(claimed);  // string length prefix, no payload behind it
    EXPECT_THROW((void)wire::decode_request(writer.buffer()), wire::WireError)
        << "claimed length " << claimed;
  }
}

TEST(Wire, TrailingBytesThrow) {
  std::vector<std::uint8_t> bytes = wire::encode_request(sample_checkpoint_request());
  bytes.push_back(0);
  EXPECT_THROW((void)wire::decode_request(bytes), wire::WireError);
}

TEST(Wire, FrameRoundTripAndTruncation) {
  const std::vector<std::uint8_t> payload = wire::encode_request(sample_zoo_request());
  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  wire::write_frame(file, payload);
  wire::write_frame(file, payload);
  std::rewind(file);
  std::vector<std::uint8_t> read_back;
  ASSERT_TRUE(wire::read_frame(file, read_back));
  EXPECT_EQ(read_back, payload);
  ASSERT_TRUE(wire::read_frame(file, read_back));
  EXPECT_EQ(read_back, payload);
  // Clean end-of-stream is false, not an error.
  EXPECT_FALSE(wire::read_frame(file, read_back));
  std::fclose(file);

  // Truncated payload: frame promises more bytes than the stream holds.
  file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  const std::uint32_t length = 1000;
  std::fwrite(&length, sizeof(length), 1, file);
  std::fputc(0x42, file);
  std::rewind(file);
  EXPECT_THROW((void)wire::read_frame(file, read_back), wire::WireError);
  std::fclose(file);

  // Truncated header: some but not all of the length prefix.
  file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  std::fputc(0x01, file);
  std::rewind(file);
  EXPECT_THROW((void)wire::read_frame(file, read_back), wire::WireError);
  std::fclose(file);

  // A frame length past the cap is rejected before any allocation.
  file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  const std::uint32_t huge = 0xFFFFFFFFU;
  std::fwrite(&huge, sizeof(huge), 1, file);
  std::rewind(file);
  EXPECT_THROW((void)wire::read_frame(file, read_back, /*max_frame_bytes=*/1024),
               wire::WireError);
  std::fclose(file);
}

TEST(Wire, PingPongRoundTripAndStrictness) {
  const std::uint64_t nonce = 0xA5A5A5A5DEADBEEFULL;
  EXPECT_EQ(wire::decode_ping(wire::encode_ping(nonce)), nonce);
  EXPECT_EQ(wire::decode_pong(wire::encode_pong(nonce)), nonce);
  // Record types don't cross: a ping fed to decode_pong (and vice versa)
  // is a clean error.
  EXPECT_THROW((void)wire::decode_pong(wire::encode_ping(nonce)), wire::WireError);
  EXPECT_THROW((void)wire::decode_ping(wire::encode_pong(nonce)), wire::WireError);
  // Truncation at every length throws.
  const std::vector<std::uint8_t> full = wire::encode_ping(nonce);
  for (std::size_t length = 0; length < full.size(); ++length) {
    EXPECT_THROW((void)wire::decode_ping({full.data(), length}), wire::WireError)
        << "length " << length;
  }
  // Trailing bytes throw.
  std::vector<std::uint8_t> trailing = full;
  trailing.push_back(0);
  EXPECT_THROW((void)wire::decode_ping(trailing), wire::WireError);
}

TEST(Wire, PeekRecordDispatchesWithoutDecoding) {
  EXPECT_EQ(wire::peek_record(wire::encode_request(sample_checkpoint_request())),
            wire::kRequestRecord);
  EXPECT_EQ(wire::peek_record(wire::encode_result(sample_result())), wire::kResultRecord);
  EXPECT_EQ(wire::peek_record(wire::encode_ping(1)), wire::kPingRecord);
  EXPECT_EQ(wire::peek_record(wire::encode_pong(1)), wire::kPongRecord);

  std::vector<std::uint8_t> bytes = wire::encode_ping(1);
  for (std::size_t length = 0; length < 12; ++length) {
    EXPECT_THROW((void)wire::peek_record({bytes.data(), length}), wire::WireError);
  }
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)wire::peek_record(bad_magic), wire::WireError);
  std::vector<std::uint8_t> bad_version = bytes;
  bad_version[4] = 0x7F;
  EXPECT_THROW((void)wire::peek_record(bad_version), wire::WireError);
  std::vector<std::uint8_t> bad_tag = bytes;
  bad_tag[8] = 99;
  EXPECT_THROW((void)wire::peek_record(bad_tag), wire::WireError);
}

TEST(Wire, InterruptFlagStopsReadLikeCleanEof) {
  // A set interrupt flag makes read_frame report end-of-stream instead of
  // blocking — the mechanism behind the worker's SIGTERM graceful drain.
  // The stream below HAS a full frame waiting; the flag wins anyway
  // because it is checked before each read.
  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  wire::write_frame(file, wire::encode_ping(42));
  std::rewind(file);
  std::atomic<bool> interrupt{true};
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(wire::read_frame(file, payload, wire::kDefaultMaxFrameBytes, &interrupt));
  // Cleared flag: the same stream now yields the frame.
  interrupt.store(false);
  ASSERT_TRUE(wire::read_frame(file, payload, wire::kDefaultMaxFrameBytes, &interrupt));
  EXPECT_EQ(wire::decode_ping(payload), 42ULL);
  std::fclose(file);
}

}  // namespace
}  // namespace usb
