// Tests for the experiment harness: model-zoo caching semantics, detection
// case execution, and the paper-layout table rendering.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace usb {
namespace {

ExperimentScale tiny_scale(const std::string& cache_dir) {
  ExperimentScale scale;
  scale.models_per_case = 1;
  scale.epochs = 3;
  scale.train_size = 800;
  scale.test_size = 150;
  scale.fast = true;
  scale.model_cache_dir = cache_dir;
  return scale;
}

TEST(ModelZoo, CacheKeyDistinguishesCoordinates) {
  ModelCaseSpec a;
  a.dataset = DatasetSpec::mnist_like();
  a.arch = Architecture::kBasicCnn;
  a.attack.kind = AttackKind::kBadNet;
  a.attack.trigger_size = 2;
  a.model_index = 0;

  ModelCaseSpec b = a;
  b.model_index = 1;
  EXPECT_NE(a.cache_key(), b.cache_key());

  ModelCaseSpec c = a;
  c.attack.trigger_size = 3;
  EXPECT_NE(a.cache_key(), c.cache_key());

  ModelCaseSpec d = a;
  d.attack.kind = AttackKind::kNone;
  EXPECT_NE(a.cache_key(), d.cache_key());
}

TEST(ModelZoo, TrainThenLoadRoundTrip) {
  const std::string cache_dir = ::testing::TempDir() + "zoo_cache";
  std::filesystem::remove_all(cache_dir);

  ModelCaseSpec spec;
  spec.dataset = DatasetSpec::mnist_like();
  spec.arch = Architecture::kBasicCnn;
  spec.attack.kind = AttackKind::kBadNet;
  spec.attack.trigger_size = 3;
  spec.attack.poison_rate = 0.2;
  spec.scale = tiny_scale(cache_dir);

  TrainedModel first = train_or_load(spec);
  EXPECT_FALSE(first.from_cache);
  EXPECT_GT(first.clean_accuracy, 0.2F);  // cache fidelity is under test, not model quality

  TrainedModel second = train_or_load(spec);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.clean_accuracy, first.clean_accuracy);
  EXPECT_EQ(second.asr, first.asr);
  ASSERT_NE(second.attack, nullptr);  // BadNet is reconstructible from seed

  // The cached network computes the same function.
  const Dataset probe = make_probe(spec.dataset, 32);
  const Tensor logits_a = first.network.forward(probe.images());
  const Tensor logits_b = second.network.forward(probe.images());
  for (std::int64_t i = 0; i < logits_a.numel(); ++i) {
    EXPECT_EQ(logits_a[i], logits_b[i]);
  }
  std::filesystem::remove_all(cache_dir);
}

TEST(ModelZoo, ProbeIsDeterministicPerSeed) {
  const Dataset a = make_probe(DatasetSpec::mnist_like(), 50, 1);
  const Dataset b = make_probe(DatasetSpec::mnist_like(), 50, 1);
  const Dataset c = make_probe(DatasetSpec::mnist_like(), 50, 2);
  EXPECT_TRUE(a.images().equals(b.images()));
  EXPECT_FALSE(a.images().equals(c.images()));
}

TEST(Experiment, MethodStringsAndBudget) {
  EXPECT_EQ(to_string(MethodKind::kNc), "NC");
  EXPECT_EQ(to_string(MethodKind::kTabor), "TABOR");
  EXPECT_EQ(to_string(MethodKind::kUsb), "USB");

  ExperimentScale fast;
  fast.fast = true;
  const MethodBudget budget = MethodBudget::from_scale(fast);
  EXPECT_LE(budget.nc_steps, 100);
  EXPECT_LE(budget.uap_max_passes, 2);
}

TEST(Experiment, MakeDetectorBuildsAllKinds) {
  const MethodBudget budget;
  EXPECT_EQ(make_detector(MethodKind::kNc, budget)->name(), "NC");
  EXPECT_EQ(make_detector(MethodKind::kTabor, budget)->name(), "TABOR");
  EXPECT_EQ(make_detector(MethodKind::kUsb, budget)->name(), "USB");
}

TEST(Experiment, RunDetectionCaseProducesConsistentCounts) {
  const std::string cache_dir = ::testing::TempDir() + "case_cache";
  std::filesystem::remove_all(cache_dir);

  DetectionCaseSpec case_spec;
  case_spec.label = "test case";
  case_spec.dataset = DatasetSpec::mnist_like();
  case_spec.arch = Architecture::kBasicCnn;
  case_spec.attack = AttackKind::kBadNet;
  case_spec.trigger_size = 3;
  case_spec.poison_rate = 0.2;
  case_spec.probe_size = 100;

  const DetectionCaseResult result =
      run_detection_case(case_spec, tiny_scale(cache_dir), {MethodKind::kUsb});
  ASSERT_EQ(result.methods.size(), 1U);
  const CaseCounts& counts = result.methods[0].counts;
  // Every model lands in exactly one of clean/backdoored.
  EXPECT_EQ(counts.detected_clean + counts.detected_backdoored, 1);
  // Target outcomes never exceed backdoored verdicts.
  EXPECT_LE(counts.correct + counts.correct_set + counts.wrong, counts.detected_backdoored);
  EXPECT_GT(result.mean_accuracy, 0.0);
  EXPECT_GE(result.methods[0].mean_detect_seconds, 0.0);
  std::filesystem::remove_all(cache_dir);
}

TEST(Experiment, PrintDetectionTableRendersRows) {
  DetectionCaseResult result;
  result.spec.label = "Synthetic row";
  result.spec.attack = AttackKind::kBadNet;
  result.mean_accuracy = 0.95;
  result.mean_asr = 0.91;
  MethodRow row;
  row.method = "USB";
  row.counts.detected_backdoored = 2;
  row.counts.correct = 2;
  result.methods.push_back(row);
  // Smoke: must not throw and must print something (visual check via ctest
  // verbose output); the Table class itself is covered in test_utils.
  print_detection_table("unit-test table", {result});
}

}  // namespace
}  // namespace usb
