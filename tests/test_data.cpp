// Tests for dataset containers, procedural generation, and the data loader.
#include <set>

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/synthetic.h"

namespace usb {
namespace {

TEST(DatasetSpec, Presets) {
  EXPECT_EQ(DatasetSpec::mnist_like().channels, 1);
  EXPECT_EQ(DatasetSpec::mnist_like().image_size, 28);
  EXPECT_EQ(DatasetSpec::cifar10_like().num_classes, 10);
  EXPECT_EQ(DatasetSpec::gtsrb_like().num_classes, 43);
  EXPECT_EQ(DatasetSpec::imagenet_like().image_size, 48);
}

TEST(Dataset, ValidatesShapeAndLabels) {
  const DatasetSpec spec = DatasetSpec::mnist_like();
  EXPECT_THROW(Dataset(spec, Tensor(Shape{2, 3, 28, 28}), {0, 1}), std::invalid_argument);
  EXPECT_THROW(Dataset(spec, Tensor(Shape{2, 1, 28, 28}), {0, 99}), std::invalid_argument);
}

TEST(Synthetic, PrototypesDeterministicPerSpec) {
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Tensor a = class_prototypes(spec);
  const Tensor b = class_prototypes(spec);
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.shape(), (Shape{10, 3, 32, 32}));
}

TEST(Synthetic, PrototypesDifferAcrossClasses) {
  const Tensor protos = class_prototypes(DatasetSpec::cifar10_like());
  const std::int64_t numel = 3 * 32 * 32;
  double diff = 0.0;
  for (std::int64_t i = 0; i < numel; ++i) {
    diff += std::abs(protos[i] - protos[numel + i]);
  }
  EXPECT_GT(diff / numel, 0.02);  // distinct class appearance
}

TEST(Synthetic, SamplesInRangeAndBalanced) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 200, /*seed=*/5);
  EXPECT_EQ(data.size(), 200);
  EXPECT_GE(data.images().min(), 0.0F);
  EXPECT_LE(data.images().max(), 1.0F);
  std::vector<int> per_class(10, 0);
  for (std::int64_t i = 0; i < data.size(); ++i) per_class[data.label(i)]++;
  for (const int count : per_class) EXPECT_EQ(count, 20);
}

TEST(Synthetic, DifferentSeedsDifferentNoise) {
  const Dataset a = generate_dataset(DatasetSpec::mnist_like(), 10, 1);
  const Dataset b = generate_dataset(DatasetSpec::mnist_like(), 10, 2);
  EXPECT_FALSE(a.images().equals(b.images()));
}

TEST(Synthetic, SameSeedIdentical) {
  const Dataset a = generate_dataset(DatasetSpec::gtsrb_like(), 43, 9);
  const Dataset b = generate_dataset(DatasetSpec::gtsrb_like(), 43, 9);
  EXPECT_TRUE(a.images().equals(b.images()));
}

TEST(Dataset, GatherAndSubset) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 30, 3);
  const std::vector<std::int64_t> rows{3, 7, 11};
  const Tensor gathered = data.gather_images(rows);
  EXPECT_EQ(gathered.shape(), (Shape{3, 1, 28, 28}));
  const Tensor single = data.image(7);
  for (std::int64_t i = 0; i < single.numel(); ++i) {
    EXPECT_EQ(gathered[1 * single.numel() + i], single[i]);
  }
  const Dataset sub = data.subset(rows);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.label(1), data.label(7));
}

TEST(Dataset, TakeClampsToSize) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 10, 3);
  EXPECT_EQ(data.take(50).size(), 10);
  EXPECT_EQ(data.take(4).size(), 4);
}

TEST(DataLoader, CoversEveryRowOncePerEpoch) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 50, 4);
  DataLoader loader(data, 16, /*shuffle=*/true, /*seed=*/1);
  std::set<std::int64_t> seen;
  Batch batch;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    EXPECT_EQ(batch.images.dim(0), static_cast<std::int64_t>(batch.labels.size()));
    for (const std::int64_t index : batch.indices) seen.insert(index);
    total += batch.images.dim(0);
  }
  EXPECT_EQ(total, 50);
  EXPECT_EQ(seen.size(), 50U);
  EXPECT_EQ(loader.batches_per_epoch(), 4);
}

TEST(DataLoader, ShuffleChangesOrderAcrossEpochs) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 64, 4);
  DataLoader loader(data, 64, /*shuffle=*/true, /*seed=*/2);
  Batch first;
  ASSERT_TRUE(loader.next(first));
  loader.new_epoch();
  Batch second;
  ASSERT_TRUE(loader.next(second));
  EXPECT_NE(first.indices, second.indices);
}

TEST(DataLoader, NoShufflePreservesOrder) {
  const Dataset data = generate_dataset(DatasetSpec::mnist_like(), 20, 4);
  DataLoader loader(data, 7, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EXPECT_EQ(batch.indices[0], 0);
  EXPECT_EQ(batch.indices[6], 6);
}

}  // namespace
}  // namespace usb
