// TensorArena + the zero-allocation refinement hot path.
//
// The acceptance-criteria pins of the arena/SIMD change:
//  - arena semantics: grow-never-shrink slot recycling, reset() reuse,
//    Scope rewind, zero allocations once warm;
//  - arena-backed forward/backward (forward_into/backward_into) is
//    BIT-identical to the allocating forward/backward on every architecture,
//    in eval and training mode, including parameter gradients;
//  - the same holds across the AVX2/portable elementwise dispatch variants;
//  - DetectionReports are bit-identical across USB_THREADS (scan pools of
//    1 and 4) for USB, NC and TABOR — the arena path cannot introduce
//    schedule dependence;
//  - the steady-state refinement step of all three detectors performs ZERO
//    Tensor heap allocations (counting-allocator probe around a warmed-up
//    run_steps loop of the real per-class task).
#include <gtest/gtest.h>

#include <optional>

#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/masked_trigger.h"
#include "defenses/neural_cleanse.h"
#include "defenses/scan_plan.h"
#include "defenses/tabor.h"
#include "metrics/ssim.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "tensor/arena.h"
#include "tensor/elementwise.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace usb {
namespace {

struct VariantGuard {
  ~VariantGuard() { ew::force_variant(std::nullopt); }
};

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = 0.0F, float hi = 1.0F) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
  return t;
}

DatasetSpec tiny_spec(std::int64_t num_classes = 6) {
  DatasetSpec spec;
  spec.name = "arena-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    EXPECT_EQ(a.per_class[t].mask_l1, b.per_class[t].mask_l1);
    EXPECT_EQ(a.per_class[t].final_loss, b.per_class[t].final_loss);
    EXPECT_EQ(a.per_class[t].fooling_rate, b.per_class[t].fooling_rate);
    EXPECT_TRUE(a.per_class[t].pattern.equals(b.per_class[t].pattern));
    EXPECT_TRUE(a.per_class[t].mask.equals(b.per_class[t].mask));
  }
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.anomaly, b.verdict.anomaly);
}

TEST(TensorArena, SlotRecyclingIsAllocationFreeOnceWarm) {
  TensorArena arena;
  const Shape big{4, 8, 8};
  const Shape small{2, 8, 8};

  Tensor& first = arena.alloc(big);
  const float* first_storage = first.raw();
  Tensor& second = arena.zeros(small);
  EXPECT_EQ(arena.slots_in_use(), 2U);
  for (std::int64_t i = 0; i < second.numel(); ++i) EXPECT_EQ(second[i], 0.0F);

  arena.reset();
  EXPECT_EQ(arena.slots_in_use(), 0U);
  EXPECT_EQ(arena.slot_capacity(), 2U);

  const std::uint64_t before = tensor_heap_allocations();
  for (int step = 0; step < 10; ++step) {
    Tensor& a = arena.alloc(big);
    Tensor& b = arena.alloc(small);  // shrink-fit into the zeros slot
    EXPECT_EQ(a.raw(), first_storage);  // same storage recycled every step
    EXPECT_EQ(a.shape(), big);
    EXPECT_EQ(b.shape(), small);
    arena.reset();
  }
  EXPECT_EQ(tensor_heap_allocations() - before, 0U);
}

TEST(TensorArena, ScopeRewindsAndRecyclesNestedSlots) {
  TensorArena arena;
  Tensor& outer = arena.alloc(Shape{8});
  const float* inner_storage = nullptr;
  {
    const TensorArena::Scope scope(arena);
    inner_storage = arena.alloc(Shape{16}).raw();
    EXPECT_EQ(arena.slots_in_use(), 2U);
  }
  EXPECT_EQ(arena.slots_in_use(), 1U);
  EXPECT_EQ(outer.shape(), Shape{8});
  {
    const TensorArena::Scope scope(arena);
    // The sibling scope reuses the rewound slot's storage.
    EXPECT_EQ(arena.alloc(Shape{16}).raw(), inner_storage);
  }
}

TEST(TensorArena, AdoptParksAndRecyclesBuffers) {
  TensorArena arena;
  Tensor& parked = arena.adopt(random_tensor(Shape{3, 3}, 5));
  EXPECT_EQ(parked.shape(), (Shape{3, 3}));
  arena.reset();
  Tensor& reused = arena.alloc(Shape{3, 3});
  EXPECT_EQ(reused.raw(), parked.raw());
}

// The central bit-identity pin: for every architecture, in eval mode (the
// detection configuration) AND training mode, the arena path reproduces the
// allocating path bit for bit — outputs, input gradients, and parameter
// gradients.
TEST(ArenaPath, ForwardBackwardMatchesAllocatingBitwiseAllArchitectures) {
  for (const Architecture arch : {Architecture::kBasicCnn, Architecture::kMiniResNet,
                                  Architecture::kMiniVgg, Architecture::kMiniEffNet}) {
    for (const bool training : {false, true}) {
      const std::int64_t channels = arch == Architecture::kBasicCnn ? 1 : 3;
      const std::int64_t size = arch == Architecture::kBasicCnn ? 28 : 32;
      Network net = make_network(arch, channels, size, 10, 17);
      net.set_training(training);
      net.set_param_grads_enabled(training);

      const Tensor x = random_tensor(Shape{4, channels, size, size}, 21);
      const Tensor dy = random_tensor(Shape{4, 10}, 22, -1.0F, 1.0F);

      net.zero_grad();
      const Tensor y_alloc = net.forward(x);
      const Tensor dx_alloc = net.backward(dy);
      std::vector<Tensor> grads_alloc;
      for (Parameter* p : net.parameters()) grads_alloc.push_back(p->grad);

      // Training-mode BatchNorm mutates running stats; rebuild the network
      // so both paths see identical initial state.
      Network net2 = make_network(arch, channels, size, 10, 17);
      net2.set_training(training);
      net2.set_param_grads_enabled(training);
      net2.zero_grad();
      TensorArena arena;
      const Tensor& y_arena = net2.forward_into(x, arena);
      const Tensor& dx_arena = net2.backward_into(dy, arena);

      EXPECT_TRUE(y_alloc.equals(y_arena)) << to_string(arch) << " training=" << training;
      EXPECT_TRUE(dx_alloc.equals(dx_arena)) << to_string(arch) << " training=" << training;
      const std::vector<Parameter*> params = net2.parameters();
      ASSERT_EQ(params.size(), grads_alloc.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_TRUE(params[i]->grad.equals(grads_alloc[i]))
            << to_string(arch) << " grad " << params[i]->name;
      }
    }
  }
}

// Mixed pairing is part of the contract: a forward() may be followed by
// backward_into() and vice versa (the layer caches serve both).
TEST(ArenaPath, MixedForwardBackwardPairingsAgree) {
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 33);
  net.set_training(false);
  net.set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 34);
  const Tensor dy = random_tensor(Shape{2, 10}, 35, -1.0F, 1.0F);

  const Tensor y_ref = net.forward(x);
  const Tensor dx_ref = net.backward(dy);

  TensorArena arena;
  const Tensor& y1 = net.forward_into(x, arena);
  const Tensor dx1 = net.backward(dy);  // allocating backward over arena forward
  EXPECT_TRUE(y_ref.equals(y1));
  EXPECT_TRUE(dx_ref.equals(dx1));

  arena.reset();
  const Tensor y2 = net.forward(x);  // allocating forward, arena backward
  const Tensor& dx2 = net.backward_into(dy, arena);
  EXPECT_TRUE(y_ref.equals(y2));
  EXPECT_TRUE(dx_ref.equals(dx2));
}

TEST(ArenaPath, DispatchVariantsBitIdenticalThroughNetwork) {
  if (!ew::variant_available(ew::Variant::kAvx2)) GTEST_SKIP() << "no AVX2 on this CPU";
  const VariantGuard guard;
  Network net = make_network(Architecture::kMiniEffNet, 3, 32, 10, 41);
  net.set_training(false);
  net.set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 42);
  const Tensor dy = random_tensor(Shape{2, 10}, 43, -1.0F, 1.0F);

  TensorArena arena;
  ew::force_variant(ew::Variant::kPortable);
  const Tensor y_portable = net.forward_into(x, arena);
  const Tensor dx_portable = net.backward_into(dy, arena);

  arena.reset();
  ew::force_variant(ew::Variant::kAvx2);
  const Tensor& y_avx2 = net.forward_into(x, arena);
  const Tensor& dx_avx2 = net.backward_into(dy, arena);

  EXPECT_TRUE(y_portable.equals(y_avx2));
  EXPECT_TRUE(dx_portable.equals(dx_avx2));
}

TEST(ArenaPath, SsimArenaFormMatchesAllocatingBitwise) {
  const Tensor x = random_tensor(Shape{2, 3, 16, 16}, 51);
  const Tensor y = random_tensor(Shape{2, 3, 16, 16}, 52);
  const SsimResult owned = ssim_with_gradient(x, y);
  TensorArena arena;
  const SsimGradRef ref = ssim_with_gradient(x, y, arena);
  EXPECT_EQ(owned.value, ref.value);
  EXPECT_TRUE(owned.grad_y.equals(*ref.grad_y));
}

// ---- Detector-level pins ------------------------------------------------

UsbConfig tiny_usb_config() {
  UsbConfig config;
  config.uap.max_passes = 1;
  config.uap.craft_size = 32;
  config.uap.batch_size = 16;
  config.refine_steps = 4;
  config.batch_size = 8;
  return config;
}

ReverseOptConfig tiny_nc_config() {
  ReverseOptConfig config;
  config.steps = 4;
  return config;
}

TaborConfig tiny_tabor_config() {
  TaborConfig config;
  config.base.steps = 3;
  return config;
}

/// Runs one detector under a given scan pool; `detector_factory` builds a
/// fresh detector per call (configs embed the pool override).
template <typename MakeDetector>
DetectionReport run_with_pool(const MakeDetector& make_detector, ThreadPool* pool,
                              Network& model, const Dataset& probe) {
  auto detector = make_detector(pool);
  return detector->detect(model, probe);
}

// DetectionReports pinned bit-identical at USB_THREADS in {1, 4} for all
// three masked-trigger detectors, on the arena-backed hot path.
TEST(ArenaPath, DetectReportsBitIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 61);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 62);

  ThreadPool pool1(1);
  ThreadPool pool4(4);

  const auto usb_factory = [](ThreadPool* pool) {
    UsbConfig config = tiny_usb_config();
    config.scan_pool = pool;
    return std::make_unique<UsbDetector>(config);
  };
  const auto nc_factory = [](ThreadPool* pool) {
    ReverseOptConfig config = tiny_nc_config();
    config.scan_pool = pool;
    return std::make_unique<NeuralCleanse>(config);
  };
  const auto tabor_factory = [](ThreadPool* pool) {
    TaborConfig config = tiny_tabor_config();
    config.base.scan_pool = pool;
    return std::make_unique<Tabor>(config);
  };

  expect_reports_identical(run_with_pool(usb_factory, &pool1, victim, probe),
                           run_with_pool(usb_factory, &pool4, victim, probe));
  expect_reports_identical(run_with_pool(nc_factory, &pool1, victim, probe),
                           run_with_pool(nc_factory, &pool4, victim, probe));
  expect_reports_identical(run_with_pool(tabor_factory, &pool1, victim, probe),
                           run_with_pool(tabor_factory, &pool4, victim, probe));
}

// A full detect() must also be dispatch-invariant (portable vs AVX2).
TEST(ArenaPath, DetectReportsBitIdenticalAcrossDispatchVariants) {
  if (!ew::variant_available(ew::Variant::kAvx2)) GTEST_SKIP() << "no AVX2 on this CPU";
  const VariantGuard guard;
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 63);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 64);
  ThreadPool pool(1);
  ReverseOptConfig config = tiny_nc_config();
  config.scan_pool = &pool;

  ew::force_variant(ew::Variant::kPortable);
  const DetectionReport portable = NeuralCleanse(config).detect(victim, probe);
  ew::force_variant(ew::Variant::kAvx2);
  const DetectionReport avx2 = NeuralCleanse(config).detect(victim, probe);
  expect_reports_identical(portable, avx2);
}

/// Builds the real per-class refine task of `plan` for class 0 and counts
/// Tensor heap allocations across `steps` steady-state steps after a
/// warm-up slice.
std::uint64_t steady_state_allocations(const ScanPlan& plan, Network& model,
                                       const Dataset& probe, std::int64_t steps) {
  const ClassScanScheduler scheduler(plan.options);
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  std::shared_ptr<const ScanSharedState> shared;
  if (plan.shared_builder) shared = plan.shared_builder(model, probe);
  const ClassScanJob job = scheduler.make_job(0, cache, shared.get());
  Network clone = clone_network(model);
  const auto task = plan.make_task(clone, probe, job);
  (void)task->run_steps(5);  // warm-up: arena slots, loader batch, caches
  const std::uint64_t before = tensor_heap_allocations();
  (void)task->run_steps(steps);
  return tensor_heap_allocations() - before;
}

// The headline acceptance criterion: a warmed-up refinement step performs
// ZERO Tensor heap allocations, for every detector. The loop deliberately
// crosses an epoch boundary (probe 48 / batch 8 -> 6 steps per epoch) to
// prove the loader's gather and the epoch reshuffle are allocation-free
// too.
TEST(ArenaPath, SteadyStateRefinementStepPerformsZeroTensorAllocations) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 71);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 72);

  UsbConfig usb_config = tiny_usb_config();
  usb_config.refine_steps = 64;
  const UsbDetector usb(usb_config);
  EXPECT_EQ(steady_state_allocations(usb.plan(), victim, probe, 20), 0U);

  ReverseOptConfig nc_config = tiny_nc_config();
  nc_config.steps = 64;
  const NeuralCleanse nc(nc_config);
  EXPECT_EQ(steady_state_allocations(nc.plan(), victim, probe, 20), 0U);

  TaborConfig tabor_config = tiny_tabor_config();
  tabor_config.base.steps = 64;
  const Tabor tabor(tabor_config);
  EXPECT_EQ(steady_state_allocations(tabor.plan(), victim, probe, 20), 0U);
}

// And on the residual/SE architectures, whose layers have the most involved
// arena paths.
TEST(ArenaPath, SteadyStateZeroAllocationsOnDeepArchitectures) {
  DatasetSpec spec = tiny_spec(4);
  spec.channels = 3;
  spec.image_size = 32;
  spec.name = "arena-deep";
  const Dataset probe = generate_dataset(spec, 32, 73);

  ReverseOptConfig config = tiny_nc_config();
  config.steps = 64;
  config.batch_size = 4;
  const NeuralCleanse nc(config);
  for (const Architecture arch : {Architecture::kMiniResNet, Architecture::kMiniEffNet}) {
    Network victim = make_network(arch, 3, 32, spec.num_classes, 74);
    EXPECT_EQ(steady_state_allocations(nc.plan(), victim, probe, 12), 0U) << to_string(arch);
  }
}

// The finalize side of the contract: fooling_rate routed through an arena
// is bitwise the allocating form, and once the arena is warm a full
// evaluation sweep over the probe performs ZERO Tensor heap allocations —
// finalize no longer allocates one blend + one activation set per batch.
TEST(ArenaPath, WarmFoolingRateEvaluationPerformsZeroTensorAllocations) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 75);
  Network model = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 76);
  const ProbeBatchCache cache(probe, 8);

  Rng rng(77);
  const MaskedTrigger trigger(1, 16, rng, 0.1F);
  const double allocating = fooling_rate(model, cache, trigger, 0, nullptr);

  TensorArena arena;
  // First arena pass grows the eval-sized slots (refine and eval batches
  // differ, so a task's arena still grows once at its first finalize).
  const double warmup = fooling_rate(model, cache, trigger, 0, &arena);
  EXPECT_EQ(warmup, allocating);  // arena routing has no numeric effect

  const std::uint64_t before = tensor_heap_allocations();
  const double warmed = fooling_rate(model, cache, trigger, 0, &arena);
  EXPECT_EQ(tensor_heap_allocations() - before, 0U);
  EXPECT_EQ(warmed, allocating);
}

}  // namespace
}  // namespace usb
