// Unit tests for the Tensor value type.
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace usb {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(Shape{}.numel(), 1);  // empty product convention
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, ConstructFromBufferChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0F, 2.0F}), std::invalid_argument);
  const Tensor ok(Shape{2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_EQ(ok.at2(1, 0), 3.0F);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::full(Shape{4}, 2.5F)[3], 2.5F);
  EXPECT_EQ(Tensor::ones(Shape{4}).sum(), 4.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at2(2, 1), 5.0F);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  const Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {4, 5, 6});
  EXPECT_EQ((a + b)[1], 7.0F);
  EXPECT_EQ((b - a)[2], 3.0F);
  EXPECT_EQ((a * b)[0], 4.0F);
  EXPECT_EQ((a * 2.0F)[2], 6.0F);
  EXPECT_EQ((2.0F * a)[2], 6.0F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  Tensor a(Shape{3}, {1, 1, 1});
  const Tensor b(Shape{3}, {1, 2, 3});
  a.add_scaled(b, 0.5F);
  EXPECT_FLOAT_EQ(a[2], 2.5F);
}

TEST(Tensor, Clamp) {
  Tensor a(Shape{4}, {-1.0F, 0.2F, 0.8F, 2.0F});
  a.clamp(0.0F, 1.0F);
  EXPECT_EQ(a[0], 0.0F);
  EXPECT_EQ(a[3], 1.0F);
  EXPECT_FLOAT_EQ(a[1], 0.2F);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{4}, {-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 2.0F);
  EXPECT_FLOAT_EQ(t.mean(), 0.5F);
  EXPECT_FLOAT_EQ(t.abs_sum(), 10.0F);
  EXPECT_FLOAT_EQ(t.sq_sum(), 30.0F);
  EXPECT_FLOAT_EQ(t.max(), 4.0F);
  EXPECT_FLOAT_EQ(t.min(), -3.0F);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0F);
  EXPECT_EQ(t.argmax(), 3);
}

TEST(Tensor, At4Indexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0F;
  EXPECT_EQ(t[t.numel() - 1], 9.0F);
  t.at4(0, 0, 0, 1) = 5.0F;
  EXPECT_EQ(t[1], 5.0F);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40U);
  std::vector<bool> seen(100, false);
  for (const std::int64_t v : sample) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, HashCombineVariadic) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2, 3), hash_combine(hash_combine(1, 2), 3));
}

}  // namespace
}  // namespace usb
