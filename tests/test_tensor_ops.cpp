// Tests for the dense kernels: matmul family, im2col/col2im adjointness,
// conv2d forward/backward against naive references and finite differences,
// pooling, softmax, and the SSIM filter primitives.
#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {
namespace {

using testing::expect_gradient_close;
using testing::fill_uniform;

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a.at2(i, p)) * b.at2(p, j);
      c.at2(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(MatMul, MatchesNaive) {
  Rng rng(1);
  Tensor a(Shape{7, 5});
  Tensor b(Shape{5, 9});
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  const Tensor c = matmul(a, b);
  const Tensor ref = naive_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4F);
}

TEST(MatMul, TransposeBMatchesExplicit) {
  Rng rng(2);
  Tensor a(Shape{4, 6});
  Tensor b(Shape{3, 6});  // stands for B^T with B (6,3)
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  Tensor b_t(Shape{6, 3});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) b_t.at2(j, i) = b.at2(i, j);
  }
  const Tensor expected = naive_matmul(a, b_t);
  const Tensor got = matmul_transpose_b(a, b);
  for (std::int64_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4F);
}

TEST(MatMul, TransposeAMatchesExplicit) {
  Rng rng(3);
  Tensor a(Shape{6, 4});  // stands for A^T with A (4,6)
  Tensor b(Shape{6, 5});
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  Tensor a_t(Shape{4, 6});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) a_t.at2(j, i) = a.at2(i, j);
  }
  const Tensor expected = naive_matmul(a_t, b);
  const Tensor got = matmul_transpose_a(a, b);
  for (std::int64_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4F);
}

TEST(MatMul, RejectsBadShapes) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

// Naive direct convolution reference.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias, const Conv2dSpec& spec) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t wd = x.dim(3);
  const std::int64_t oh = spec.out_size(h);
  const std::int64_t ow = spec.out_size(wd);
  const std::int64_t group_in = spec.in_channels / spec.groups;
  const std::int64_t group_out = spec.out_channels / spec.groups;
  Tensor y(Shape{batch, spec.out_channels, oh, ow});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
      const std::int64_t g = oc / group_out;
      for (std::int64_t p = 0; p < oh; ++p) {
        for (std::int64_t q = 0; q < ow; ++q) {
          double acc = bias.numel() > 0 ? bias[oc] : 0.0;
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
              for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
                const std::int64_t ih = p * spec.stride - spec.padding + kh;
                const std::int64_t iw = q * spec.stride - spec.padding + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= wd) continue;
                acc += static_cast<double>(x.at4(n, g * group_in + ic, ih, iw)) *
                       w[((oc * group_in + ic) * spec.kernel + kh) * spec.kernel + kw];
              }
            }
          }
          y.at4(n, oc, p, q) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

struct ConvCase {
  Conv2dSpec spec;
  std::int64_t image = 8;
  std::int64_t batch = 2;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, ForwardMatchesNaive) {
  const ConvCase tc = GetParam();
  Rng rng(11);
  Tensor x(Shape{tc.batch, tc.spec.in_channels, tc.image, tc.image});
  Tensor w(tc.spec.weight_shape());
  Tensor b(Shape{tc.spec.out_channels});
  fill_uniform(x, rng);
  fill_uniform(w, rng, -0.5F, 0.5F);
  fill_uniform(b, rng, -0.2F, 0.2F);
  const Tensor y = conv2d_forward(x, w, b, tc.spec);
  const Tensor ref = naive_conv(x, w, b, tc.spec);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-3F);
}

TEST_P(ConvParamTest, BackwardMatchesFiniteDifference) {
  const ConvCase tc = GetParam();
  Rng rng(13);
  Tensor x(Shape{tc.batch, tc.spec.in_channels, tc.image, tc.image});
  Tensor w(tc.spec.weight_shape());
  Tensor b(Shape{tc.spec.out_channels});
  fill_uniform(x, rng);
  fill_uniform(w, rng, -0.5F, 0.5F);
  fill_uniform(b, rng, -0.2F, 0.2F);

  // Loss = weighted sum of the output with fixed random weights.
  const Tensor y0 = conv2d_forward(x, w, b, tc.spec);
  Tensor dy(y0.shape());
  fill_uniform(dy, rng, -1.0F, 1.0F);
  const Conv2dGrads grads = conv2d_backward(x, w, dy, tc.spec, /*need_dx=*/true);

  auto loss_of_x = [&](const Tensor& probe) {
    const Tensor y = conv2d_forward(probe, w, b, tc.spec);
    double total = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
    return total;
  };
  auto loss_of_w = [&](const Tensor& probe) {
    const Tensor y = conv2d_forward(x, probe, b, tc.spec);
    double total = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
    return total;
  };
  expect_gradient_close(loss_of_x, x, grads.dx);
  expect_gradient_close(loss_of_w, w, grads.dweight);

  // Bias gradient: dL/db[oc] = sum of dy over batch and spatial for oc.
  for (std::int64_t oc = 0; oc < tc.spec.out_channels; ++oc) {
    double expected = 0.0;
    const std::int64_t spatial = y0.dim(2) * y0.dim(3);
    for (std::int64_t n = 0; n < tc.batch; ++n) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        expected += dy[(n * tc.spec.out_channels + oc) * spatial + s];
      }
    }
    EXPECT_NEAR(grads.dbias[oc], expected, 1e-3);
  }
}

Conv2dSpec make_spec(std::int64_t in, std::int64_t out, std::int64_t k, std::int64_t stride,
                     std::int64_t pad, std::int64_t groups) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = k;
  spec.stride = stride;
  spec.padding = pad;
  spec.groups = groups;
  return spec;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParamTest,
    ::testing::Values(ConvCase{make_spec(3, 4, 3, 1, 1, 1), 8, 2},   // padded 3x3
                      ConvCase{make_spec(2, 6, 3, 2, 1, 1), 9, 2},   // strided
                      ConvCase{make_spec(1, 4, 5, 1, 0, 1), 10, 1},  // 5x5 valid
                      ConvCase{make_spec(4, 4, 3, 1, 1, 4), 6, 2},   // depthwise
                      ConvCase{make_spec(4, 8, 1, 1, 0, 1), 5, 2},   // pointwise
                      ConvCase{make_spec(4, 6, 3, 2, 1, 2), 8, 1})); // grouped strided

TEST(Im2Col, RoundTripAdjoint) {
  // col2im is the exact transpose of im2col:
  // <im2col(x), c> == <x, col2im(c)> for all x, c.
  Rng rng(5);
  const std::int64_t channels = 2;
  const std::int64_t size = 6;
  const std::int64_t kernel = 3;
  const std::int64_t stride = 2;
  const std::int64_t padding = 1;
  const std::int64_t out = (size + 2 * padding - kernel) / stride + 1;
  const std::int64_t col_numel = channels * kernel * kernel * out * out;

  Tensor x(Shape{channels, size, size});
  fill_uniform(x, rng);
  std::vector<float> col(static_cast<std::size_t>(col_numel));
  im2col(x.raw(), channels, size, size, kernel, stride, padding, col.data());

  std::vector<float> c(static_cast<std::size_t>(col_numel));
  Rng rng2(6);
  for (float& v : c) v = rng2.uniform_float(-1.0F, 1.0F);

  Tensor back(Shape{channels, size, size});
  col2im(c.data(), channels, size, size, kernel, stride, padding, back.raw());

  double lhs = 0.0;
  for (std::int64_t i = 0; i < col_numel; ++i) {
    lhs += static_cast<double>(col[static_cast<std::size_t>(i)]) * c[static_cast<std::size_t>(i)];
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(MaxPool, ForwardAndBackward) {
  const Tensor x(Shape{1, 1, 4, 4},
                 {1, 2, 5, 6, 3, 4, 7, 8, 9, 10, 13, 14, 11, 12, 15, 16});
  const Pool2dSpec spec{2, 2};
  const MaxPoolResult result = maxpool2d_forward(x, spec);
  EXPECT_EQ(result.y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(result.y[0], 4.0F);
  EXPECT_EQ(result.y[3], 16.0F);

  const Tensor dy(Shape{1, 1, 2, 2}, {1, 1, 1, 1});
  const Tensor dx = maxpool2d_backward(dy, result.argmax, x.shape());
  EXPECT_EQ(dx.at4(0, 0, 1, 1), 1.0F);   // position of 4
  EXPECT_EQ(dx.at4(0, 0, 3, 3), 1.0F);   // position of 16
  EXPECT_EQ(dx.at4(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(dx.sum(), 4.0F);
}

TEST(AvgPool, ForwardBackwardConsistency) {
  Rng rng(9);
  Tensor x(Shape{2, 3, 6, 6});
  fill_uniform(x, rng);
  const Pool2dSpec spec{2, 2};
  const Tensor y = avgpool2d_forward(x, spec);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 3, 3}));
  EXPECT_NEAR(y.at4(0, 0, 0, 0),
              0.25F * (x.at4(0, 0, 0, 0) + x.at4(0, 0, 0, 1) + x.at4(0, 0, 1, 0) +
                       x.at4(0, 0, 1, 1)),
              1e-5F);

  Tensor dy(y.shape());
  fill_uniform(dy, rng);
  const Tensor dx = avgpool2d_backward(dy, x.shape(), spec);
  auto loss = [&](const Tensor& probe) {
    const Tensor out = avgpool2d_forward(probe, spec);
    double total = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) total += static_cast<double>(out[i]) * dy[i];
    return total;
  };
  expect_gradient_close(loss, x, dx);
}

TEST(GlobalAvgPool, MeanAndGradient) {
  Rng rng(10);
  Tensor x(Shape{2, 4, 5, 5});
  fill_uniform(x, rng);
  const Tensor y = global_avgpool_forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 1, 1}));
  double manual = 0.0;
  for (std::int64_t s = 0; s < 25; ++s) manual += x[s];
  EXPECT_NEAR(y[0], manual / 25.0, 1e-5);

  Tensor dy(y.shape());
  fill_uniform(dy, rng);
  const Tensor dx = global_avgpool_backward(dy, x.shape());
  EXPECT_NEAR(dx[0], dy[0] / 25.0F, 1e-6F);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  const Tensor logits(Shape{2, 3}, {1.0F, 2.0F, 3.0F, -1.0F, -1.0F, -1.0F});
  const Tensor probs = softmax_rows(logits);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0F, 1e-5F);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_NEAR(probs[3], 1.0F / 3.0F, 1e-5F);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor logits(Shape{1, 2}, {1000.0F, 999.0F});
  const Tensor probs = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_GT(probs[0], probs[1]);
}

TEST(OneHot, EncodesAndValidates) {
  const Tensor encoded = one_hot({0, 2}, 3);
  EXPECT_EQ(encoded.at2(0, 0), 1.0F);
  EXPECT_EQ(encoded.at2(1, 2), 1.0F);
  EXPECT_EQ(encoded.sum(), 2.0F);
  EXPECT_THROW((void)one_hot({3}, 3), std::invalid_argument);
}

TEST(ArgmaxRows, PicksFirstMaximum) {
  const Tensor logits(Shape{2, 3}, {0.0F, 5.0F, 1.0F, 7.0F, 2.0F, 7.0F});
  const auto result = argmax_rows(logits);
  EXPECT_EQ(result[0], 1);
  EXPECT_EQ(result[1], 0);  // ties break to the first index
}

TEST(GaussianKernel, NormalizedAndSymmetric) {
  const Tensor k = gaussian_kernel(11, 1.5);
  EXPECT_NEAR(k.sum(), 1.0F, 1e-5F);
  EXPECT_NEAR(k.at2(0, 0), k.at2(10, 10), 1e-7F);
  EXPECT_GT(k.at2(5, 5), k.at2(0, 0));
}

TEST(Filter2d, ValidAgainstManual) {
  const Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor kernel(Shape{2, 2}, {1, 0, 0, 1});
  const Tensor y = filter2d_valid(x, kernel);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(y[0], 1.0F + 5.0F);
  EXPECT_EQ(y[3], 5.0F + 9.0F);
}

TEST(Filter2d, FullAdjointIsTransposeOfValid) {
  // <filter2d_valid(x, k), g> == <x, filter2d_full_adjoint(g, k)>.
  Rng rng(21);
  Tensor x(Shape{2, 3, 9, 9});
  fill_uniform(x, rng);
  const Tensor kernel = gaussian_kernel(5, 1.2);
  const Tensor y = filter2d_valid(x, kernel);
  Tensor g(y.shape());
  fill_uniform(g, rng);
  const Tensor adj = filter2d_full_adjoint(g, kernel);
  ASSERT_EQ(adj.shape(), x.shape());

  double lhs = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) lhs += static_cast<double>(y[i]) * g[i];
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * adj[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace usb
