// Elementwise kernel suite (tensor/elementwise.h): the dispatch contract.
//
// Load-bearing guarantees:
//  - the AVX2 and portable variants of every vectorized kernel are
//    BIT-identical on arbitrary data, including sizes with scalar tails and
//    negative-zero inputs (the kernels implement conditionals as branchless
//    bit-selects, which must reproduce the scalar comparison semantics);
//  - the Adam kernel reproduces the historical AdamState scalar loop
//    bitwise (sqrt/division are correctly rounded, so lane width cannot
//    change results);
//  - force_variant() actually pins dispatch (active_variant reflects it).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "tensor/elementwise.h"

namespace usb {
namespace {

bool avx2_available() { return ew::variant_available(ew::Variant::kAvx2); }

/// Restores runtime dispatch on scope exit.
struct VariantGuard {
  ~VariantGuard() { ew::force_variant(std::nullopt); }
};

std::vector<float> random_data(std::size_t n, std::uint32_t seed, float lo = -3.0F,
                               float hi = 3.0F) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Runs `body` under both variants and returns the two output buffers.
template <typename Body>
void expect_variants_identical(const char* what, std::size_t n, const Body& body) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this CPU";
  const VariantGuard guard;
  std::vector<float> portable(n, 0.0F);
  std::vector<float> avx2(n, 0.0F);
  ew::force_variant(ew::Variant::kPortable);
  body(portable);
  ew::force_variant(ew::Variant::kAvx2);
  body(avx2);
  EXPECT_TRUE(bitwise_equal(portable, avx2)) << what;
}

// n = 1003 exercises both the 8-wide main loop and a 3-element scalar tail.
constexpr std::size_t kN = 1003;

TEST(Elementwise, ReluForwardBackwardVariantsBitIdentical) {
  std::vector<float> x = random_data(kN, 1);
  x[0] = -0.0F;  // branchless select must preserve scalar -0.0 semantics
  x[1] = 0.0F;
  const std::vector<float> dy = random_data(kN, 2);
  expect_variants_identical("relu_fwd", kN, [&](std::vector<float>& out) {
    ew::relu_fwd(x.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("relu_bwd", kN, [&](std::vector<float>& out) {
    ew::relu_bwd(x.data(), dy.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  // Scalar reference semantics: y = x < 0 ? 0 : x keeps -0.0 and +0.0.
  std::vector<float> y(kN);
  ew::relu_fwd(x.data(), y.data(), static_cast<std::int64_t>(kN));
  EXPECT_EQ(std::signbit(y[0]), true);  // -0.0 passes through untouched
  EXPECT_EQ(y[1], 0.0F);
}

TEST(Elementwise, ActivationBackwardVariantsBitIdentical) {
  const std::vector<float> s = random_data(kN, 3, 0.001F, 0.999F);
  const std::vector<float> x = random_data(kN, 4);
  const std::vector<float> t = random_data(kN, 5, -0.999F, 0.999F);
  const std::vector<float> dy = random_data(kN, 6);
  expect_variants_identical("sigmoid_bwd", kN, [&](std::vector<float>& out) {
    ew::sigmoid_bwd(s.data(), dy.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("tanh_bwd", kN, [&](std::vector<float>& out) {
    ew::tanh_bwd(t.data(), dy.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("silu_bwd", kN, [&](std::vector<float>& out) {
    ew::silu_bwd(s.data(), x.data(), dy.data(), out.data(), static_cast<std::int64_t>(kN));
  });
}

TEST(Elementwise, ArithmeticVariantsBitIdentical) {
  const std::vector<float> a = random_data(kN, 7);
  const std::vector<float> b = random_data(kN, 8);
  expect_variants_identical("add", kN, [&](std::vector<float>& out) {
    ew::add(a.data(), b.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("mul", kN, [&](std::vector<float>& out) {
    ew::mul(a.data(), b.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("accum", kN, [&](std::vector<float>& out) {
    out = a;
    ew::accum(out.data(), b.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("axpy", kN, [&](std::vector<float>& out) {
    out = a;
    ew::axpy(out.data(), b.data(), 0.37F, static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("muladd_accum", kN, [&](std::vector<float>& out) {
    out = a;
    ew::muladd_accum(out.data(), a.data(), b.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("scale", kN, [&](std::vector<float>& out) {
    out = a;
    ew::scale(out.data(), -1.25F, static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("clamp", kN, [&](std::vector<float>& out) {
    out = a;
    ew::clamp(out.data(), -0.5F, 0.5F, static_cast<std::int64_t>(kN));
  });
}

TEST(Elementwise, TriggerKernelsVariantsBitIdentical) {
  const std::vector<float> x = random_data(kN, 9, 0.0F, 1.0F);
  const std::vector<float> m = random_data(kN, 10, 0.0F, 1.0F);
  const std::vector<float> p = random_data(kN, 11, 0.0F, 1.0F);
  const std::vector<float> d = random_data(kN, 12);
  expect_variants_identical("blend", kN, [&](std::vector<float>& out) {
    ew::blend(x.data(), m.data(), p.data(), out.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("mask_grad_accum", kN, [&](std::vector<float>& out) {
    ew::mask_grad_accum(out.data(), d.data(), p.data(), x.data(),
                        static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("dsigmoid_chain_accum", kN, [&](std::vector<float>& out) {
    ew::dsigmoid_chain_accum(out.data(), d.data(), m.data(), static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("l1_sigmoid_grad_accum", kN, [&](std::vector<float>& out) {
    ew::l1_sigmoid_grad_accum(out.data(), m.data(), 0.01F, static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("bn_fwd", 2 * kN, [&](std::vector<float>& out) {
    ew::bn_fwd(x.data(), out.data(), out.data() + kN, 0.31F, 1.7F, 0.9F, -0.1F,
               static_cast<std::int64_t>(kN));
  });
  expect_variants_identical("bn_bwd_train", kN, [&](std::vector<float>& out) {
    ew::bn_bwd_train(d.data(), x.data(), out.data(), 0.8F, 0.02F, -0.05F,
                     static_cast<std::int64_t>(kN));
  });
}

TEST(Elementwise, AdamKernelMatchesHistoricalScalarLoopBitwise) {
  const std::vector<float> grad = random_data(kN, 13);
  const ew::AdamParams prm{0.1F, 0.5F, 0.9F, 1e-8F, 0.75F, 0.271F};

  // The pre-kernel AdamState::step body, verbatim.
  std::vector<float> value_ref = random_data(kN, 14);
  std::vector<float> m_ref = random_data(kN, 15, -0.1F, 0.1F);
  std::vector<float> v_ref = random_data(kN, 16, 0.0F, 0.1F);
  std::vector<float> value = value_ref;
  std::vector<float> m = m_ref;
  std::vector<float> v = v_ref;
  for (std::size_t j = 0; j < kN; ++j) {
    const float g = grad[j];
    m_ref[j] = prm.beta1 * m_ref[j] + (1.0F - prm.beta1) * g;
    v_ref[j] = prm.beta2 * v_ref[j] + (1.0F - prm.beta2) * g * g;
    const float m_hat = m_ref[j] / prm.bias1;
    const float v_hat = v_ref[j] / prm.bias2;
    value_ref[j] -= prm.lr * m_hat / (std::sqrt(v_hat) + prm.eps);
  }

  ew::adam_update(value.data(), grad.data(), m.data(), v.data(),
                  static_cast<std::int64_t>(kN), prm);
  EXPECT_TRUE(bitwise_equal(value, value_ref));
  EXPECT_TRUE(bitwise_equal(m, m_ref));
  EXPECT_TRUE(bitwise_equal(v, v_ref));

  // And the two variants agree with each other.
  expect_variants_identical("adam_update", kN, [&](std::vector<float>& out) {
    out = value;
    std::vector<float> mv = m;
    std::vector<float> vv = v;
    ew::adam_update(out.data(), grad.data(), mv.data(), vv.data(),
                    static_cast<std::int64_t>(kN), prm);
  });
}

TEST(Elementwise, ForceVariantPinsDispatch) {
  const VariantGuard guard;
  ew::force_variant(ew::Variant::kPortable);
  EXPECT_EQ(ew::active_variant(), ew::Variant::kPortable);
  if (avx2_available()) {
    ew::force_variant(ew::Variant::kAvx2);
    EXPECT_EQ(ew::active_variant(), ew::Variant::kAvx2);
  } else {
    EXPECT_THROW(ew::force_variant(ew::Variant::kAvx2), std::invalid_argument);
  }
  ew::force_variant(std::nullopt);
  EXPECT_EQ(ew::active_variant(),
            avx2_available() ? ew::Variant::kAvx2 : ew::Variant::kPortable);
}

}  // namespace
}  // namespace usb
