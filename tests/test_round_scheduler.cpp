// RoundScheduler: the service's global cross-request fair-share queue.
//
// These tests pin the scheduling CONTRACT (per-job FIFO, fair-share
// alternation, strict priority, atomic queued-drop), not exact interleavings
// — which item runs when is explicitly allowed to vary. Single-dispatcher
// configurations make order observable; the stress test races four.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/round_scheduler.h"

namespace usb {
namespace {

/// Records (job tag, item index) completion order under a mutex.
struct Trace {
  std::mutex mu;
  std::vector<std::pair<char, int>> events;
  void add(char job, int index) {
    const std::lock_guard<std::mutex> lock(mu);
    events.emplace_back(job, index);
  }
};

TEST(RoundSchedulerTest, RunsItemsOfOneJobInFifoOrder) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  Trace trace;
  const auto job = scheduler.create_job({});
  for (int i = 0; i < 16; ++i) {
    scheduler.enqueue(job, [&trace, i] { trace.add('A', i); });
  }
  while (scheduler.items_executed() < 16) std::this_thread::yield();
  ASSERT_EQ(trace.events.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(trace.events[static_cast<std::size_t>(i)].second, i);
}

// The two fairness tests below measure wall-clock vtime accounting, which
// CPU oversubscription (the rest of the suite running in parallel) can skew
// arbitrarily: a dispatcher descheduled mid-item charges that item tens of
// milliseconds instead of 200µs, and the victim job's account leaps ahead.
// Each test therefore retries a few fresh schedulers and passes on the
// first fair outcome — a scheduler BUG (sequential draining, ignored
// weights) is deterministic and fails every attempt, while scheduling noise
// does not repeat across attempts.
constexpr int kFairnessAttempts = 5;

TEST(RoundSchedulerTest, EqualWeightJobsInterleaveInsteadOfDrainingSequentially) {
  int best = -1;
  for (int attempt = 0; attempt < kFairnessAttempts && best < 15; ++attempt) {
    RoundScheduler scheduler({/*workers=*/1, nullptr});
    Trace trace;
    // Gate the dispatcher so both jobs' items are queued before any runs:
    // otherwise job A would legitimately drain alone before B exists.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    const auto holder = scheduler.create_job({});
    scheduler.enqueue(holder, [open] { open.wait(); });
    const auto job_a = scheduler.create_job({});
    const auto job_b = scheduler.create_job({});
    for (int i = 0; i < 10; ++i) {
      scheduler.enqueue(job_a, [&trace, i] {
        trace.add('A', i);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
      scheduler.enqueue(job_b, [&trace, i] {
        trace.add('B', i);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
    gate.set_value();
    while (scheduler.items_executed() < 21) std::this_thread::yield();

    // Fair share: neither job's LAST item may land before the other job ran
    // most of its own — sequential draining (all A then all B) would put
    // A's last at position 10. Demand both lasts in the final quarter.
    int last_a = -1;
    int last_b = -1;
    for (int pos = 0; pos < static_cast<int>(trace.events.size()); ++pos) {
      if (trace.events[static_cast<std::size_t>(pos)].first == 'A') last_a = pos;
      if (trace.events[static_cast<std::size_t>(pos)].first == 'B') last_b = pos;
    }
    best = std::max(best, std::min(last_a, last_b));
  }
  EXPECT_GE(best, 15) << "one job drained long before the other, on every attempt";
}

TEST(RoundSchedulerTest, WeightSkewsServiceTowardHeavierJob) {
  int best = -1;
  for (int attempt = 0; attempt < kFairnessAttempts && best < 7; ++attempt) {
    RoundScheduler scheduler({/*workers=*/1, nullptr});
    Trace trace;
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    const auto holder = scheduler.create_job({});
    scheduler.enqueue(holder, [open] { open.wait(); });
    RoundScheduler::JobOptions heavy_options;
    heavy_options.weight = 3.0;
    const auto heavy = scheduler.create_job(std::move(heavy_options));
    const auto light = scheduler.create_job({});
    for (int i = 0; i < 12; ++i) {
      scheduler.enqueue(heavy, [&trace, i] {
        trace.add('H', i);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
      scheduler.enqueue(light, [&trace, i] {
        trace.add('L', i);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
    gate.set_value();
    while (scheduler.items_executed() < 25) std::this_thread::yield();

    // Weight 3 vs 1: of the first 12 completions, the heavy job should take
    // roughly three quarters. Demand at least 7 — far above alternation's 6,
    // comfortably below the exact 9 to absorb timing noise.
    int heavy_in_prefix = 0;
    for (int pos = 0; pos < 12; ++pos) {
      if (trace.events[static_cast<std::size_t>(pos)].first == 'H') ++heavy_in_prefix;
    }
    best = std::max(best, heavy_in_prefix);
  }
  EXPECT_GE(best, 7);
}

TEST(RoundSchedulerTest, ThrowingItemRoutesToOwnerAndQueueKeepsDraining) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  const auto holder = scheduler.create_job({});
  scheduler.enqueue(holder, [open] { open.wait(); });

  std::atomic<int> errors{0};
  std::mutex message_mu;
  std::string message;
  RoundScheduler::JobOptions faulty_options;
  faulty_options.on_item_error = [&errors, &message_mu, &message](const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(message_mu);
      message = e.what();
    }
    errors.fetch_add(1);
  };
  const auto faulty = scheduler.create_job(std::move(faulty_options));
  const auto healthy = scheduler.create_job({});

  std::atomic<int> faulty_ran{0};
  std::atomic<int> healthy_ran{0};
  scheduler.enqueue(faulty, [] { throw std::runtime_error("injected item failure"); });
  scheduler.enqueue(faulty, [&faulty_ran] { faulty_ran.fetch_add(1); });
  for (int i = 0; i < 4; ++i) {
    scheduler.enqueue(healthy, [&healthy_ran] { healthy_ran.fetch_add(1); });
  }
  gate.set_value();
  while (scheduler.items_executed() < 7) std::this_thread::yield();

  // The throw reached exactly the faulty job's handler; every other item —
  // including the faulty job's own LATER item — still ran.
  EXPECT_EQ(errors.load(), 1);
  {
    const std::lock_guard<std::mutex> lock(message_mu);
    EXPECT_EQ(message, "injected item failure");
  }
  EXPECT_EQ(faulty_ran.load(), 1);
  EXPECT_EQ(healthy_ran.load(), 4);

  // A handler-less job's throw is logged and dropped; the dispatcher
  // survives both shapes and keeps serving.
  scheduler.enqueue(healthy, [] { throw std::runtime_error("unrouted"); });
  scheduler.enqueue(healthy, [&healthy_ran] { healthy_ran.fetch_add(1); });
  while (scheduler.items_executed() < 9) std::this_thread::yield();
  EXPECT_EQ(healthy_ran.load(), 5);
  EXPECT_EQ(errors.load(), 1);
}

TEST(RoundSchedulerTest, HigherPriorityJobPreemptsQueuedLowerPriorityItems) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  Trace trace;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  const auto holder = scheduler.create_job({});
  scheduler.enqueue(holder, [open] { open.wait(); });
  const auto low = scheduler.create_job({});
  RoundScheduler::JobOptions high_options;
  high_options.priority = 1;
  const auto high = scheduler.create_job(std::move(high_options));
  for (int i = 0; i < 8; ++i) scheduler.enqueue(low, [&trace, i] { trace.add('L', i); });
  for (int i = 0; i < 8; ++i) scheduler.enqueue(high, [&trace, i] { trace.add('H', i); });
  gate.set_value();
  while (scheduler.items_executed() < 17) std::this_thread::yield();

  // Strict priority: every high item before any low item.
  ASSERT_EQ(trace.events.size(), 16u);
  for (int pos = 0; pos < 8; ++pos) {
    EXPECT_EQ(trace.events[static_cast<std::size_t>(pos)].first, 'H') << "position " << pos;
  }
}

TEST(RoundSchedulerTest, DropQueuedIfUnstartedIsAtomicWithFirstPick) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  const auto holder = scheduler.create_job({});
  scheduler.enqueue(holder, [open] { open.wait(); });

  // Never started: all queued items drop, none runs.
  std::atomic<int> ran{0};
  const auto victim = scheduler.create_job({});
  for (int i = 0; i < 3; ++i) scheduler.enqueue(victim, [&ran] { ran.fetch_add(1); });
  EXPECT_EQ(scheduler.drop_queued_if_unstarted(victim), 3);
  // Retired: late enqueues are dropped too.
  scheduler.enqueue(victim, [&ran] { ran.fetch_add(1); });

  // Started: refuse, let the chain drain.
  const auto runner = scheduler.create_job({});
  scheduler.enqueue(runner, [&ran] { ran.fetch_add(1); });
  gate.set_value();
  while (scheduler.items_executed() < 2) std::this_thread::yield();
  EXPECT_EQ(scheduler.drop_queued_if_unstarted(runner), -1);
  EXPECT_EQ(ran.load(), 1);
}

// ---- Timer queue (enqueue_after / expedite) -----------------------------

TEST(RoundSchedulerTest, EnqueueAfterDefersItemUntilItsNotBeforeTime) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  const auto job = scheduler.create_job({});
  const auto enqueued_at = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> ran_after_ns{0};
  scheduler.enqueue_after(
      job, 0.05,
      [&ran_after_ns, enqueued_at] {
        ran_after_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - enqueued_at)
                               .count());
      },
      "test.deferred");
  // Parked, not runnable: the deferred gauge sees it, the execution
  // counter does not.
  EXPECT_EQ(scheduler.items_deferred(), 1);
  while (scheduler.items_executed() < 1) std::this_thread::yield();
  EXPECT_EQ(scheduler.items_deferred(), 0);
  // Never early: the timer is a NOT-BEFORE bound (lateness under load is
  // fine and not asserted).
  EXPECT_GE(ran_after_ns.load(), 45'000'000);
}

TEST(RoundSchedulerTest, ExpeditePromotesDeferredItemsImmediately) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  const auto job = scheduler.create_job({});
  std::atomic<int> ran{0};
  // Far future: without expedite this test would take half a minute.
  scheduler.enqueue_after(job, 30.0, [&ran] { ran.fetch_add(1); });
  scheduler.enqueue_after(job, 30.0, [&ran] { ran.fetch_add(1); });
  EXPECT_EQ(scheduler.items_deferred(), 2);
  scheduler.expedite(job);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scheduler.items_executed() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(scheduler.items_deferred(), 0);
}

TEST(RoundSchedulerTest, DropQueuedIfUnstartedDropsDeferredItemsToo) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  const auto holder = scheduler.create_job({});
  scheduler.enqueue(holder, [open] { open.wait(); });

  std::atomic<int> ran{0};
  const auto victim = scheduler.create_job({});
  scheduler.enqueue(victim, [&ran] { ran.fetch_add(1); });
  scheduler.enqueue_after(victim, 30.0, [&ran] { ran.fetch_add(1); });
  scheduler.enqueue_after(victim, 30.0, [&ran] { ran.fetch_add(1); });
  // All three drop — the two parked in the timer queue included — and
  // their closures are destroyed unrun.
  EXPECT_EQ(scheduler.drop_queued_if_unstarted(victim), 3);
  EXPECT_EQ(scheduler.items_deferred(), 0);
  gate.set_value();
  while (scheduler.items_executed() < 1) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 0);
}

// ---- Heartbeats (sample_in_flight) --------------------------------------

TEST(RoundSchedulerTest, SampleInFlightReportsRunningItemLabelAndOwner) {
  RoundScheduler scheduler({/*workers=*/1, nullptr});
  RoundScheduler::JobOptions job_options;
  job_options.owner = 42;
  const auto job = scheduler.create_job(std::move(job_options));

  std::promise<void> release;
  std::shared_future<void> hold = release.get_future().share();
  std::atomic<bool> started{false};
  scheduler.enqueue(
      job,
      [&started, hold] {
        started.store(true);
        hold.wait();
      },
      "test.inflight");
  while (!started.load()) std::this_thread::yield();

  std::vector<RoundScheduler::InFlightItem> sample;
  scheduler.sample_in_flight(sample);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_STREQ(sample[0].point, "test.inflight");
  EXPECT_EQ(sample[0].owner, 42u);
  EXPECT_GE(sample[0].seconds, 0.0);
  EXPECT_GT(sample[0].start_ns, 0);

  release.set_value();
  while (scheduler.items_executed() < 1) std::this_thread::yield();
  // The slot clears when the item returns.
  sample.clear();
  scheduler.sample_in_flight(sample);
  EXPECT_TRUE(sample.empty());
}

TEST(RoundSchedulerTest, StressManyJobsAcrossDispatchersRunEveryItemExactlyOnce) {
  RoundScheduler scheduler({/*workers=*/4, nullptr});
  constexpr int kJobs = 8;
  constexpr int kItems = 50;
  std::vector<RoundScheduler::JobPtr> jobs;
  std::vector<std::atomic<int>> counts(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    RoundScheduler::JobOptions job_options;
    job_options.priority = j % 2;
    job_options.weight = 1.0 + j;
    jobs.push_back(scheduler.create_job(std::move(job_options)));
  }
  for (int i = 0; i < kItems; ++i) {
    for (int j = 0; j < kJobs; ++j) {
      scheduler.enqueue(jobs[static_cast<std::size_t>(j)],
                        [&counts, j] { counts[static_cast<std::size_t>(j)].fetch_add(1); });
    }
  }
  while (scheduler.items_executed() < kJobs * kItems) std::this_thread::yield();
  EXPECT_EQ(scheduler.items_executed(), kJobs * kItems);
  for (int j = 0; j < kJobs; ++j) EXPECT_EQ(counts[static_cast<std::size_t>(j)].load(), kItems);
  for (const auto& job : jobs) scheduler.retire_job(job);
}

}  // namespace
}  // namespace usb
