// Overload-resilience suite: transient-fault retries, priority load
// shedding, the global memory budget, and the hung-scan watchdog.
//
// The load-bearing guarantees under test:
//  - a stage that fails TRANSIENTLY (injected fault, simulated ENOMEM in
//    probe materialization) is retried with backoff and the scan that
//    eventually succeeds is byte-identical to Detector::detect(), with the
//    retry count in ScanOutcome::retries;
//  - retry exhaustion resolves kFailed, still reporting how many retries
//    were spent;
//  - past the queue-depth or memory watermark, the LOWEST-priority NEWEST
//    queued scans are shed (kShed, resolved immediately) while unsheddable
//    and admitted scans complete untouched;
//  - ProbeStore entries, model clones, and arena storage register with the
//    process MemoryBudget and release on eviction / scan retirement, and
//    max_resident_bytes turns the total into kReject/kBlock backpressure;
//  - the watchdog flags an item stuck past stuck_item_seconds (and, opted
//    in, fails the owning scan naming the stage) while healthy runs with a
//    sane threshold never flag anything.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/usb.h"
#include "data/probe_store.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "service/detection_service.h"
#include "utils/errors.h"
#include "utils/fault_injection.h"
#include "utils/memory_budget.h"

namespace usb {
namespace {

DatasetSpec tiny_spec(std::int64_t num_classes = 6) {
  DatasetSpec spec;
  spec.name = "overload-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

ReverseOptConfig tiny_nc_config(std::int64_t steps = 6) {
  ReverseOptConfig config;
  config.steps = steps;
  return config;
}

void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    EXPECT_EQ(x.target_class, y.target_class);
    EXPECT_EQ(x.mask_l1, y.mask_l1);
    EXPECT_EQ(x.final_loss, y.final_loss);
    EXPECT_EQ(x.fooling_rate, y.fooling_rate);
    EXPECT_TRUE(x.pattern.equals(y.pattern));
    EXPECT_TRUE(x.mask.equals(y.mask));
  }
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.norms, b.verdict.norms);
  EXPECT_EQ(a.verdict.anomaly, b.verdict.anomaly);
  EXPECT_EQ(a.per_class_state, b.per_class_state);
}

DetectionServiceConfig service_config(int scan_threads, int executors = 2) {
  DetectionServiceConfig config;
  config.scan_threads = scan_threads;
  config.max_concurrent_scans = executors;
  return config;
}

ScanRequest nc_request(Network& model, const Dataset& probe, std::int64_t steps = 6) {
  ScanRequest request;
  request.model = &model;
  request.probe = &probe;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(steps));
  return request;
}

// The registry is process-global; every test starts and ends disarmed.
class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::instance().disarm_all(); }
  void TearDown() override { fault::FaultRegistry::instance().disarm_all(); }
};

// ---- Transient-fault retries -------------------------------------------

// The tentpole pin: two injected transient faults at round stages are
// retried with backoff, the scan resolves kDone, the retry count is
// reported, and the report is byte-identical to the blocking detector —
// retrying re-runs the same stage against un-mutated inputs.
TEST_F(OverloadTest, TransientRoundFaultsRetryToByteIdenticalSuccess) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 141);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 142);
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kThrow;
  fault_spec.count = 2;  // exactly two throws, then the point goes quiet
  fault::FaultRegistry::instance().arm("scan.round", fault_spec);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  ScanRequest request = nc_request(victim, probe);
  request.options.max_retries = 3;
  request.options.retry_backoff_seconds = 0.002;
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
  EXPECT_EQ(outcome.retries, 2);
  EXPECT_EQ(service.items_retried(), 2);
  expect_reports_identical(direct, outcome.report);
}

// Simulated ENOMEM inside probe materialization: the store's failure is
// wrapped transient (the content address regenerates deterministically),
// the init stage retries, and the scan completes byte-identical.
TEST_F(OverloadTest, ProbeMaterializationEnomemRetriesAndSucceeds) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 143};
  const Dataset probe = generate_dataset(spec, 48, 143);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 144);
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kEnomem;
  fault_spec.count = 1;
  fault::FaultRegistry::instance().arm("probe_store.materialize", fault_spec);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  ScanRequest request;
  request.model = &victim;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request.probe_key = key;
  request.options.max_retries = 1;
  request.options.retry_backoff_seconds = 0.002;
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
  EXPECT_EQ(outcome.retries, 1);
  expect_reports_identical(direct, outcome.report);
  // The failed materialization left no wedged entry; the retry populated it.
  EXPECT_EQ(service.probe_store().size(), 1);
}

// Retry exhaustion: a persistently-failing stage spends its per-item
// budget, then the scan resolves kFailed with the spent count on record.
TEST_F(OverloadTest, RetryExhaustionResolvesFailedWithRetryCount) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 145);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 146);

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kThrow;
  fault_spec.count = -1;  // every hit, forever
  fault::FaultRegistry::instance().arm("scan.round", fault_spec);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  ScanRequest request = nc_request(victim, probe);
  request.options.max_retries = 2;
  request.options.retry_backoff_seconds = 0.002;
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kFailed);
  // At least one item spent its full budget (concurrent class chains may
  // have banked retries of their own before the failure latched).
  EXPECT_GE(outcome.retries, 2);
  EXPECT_NE(outcome.error.find("scan.round"), std::string::npos) << outcome.error;
  EXPECT_NE(outcome.error.find("retries)"), std::string::npos) << outcome.error;
  EXPECT_EQ(service.scans_failed(), 1);

  // A detector's own permanent error is NOT retried even with budget left.
  fault::FaultRegistry::instance().disarm_all();
  ScanRequest healthy = nc_request(victim, probe);
  healthy.options.max_retries = 5;
  const ScanHandle ok = service.submit(std::move(healthy));
  EXPECT_EQ(ok.wait().status, ScanStatus::kDone);
  EXPECT_EQ(service.items_retried(), outcome.retries);  // no silent retries
}

// With max_retries = 0 (the default), a transient fault fails immediately —
// the retry layer is inert unless armed, keeping default semantics.
TEST_F(OverloadTest, DefaultZeroRetriesFailsTransientFaultImmediately) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 147);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 148);

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kThrow;
  fault_spec.count = 1;
  fault::FaultRegistry::instance().arm("scan.round", fault_spec);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  const ScanHandle handle = service.submit(nc_request(victim, probe));
  const ScanOutcome& outcome = handle.wait();
  EXPECT_EQ(outcome.status, ScanStatus::kFailed);
  EXPECT_EQ(outcome.retries, 0);
  EXPECT_EQ(service.items_retried(), 0);
}

// ---- Priority load shedding --------------------------------------------

TEST_F(OverloadTest, DepthWatermarkShedsLowestPriorityNewestSparingUnsheddable) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 151);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 152);

  // The blocker (scan id 1) holds the single admission slot: every one of
  // its rounds sleeps, so the scans below all sit queued while we assert.
  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.05;
  delay.count = -1;
  delay.scope = 1;
  fault::FaultRegistry::instance().arm("scan.round", delay);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.shed_queue_depth = 2;
  DetectionService service(config);
  auto submit = [&](int priority, bool unsheddable) {
    ScanRequest request = nc_request(victim, probe);
    request.options.priority = priority;
    request.options.unsheddable = unsheddable;
    return service.submit(std::move(request));
  };
  ScanRequest blocking = nc_request(victim, probe, /*steps=*/40);
  blocking.options.priority = 2;
  blocking.options.unsheddable = true;
  const ScanHandle blocker = service.submit(std::move(blocking));
  const ScanHandle high = submit(1, false);
  const ScanHandle older_low = submit(0, false);
  // Third queued scan breaches depth 2: the NEWEST lowest-priority queued
  // scan — itself — is shed synchronously, before submit() returns.
  const ScanHandle newest_low = submit(0, false);
  EXPECT_EQ(newest_low.poll(), ScanStatus::kShed);
  // The unsheddable newcomer breaches the depth again, but is spared; the
  // remaining low-priority scan goes instead.
  const ScanHandle must_run = submit(0, true);
  EXPECT_EQ(older_low.poll(), ScanStatus::kShed);
  EXPECT_EQ(high.poll(), ScanStatus::kQueued);
  EXPECT_EQ(must_run.poll(), ScanStatus::kQueued);
  EXPECT_EQ(service.scans_shed(), 2);
  EXPECT_NE(newest_low.wait().error.find("shed"), std::string::npos);

  // Survivors complete once the blocker stops hogging the slot.
  fault::FaultRegistry::instance().disarm_all();
  blocker.cancel();
  EXPECT_EQ(high.wait().status, ScanStatus::kDone);
  EXPECT_EQ(must_run.wait().status, ScanStatus::kDone);
  EXPECT_EQ(service.scans_shed(), 2);  // admitted scans were never shed
}

TEST_F(OverloadTest, MemoryWatermarkShedsQueuedScanWhoseCloneBreachesBudget) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 153);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 154);
  Network sample_clone = clone_network(victim);
  const std::int64_t clone_bytes = network_resident_bytes(sample_clone);
  ASSERT_GT(clone_bytes, 0);

  // Park the blocker inside its FIRST stage (plan preparation) so the only
  // budget movement between the two submits is the submit-time clones —
  // per-class clones and arenas can't grow while prepare sleeps.
  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.5;
  delay.count = 1;
  delay.scope = 1;
  fault::FaultRegistry::instance().arm("scan.prepare", delay);

  // Room for one-and-a-half clones above whatever the rest of the process
  // has registered: the admitted blocker fits, a second clone does not.
  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.max_resident_bytes = MemoryBudget::process().bytes() + clone_bytes + clone_bytes / 2;
  DetectionService service(config);

  ScanRequest blocking = nc_request(victim, probe);
  blocking.options.unsheddable = true;
  const ScanHandle blocker = service.submit(std::move(blocking));
  // Passes the admission gate (budget still under the watermark), but its
  // own clone breaches it — the sweep sheds the newest sheddable queued
  // scan, which is this one.
  const ScanHandle shed = service.submit(nc_request(victim, probe));
  EXPECT_EQ(shed.poll(), ScanStatus::kShed);
  EXPECT_EQ(service.scans_shed(), 1);

  fault::FaultRegistry::instance().disarm_all();
  blocker.cancel();
  (void)blocker.wait();
}

TEST_F(OverloadTest, ByteBackpressureRejectsWhileOverBudgetAndRecovers) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 155);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 156);

  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.05;
  delay.count = -1;
  delay.scope = 1;
  fault::FaultRegistry::instance().arm("scan.round", delay);

  // Any live scan's clone exceeds one byte, so admission is gated the
  // moment a scan is in flight — and reopens when it retires.
  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.max_resident_bytes = 1;
  config.admission_policy = AdmissionPolicy::kReject;
  DetectionService service(config);
  const ScanHandle first = service.submit(nc_request(victim, probe, /*steps=*/40));
  EXPECT_THROW((void)service.submit(nc_request(victim, probe)), QueueFull);

  fault::FaultRegistry::instance().disarm_all();
  first.cancel();
  (void)first.wait();
  // Budget drained and live_ emptied: the same service admits again (an
  // empty service never blocks on externally-owned bytes).
  const ScanHandle second = service.submit(nc_request(victim, probe));
  EXPECT_EQ(second.wait().status, ScanStatus::kDone);
}

// ---- Global memory budget ----------------------------------------------

TEST(MemoryBudgetTest, ProbeStoreRegistersEvictsAndReleases) {
  auto& budget = MemoryBudget::process();
  const std::int64_t before = budget.bytes(MemoryBudget::Category::kProbeData);

  const ProbeKey key_a{tiny_spec(), 48, 161};
  const ProbeKey key_b{tiny_spec(), 48, 162};
  std::int64_t bytes_a = 0;
  {
    ProbeStoreOptions options;
    options.eval_batch_size = 16;
    ProbeStore sized(options);
    bytes_a = sized.get_or_create(key_a)->bytes();
    sized.clear();
    EXPECT_EQ(budget.bytes(MemoryBudget::Category::kProbeData), before);

    ProbeStoreOptions capped_options;
    capped_options.eval_batch_size = 16;
    capped_options.max_bytes = bytes_a;  // exactly one resident entry
    ProbeStore capped(capped_options);
    {
      const auto a = capped.get_or_create(key_a);
      EXPECT_EQ(budget.bytes(MemoryBudget::Category::kProbeData) - before, a->bytes());
    }
    // a is unpinned now; b's arrival evicts it and the budget follows.
    const auto b = capped.get_or_create(key_b);
    EXPECT_EQ(capped.evictions(), 1);
    EXPECT_EQ(budget.bytes(MemoryBudget::Category::kProbeData) - before, b->bytes());
  }
  // Store destruction releases its resident bytes.
  EXPECT_EQ(budget.bytes(MemoryBudget::Category::kProbeData), before);
}

TEST(MemoryBudgetTest, ScanLifecycleReturnsCloneAndArenaBytesToBaseline) {
  auto& budget = MemoryBudget::process();
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 163);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 164);
  Network sample_clone = clone_network(victim);
  const std::int64_t clone_bytes = network_resident_bytes(sample_clone);
  ASSERT_GT(clone_bytes, 0);

  const std::int64_t clones_before = budget.bytes(MemoryBudget::Category::kModelClones);
  const std::int64_t arenas_before = budget.bytes(MemoryBudget::Category::kArenas);
  {
    DetectionServiceConfig config;
    config.scan_threads = 1;
    config.max_concurrent_scans = 1;
    DetectionService service(config);
    ScanRequest request;
    request.model = &victim;
    request.probe = &probe;
    request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
    const ScanHandle handle = service.submit(std::move(request));
    ASSERT_EQ(handle.wait().status, ScanStatus::kDone);
    // Terminal resolution released the submit clone, every per-class clone,
    // and the refinement arenas BEFORE the waiter woke.
    EXPECT_EQ(budget.bytes(MemoryBudget::Category::kModelClones), clones_before);
    EXPECT_EQ(budget.bytes(MemoryBudget::Category::kArenas), arenas_before);
  }
  // The scan's peak footprint is on the high-water record: at least the
  // submit-time clone plus one per-class clone were resident at once
  // (process-wide high water — monotone, so >= this scan's peak).
  EXPECT_GE(budget.high_water_bytes(), 2 * clone_bytes);
}

// ---- Hung-scan watchdog ------------------------------------------------

TEST_F(OverloadTest, WatchdogFlagsInjectedStallAndHealthReportsIt) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 171);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 172);

  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.4;
  delay.count = 1;
  fault::FaultRegistry::instance().arm("scan.round", delay);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.stuck_item_seconds = 0.05;
  DetectionService service(config);
  const ScanHandle handle = service.submit(nc_request(victim, probe));

  bool observed = false;
  const auto poll_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < poll_deadline) {
    const ServiceHealth health = service.health();
    if (health.stuck_flagged_total >= 1) {
      observed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(observed) << "watchdog never flagged the 0.4s stall";
  // Flag-only mode: the scan itself still completes.
  EXPECT_EQ(handle.wait().status, ScanStatus::kDone);
  EXPECT_GE(service.health().stuck_flagged_total, 1);
}

TEST_F(OverloadTest, WatchdogStaysQuietOnHealthyRuns) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 173);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 174);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.stuck_item_seconds = 30.0;  // far above any honest stage
  DetectionService service(config);
  const ScanHandle handle = service.submit(nc_request(victim, probe));
  ASSERT_EQ(handle.wait().status, ScanStatus::kDone);
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.stuck_flagged_total, 0);
  EXPECT_EQ(health.stuck_items, 0);
}

TEST_F(OverloadTest, FailStuckScansResolvesOwnerFailedNamingTheStage) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 175);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 176);

  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.5;
  delay.count = 1;
  fault::FaultRegistry::instance().arm("scan.round", delay);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.stuck_item_seconds = 0.05;
  config.fail_stuck_scans = true;
  DetectionService service(config);
  const ScanHandle handle = service.submit(nc_request(victim, probe));
  const ScanOutcome& outcome = handle.wait();
  EXPECT_EQ(outcome.status, ScanStatus::kFailed);
  EXPECT_NE(outcome.error.find("watchdog"), std::string::npos) << outcome.error;
  EXPECT_GE(service.health().stuck_flagged_total, 1);
}

// ---- Health snapshot & error taxonomy ----------------------------------

TEST_F(OverloadTest, HealthSnapshotTracksCountersAndBudget) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 181);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 182);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
  const ServiceHealth idle = service.health();
  EXPECT_EQ(idle.queued_scans, 0);
  EXPECT_EQ(idle.admitted_scans, 0);
  EXPECT_EQ(idle.in_flight_items, 0);
  EXPECT_EQ(idle.budget_limit_bytes, 0);

  const ScanHandle handle = service.submit(nc_request(victim, probe));
  ASSERT_EQ(handle.wait().status, ScanStatus::kDone);
  const ServiceHealth done = service.health();
  EXPECT_EQ(done.scans_submitted, 1);
  EXPECT_EQ(done.scans_completed, 1);
  EXPECT_EQ(done.scans_shed, 0);
  EXPECT_EQ(done.items_retried, 0);
  EXPECT_EQ(done.items_deferred, 0);
  EXPECT_GT(done.budget_high_water_bytes, 0);
}

TEST(OverloadErrors, TransientErrorClassificationAndToStringTotality) {
  const ScanError permanent("disk on fire", /*transient_failure=*/false);
  EXPECT_FALSE(permanent.transient);
  const TransientError transient("blip");
  EXPECT_TRUE(transient.transient);
  EXPECT_STREQ(transient.what(), "blip");

  EXPECT_EQ(to_string(ScanStatus::kShed), "shed");
  EXPECT_EQ(to_string(AdmissionPolicy::kBlock), "block");
  EXPECT_EQ(to_string(AdmissionPolicy::kReject), "reject");
}

}  // namespace
}  // namespace usb
