// Fault-injection suite: drives every compiled-in failure path of the
// serving stack through the FaultRegistry.
//
// The load-bearing guarantees under test:
//  - the registry itself (hit windows, scope filtering, delay/NaN kinds);
//  - a throw at ANY scan stage (prepare, clone, construct, round, the
//    sync-barrier and async-rendezvous cutoffs, retire, finalize) fails
//    exactly that scan with kFailed naming the faulted point, and the
//    service stays fully reusable afterwards;
//  - a NaN statistic at a round boundary quarantines exactly that class
//    (kNumericallyUnstable, peeled from the verdict) while a CONCURRENT
//    healthy scan on the same dispatchers stays byte-identical to
//    Detector::detect() — per-scan fault scoping is what isolates them;
//  - the blocking early-exit path applies the same quarantine rule;
//  - an injected delay that pushes a scan past its deadline resolves
//    kTimedOut with a well-formed partial report;
//  - a probe materialization that throws leaves the store empty and
//    retryable, with accurate miss accounting;
//  - an ARMED-but-non-matching registry (wrong point, wrong scope) leaves
//    healthy reports byte-identical — the fault layer is inert unless a
//    spec actually matches.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/usb.h"
#include "data/probe_store.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/models.h"
#include "service/detection_service.h"
#include "utils/fault_injection.h"

namespace usb {
namespace {

DatasetSpec tiny_spec(std::int64_t num_classes = 6) {
  DatasetSpec spec;
  spec.name = "fault-injection-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

ReverseOptConfig tiny_nc_config(std::int64_t steps = 6) {
  ReverseOptConfig config;
  config.steps = steps;
  return config;
}

DetectionServiceConfig service_config(int scan_threads, int executors = 2) {
  DetectionServiceConfig config;
  config.scan_threads = scan_threads;
  config.max_concurrent_scans = executors;
  return config;
}

void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    EXPECT_EQ(x.target_class, y.target_class);
    EXPECT_EQ(x.mask_l1, y.mask_l1);
    EXPECT_EQ(x.final_loss, y.final_loss);
    EXPECT_EQ(x.fooling_rate, y.fooling_rate);
    EXPECT_TRUE(x.pattern.equals(y.pattern));
    EXPECT_TRUE(x.mask.equals(y.mask));
  }
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.norms, b.verdict.norms);
  EXPECT_EQ(a.verdict.anomaly, b.verdict.anomaly);
  EXPECT_EQ(a.per_class_state, b.per_class_state);
}

// The registry is process-global; every test starts and ends disarmed so
// suites stay independent (and a failing EXPECT cannot leak a live fault
// into the next test).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::instance().disarm_all(); }
  void TearDown() override { fault::FaultRegistry::instance().disarm_all(); }
};

TEST_F(FaultInjectionTest, RegistryTriggersExactlyInTheConfiguredHitWindow) {
  auto& registry = fault::FaultRegistry::instance();
  fault::FaultSpec spec;
  spec.kind = fault::FaultSpec::Kind::kThrow;
  spec.after_hits = 1;
  spec.count = 1;
  registry.arm("unit.window", spec);

  registry.on_point("unit.window");  // hit 0: before the window
  EXPECT_THROW(registry.on_point("unit.window"), fault::InjectedFault);  // hit 1
  registry.on_point("unit.window");  // hit 2: window exhausted
  EXPECT_EQ(registry.hits("unit.window"), 3);

  // Re-arming resets the counter; disarming silences and forgets the point.
  registry.arm("unit.window", spec);
  EXPECT_EQ(registry.hits("unit.window"), 0);
  registry.disarm_all();
  registry.on_point("unit.window");
  EXPECT_EQ(registry.hits("unit.window"), 0);
}

TEST_F(FaultInjectionTest, RegistryScopeFiltersBothTriggeringAndCounting) {
  auto& registry = fault::FaultRegistry::instance();
  fault::FaultSpec spec;
  spec.kind = fault::FaultSpec::Kind::kThrow;
  spec.count = -1;  // every matching hit
  spec.scope = 7;
  spec.message = "scoped fault";
  registry.arm("unit.scoped", spec);

  // Untagged thread: never triggers, never counts.
  registry.on_point("unit.scoped");
  EXPECT_EQ(registry.hits("unit.scoped"), 0);

  {
    const fault::FaultScope scope(7);
    EXPECT_EQ(fault::FaultScope::current(), 7u);
    try {
      registry.on_point("unit.scoped");
      FAIL() << "scoped fault did not trigger";
    } catch (const fault::InjectedFault& fault) {
      EXPECT_STREQ(fault.what(), "scoped fault");
    }
    {
      const fault::FaultScope inner(9);  // nested tag: wrong scan, no trigger
      registry.on_point("unit.scoped");
    }
    EXPECT_EQ(fault::FaultScope::current(), 7u);  // restored after nesting
  }
  EXPECT_EQ(fault::FaultScope::current(), 0u);
  registry.on_point("unit.scoped");  // tag gone: silent again
  EXPECT_EQ(registry.hits("unit.scoped"), 1);
}

TEST_F(FaultInjectionTest, RegistryDelayAndNanKindsBehaveAsDocumented) {
  auto& registry = fault::FaultRegistry::instance();

  fault::FaultSpec delay;
  delay.kind = fault::FaultSpec::Kind::kDelay;
  delay.delay_seconds = 0.02;
  registry.arm("unit.delay", delay);
  const auto start = std::chrono::steady_clock::now();
  registry.on_point("unit.delay");  // sleeps, must not throw
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.015);

  fault::FaultSpec nan;
  nan.kind = fault::FaultSpec::Kind::kNan;
  nan.count = 1;
  registry.arm("unit.nan", nan);
  registry.on_point("unit.nan");          // kNan is inert at throw/delay sites
  EXPECT_FALSE(registry.poison("unit.nan"));  // hit 1: window already burned
  registry.arm("unit.nan", nan);
  EXPECT_TRUE(registry.poison("unit.nan"));   // fresh window: poison once
  EXPECT_FALSE(registry.poison("unit.nan"));
  EXPECT_FALSE(registry.poison("unit.never_armed"));
}

// The tentpole pin: a throw at EVERY stage the execution runs — across all
// three replayed schedules — resolves exactly that scan to kFailed with an
// error naming the faulted point, and the same service keeps serving.
TEST_F(FaultInjectionTest, EveryScanStageFaultFailsOnlyThatScanAndNamesThePoint) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 91);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 92);
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  enum Mode { kMono, kSyncBarrier, kAsyncRendezvous };
  struct StageCase {
    const char* point;
    Mode mode;
  };
  const std::vector<StageCase> cases = {
      {"scan.prepare", kMono},   {"scan.clone", kMono},
      {"scan.construct", kMono}, {"scan.round", kMono},
      {"scan.finalize", kMono},  {"scan.cutoff", kSyncBarrier},
      {"scan.retire", kSyncBarrier},
      {"scan.cutoff", kAsyncRendezvous},
      {"scan.retire", kAsyncRendezvous},
  };

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  auto& registry = fault::FaultRegistry::instance();
  for (const StageCase& stage_case : cases) {
    fault::FaultSpec fault_spec;
    fault_spec.kind = fault::FaultSpec::Kind::kThrow;
    fault_spec.count = 1;
    registry.arm(stage_case.point, fault_spec);

    ScanRequest request;
    request.model = &victim;
    request.probe = &probe;
    request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
    if (stage_case.mode != kMono) {
      EarlyExitOptions early;
      early.enabled = true;
      early.async = stage_case.mode == kAsyncRendezvous;
      early.round_steps = 2;
      // margin 0 retires every class strictly above the running median, so
      // the retire stage is guaranteed to run before budgets drain.
      early.margin = 0.0;
      request.options.early_exit = early;
    }
    const ScanHandle handle = service.submit(std::move(request));
    const ScanOutcome& outcome = handle.wait();
    EXPECT_EQ(outcome.status, ScanStatus::kFailed)
        << stage_case.point << " in mode " << stage_case.mode;
    EXPECT_NE(outcome.error.find(stage_case.point), std::string::npos)
        << "error was: " << outcome.error;
    registry.disarm_all();
  }
  EXPECT_EQ(service.scans_failed(), static_cast<std::int64_t>(cases.size()));

  // Nine consecutive injected failures later, a healthy scan on the SAME
  // service is still byte-identical to the blocking detector.
  ScanRequest healthy;
  healthy.model = &victim;
  healthy.probe = &probe;
  healthy.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  const ScanHandle handle = service.submit(std::move(healthy));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
  expect_reports_identical(direct, outcome.report);
}

// Numerical quarantine with per-scan scoping: a poisoned round statistic in
// one scan retires that class as kNumericallyUnstable and peels it from the
// verdict — while a concurrent healthy scan sharing the same dispatchers
// and thread pool stays byte-identical to detect().
TEST_F(FaultInjectionTest, NanQuarantinesOneClassWithoutTouchingConcurrentHealthyScan) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 93);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 94);
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/2));
  // Scan ids are assigned 1, 2, ... per service; scope the poison to the
  // SECOND submission before either starts running.
  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kNan;
  fault_spec.count = 1;
  fault_spec.scope = 2;
  fault::FaultRegistry::instance().arm("scan.round_stat", fault_spec);

  ScanRequest healthy;
  healthy.model = &victim;
  healthy.probe = &probe;
  healthy.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  const ScanHandle healthy_handle = service.submit(std::move(healthy));

  ScanRequest faulty;
  faulty.model = &victim;
  faulty.probe = &probe;
  faulty.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  const ScanHandle faulty_handle = service.submit(std::move(faulty));
  ASSERT_EQ(healthy_handle.id(), 1u);
  ASSERT_EQ(faulty_handle.id(), 2u);

  const ScanOutcome& healthy_outcome = healthy_handle.wait();
  const ScanOutcome& faulty_outcome = faulty_handle.wait();
  ASSERT_EQ(healthy_outcome.status, ScanStatus::kDone) << healthy_outcome.error;
  ASSERT_EQ(faulty_outcome.status, ScanStatus::kDone) << faulty_outcome.error;

  expect_reports_identical(direct, healthy_outcome.report);

  // The faulty scan still completes — with exactly one quarantined class.
  const DetectionReport& report = faulty_outcome.report;
  EXPECT_TRUE(report.complete());
  const std::vector<std::int64_t> quarantined = report.quarantined_classes();
  ASSERT_EQ(quarantined.size(), 1u);
  const auto slot = static_cast<std::size_t>(quarantined[0]);
  EXPECT_EQ(report.per_class_state[slot], ClassScanState::kNumericallyUnstable);
  EXPECT_TRUE(std::isnan(report.per_class[slot].mask_l1));
  ASSERT_EQ(report.verdict.anomaly.size(), static_cast<std::size_t>(spec.num_classes));
  EXPECT_TRUE(std::isnan(report.verdict.anomaly[slot]));  // peeled, not scored
  for (std::size_t t = 0; t < report.per_class_state.size(); ++t) {
    if (t == slot) continue;
    EXPECT_EQ(report.per_class_state[t], ClassScanState::kFinalized);
    EXPECT_FALSE(std::isnan(report.verdict.norms[t]));
  }
}

// The blocking early-exit path applies the identical quarantine rule at its
// round boundaries: detect() still returns, the diverged class is excluded.
TEST_F(FaultInjectionTest, BlockingEarlyExitPathQuarantinesAtRoundBoundary) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 95);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 96);

  ReverseOptConfig config = tiny_nc_config();
  config.early_exit.enabled = true;
  config.early_exit.round_steps = 2;

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kNan;
  fault_spec.count = 1;
  fault::FaultRegistry::instance().arm("scan.round_stat", fault_spec);

  const DetectionReport report = NeuralCleanse(config).detect(victim, probe);
  EXPECT_TRUE(report.complete());
  const std::vector<std::int64_t> quarantined = report.quarantined_classes();
  ASSERT_EQ(quarantined.size(), 1u);
  const auto slot = static_cast<std::size_t>(quarantined[0]);
  EXPECT_TRUE(std::isnan(report.per_class[slot].mask_l1));
  EXPECT_TRUE(std::isnan(report.verdict.anomaly[slot]));
}

// An injected per-round delay pushes a scan past its deadline: the handle
// resolves kTimedOut with a well-formed partial report, and the service
// serves the next (fault-free) request normally.
TEST_F(FaultInjectionTest, InjectedRoundDelayResolvesDeadlinedScanTimedOut) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 97);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 98);

  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kDelay;
  fault_spec.delay_seconds = 0.02;
  fault_spec.count = -1;  // every round
  fault::FaultRegistry::instance().arm("scan.round", fault_spec);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  ScanRequest request;
  request.model = &victim;
  request.probe = &probe;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/60));
  request.options.deadline_seconds = 0.1;
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kTimedOut) << outcome.error;
  EXPECT_EQ(service.scans_timed_out(), 1);
  // The partial report is well-formed: one state per class, not complete
  // (0.1s of 20ms-per-round injected latency cannot finalize six classes).
  ASSERT_EQ(outcome.report.per_class_state.size(), static_cast<std::size_t>(spec.num_classes));
  EXPECT_FALSE(outcome.report.complete());

  fault::FaultRegistry::instance().disarm_all();
  ScanRequest retry;
  retry.model = &victim;
  retry.probe = &probe;
  retry.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/3));
  retry.options.deadline_seconds = 3600.0;
  const ScanHandle retry_handle = service.submit(std::move(retry));
  EXPECT_EQ(retry_handle.wait().status, ScanStatus::kDone);
}

// Satellite: a probe materialization that throws must leave the store
// EMPTY (no wedged pending cell) and retryable, with accurate miss counts.
TEST_F(FaultInjectionTest, ProbeStoreSurvivesGeneratorFailureAndRetries) {
  fault::FaultSpec fault_spec;
  fault_spec.kind = fault::FaultSpec::Kind::kThrow;
  fault_spec.count = 1;
  fault::FaultRegistry::instance().arm("probe_store.materialize", fault_spec);

  ProbeStore store(/*eval_batch_size=*/16);
  const ProbeKey key{tiny_spec(), 48, 99};
  EXPECT_THROW(store.get_or_create(key), fault::InjectedFault);
  EXPECT_EQ(store.size(), 0);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.hits(), 0);

  // The failed cell was erased, so the retry is a fresh miss that succeeds.
  const auto data = store.get_or_create(key);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->probe.size(), 48);
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.misses(), 2);
  EXPECT_EQ(store.hits(), 0);
}

// The acceptance pin for "compiled-in but inert": an ARMED registry whose
// specs never match (unknown point, foreign scan scope) must leave a
// healthy scan byte-identical to the blocking detector.
TEST_F(FaultInjectionTest, NonMatchingArmedSpecsLeaveHealthyScanByteIdentical) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 48, 101);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 102);
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  fault::FaultSpec unknown;
  unknown.kind = fault::FaultSpec::Kind::kThrow;
  unknown.count = -1;
  fault::FaultRegistry::instance().arm("no.such.point", unknown);
  fault::FaultSpec foreign;
  foreign.kind = fault::FaultSpec::Kind::kThrow;
  foreign.count = -1;
  foreign.scope = 999;  // no scan ever gets this id here
  fault::FaultRegistry::instance().arm("scan.round", foreign);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/1));
  ScanRequest request;
  request.model = &victim;
  request.probe = &probe;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request.options.deadline_seconds = 3600.0;  // set but never hit
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
  expect_reports_identical(direct, outcome.report);
}

}  // namespace
}  // namespace usb
