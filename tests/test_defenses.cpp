// Defense-level tests: NC and TABOR reverse engineering on a small victim,
// verdict plumbing through the parallel per-class driver, and timing
// bookkeeping. (The USB detector has its own suite in test_core.cpp.)
#include <gtest/gtest.h>

#include "attacks/badnet.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "nn/trainer.h"

namespace usb {
namespace {

/// One backdoored victim shared by the suite.
class DefenseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = DatasetSpec::mnist_like();
    const Dataset train_set = generate_dataset(spec_, 1500, 201);
    probe_ = new Dataset(generate_dataset(spec_, 200, 202));

    BadNetConfig config;
    config.trigger_size = 3;
    config.target_class = 6;
    config.poison_rate = 0.20;
    config.seed = 203;
    BadNet attack(config, spec_);
    victim_ = new Network(make_network(Architecture::kBasicCnn, 1, 28, 10, 204));
    TrainConfig train_config;
    train_config.epochs = 5;
    train_config.seed = 205;
    (void)attack.train_backdoored(*victim_, train_set, train_config);
    asr_ = attack.success_rate(*victim_, generate_dataset(spec_, 200, 206));
  }

  static void TearDownTestSuite() {
    delete victim_;
    delete probe_;
    victim_ = nullptr;
    probe_ = nullptr;
  }

  static DatasetSpec spec_;
  static Network* victim_;
  static Dataset* probe_;
  static float asr_;
};

DatasetSpec DefenseFixture::spec_;
Network* DefenseFixture::victim_ = nullptr;
Dataset* DefenseFixture::probe_ = nullptr;
float DefenseFixture::asr_ = 0.0F;

TEST_F(DefenseFixture, VictimCarriesBackdoor) { EXPECT_GT(asr_, 0.8F); }

TEST_F(DefenseFixture, NcFindsSmallTriggerForTargetClass) {
  ReverseOptConfig config;
  config.steps = 80;
  NeuralCleanse nc{config};
  const TriggerEstimate target_est = nc.reverse_engineer_class(*victim_, *probe_, 6);
  const TriggerEstimate other_est = nc.reverse_engineer_class(*victim_, *probe_, 3);
  // The backdoored class admits a much smaller high-fooling trigger.
  EXPECT_GT(target_est.fooling_rate, 0.9);
  EXPECT_LT(target_est.mask_l1, other_est.mask_l1);
}

TEST_F(DefenseFixture, NcEstimateShapesAndRanges) {
  ReverseOptConfig config;
  config.steps = 20;
  NeuralCleanse nc{config};
  const TriggerEstimate est = nc.reverse_engineer_class(*victim_, *probe_, 0);
  EXPECT_EQ(est.mask.shape(), (Shape{28, 28}));
  EXPECT_EQ(est.pattern.shape(), (Shape{1, 28, 28}));
  EXPECT_GE(est.mask.min(), 0.0F);
  EXPECT_LE(est.mask.max(), 1.0F);
  EXPECT_GE(est.pattern.min(), 0.0F);
  EXPECT_LE(est.pattern.max(), 1.0F);
  EXPECT_GE(est.fooling_rate, 0.0);
  EXPECT_LE(est.fooling_rate, 1.0);
}

TEST_F(DefenseFixture, TaborFindsSmallTriggerForTargetClass) {
  TaborConfig config;
  config.base.steps = 80;
  Tabor tabor{config};
  const TriggerEstimate target_est = tabor.reverse_engineer_class(*victim_, *probe_, 6);
  const TriggerEstimate other_est = tabor.reverse_engineer_class(*victim_, *probe_, 3);
  // TABOR's blocking/overlay regularizers trade some fooling rate for
  // trigger quality; the separation property is what matters.
  EXPECT_GT(target_est.fooling_rate, 0.5);
  EXPECT_LT(target_est.mask_l1, other_est.mask_l1);
}

TEST_F(DefenseFixture, DetectReportsEveryClassWithTimings) {
  ReverseOptConfig config;
  config.steps = 15;  // smoke-budget full detection
  NeuralCleanse nc{config};
  const DetectionReport report = nc.detect(*victim_, *probe_);
  EXPECT_EQ(report.method, "NC");
  ASSERT_EQ(report.per_class.size(), 10U);
  ASSERT_EQ(report.per_class_seconds.size(), 10U);
  ASSERT_EQ(report.verdict.norms.size(), 10U);
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(report.per_class[t].target_class, static_cast<std::int64_t>(t));
    EXPECT_GE(report.per_class_seconds[t], 0.0);
    EXPECT_EQ(report.verdict.norms[t], report.per_class[t].mask_l1);
  }
}

TEST_F(DefenseFixture, FullNcDetectionFlagsVictim) {
  ReverseOptConfig config;
  config.steps = 80;
  NeuralCleanse nc{config};
  const DetectionReport report = nc.detect(*victim_, *probe_);
  EXPECT_TRUE(report.verdict.backdoored);
  const TargetOutcome outcome = classify_target(report.verdict, 6);
  EXPECT_TRUE(outcome == TargetOutcome::kCorrect || outcome == TargetOutcome::kCorrectSet);
}

TEST_F(DefenseFixture, EarlyExitKeepsVerdictOnBackdooredVictim) {
  // Early exit trades refinement budget for time on classes that can no
  // longer become low-side outliers; the verdict on a genuinely backdoored
  // model must survive that trade.
  ReverseOptConfig config;
  config.steps = 80;
  const DetectionReport full = NeuralCleanse(config).detect(*victim_, *probe_);

  config.early_exit.enabled = true;
  config.early_exit.round_steps = 16;
  config.early_exit.min_rounds = 1;
  config.early_exit.margin = 0.25;
  const DetectionReport early = NeuralCleanse(config).detect(*victim_, *probe_);

  EXPECT_TRUE(full.verdict.backdoored);
  EXPECT_EQ(early.verdict.backdoored, full.verdict.backdoored);
  EXPECT_EQ(early.verdict.flagged_classes, full.verdict.flagged_classes);
  const TargetOutcome outcome = classify_target(early.verdict, 6);
  EXPECT_TRUE(outcome == TargetOutcome::kCorrect || outcome == TargetOutcome::kCorrectSet);
}

TEST_F(DefenseFixture, ParallelDriverMatchesSequentialNorms) {
  // The per-class parallel driver must produce the same statistics as
  // calling reverse_engineer_class sequentially (determinism guarantee).
  ReverseOptConfig config;
  config.steps = 10;
  NeuralCleanse nc{config};
  const DetectionReport parallel_report = nc.detect(*victim_, *probe_);
  for (std::int64_t t = 0; t < 3; ++t) {  // spot-check a few classes
    const TriggerEstimate sequential = nc.reverse_engineer_class(*victim_, *probe_, t);
    EXPECT_NEAR(parallel_report.per_class[static_cast<std::size_t>(t)].mask_l1,
                sequential.mask_l1, 1e-6);
  }
}

}  // namespace
}  // namespace usb
