// Tests for the utility layer: serialization, tables, image I/O, timers,
// env config, and the deterministic thread pool.
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "utils/config.h"
#include "utils/csv.h"
#include "utils/image_io.h"
#include "utils/serialize.h"
#include "utils/table.h"
#include "utils/thread_pool.h"
#include "utils/timer.h"

namespace usb {
namespace {

TEST(Serialize, RoundTripAllTypes) {
  BinaryWriter writer;
  writer.write_u32(0xABCD1234);
  writer.write_i64(-42);
  writer.write_f32(3.5F);
  writer.write_string("universal soldier");
  const std::vector<float> floats{1.0F, -2.0F, 0.5F};
  writer.write_floats(floats);
  const std::vector<std::int64_t> ints{7, -9};
  writer.write_i64s(ints);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.read_u32(), 0xABCD1234U);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_EQ(reader.read_f32(), 3.5F);
  EXPECT_EQ(reader.read_string(), "universal soldier");
  EXPECT_EQ(reader.read_floats(), floats);
  EXPECT_EQ(reader.read_i64s(), ints);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, TruncationThrows) {
  BinaryWriter writer;
  writer.write_u32(7);
  BinaryReader reader(writer.buffer());
  (void)reader.read_u32();
  EXPECT_THROW((void)reader.read_i64(), std::runtime_error);
}

TEST(Serialize, FileRoundTripAndExists) {
  const std::string path = ::testing::TempDir() + "serialize_test.bin";
  BinaryWriter writer;
  writer.write_string("persisted");
  writer.save(path);
  EXPECT_TRUE(file_exists(path));
  BinaryReader reader = BinaryReader::from_file(path);
  EXPECT_EQ(reader.read_string(), "persisted");
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
}

TEST(Table, RendersAlignedColumns) {
  Table table({"a", "long header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide cell", "x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("wide cell"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
  // Every rendered line has equal width.
  std::size_t first_line = out.find('\n');
  const std::string line0 = out.substr(0, first_line);
  std::size_t pos = 0;
  for (std::size_t next = out.find('\n', pos); next != std::string::npos;
       pos = next + 1, next = out.find('\n', pos)) {
    EXPECT_EQ(next - pos, line0.size());
  }
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.9533), "95.33");
}

TEST(Timer, FormatMinutesSeconds) {
  EXPECT_EQ(format_minutes_seconds(0.0), "0:00");
  EXPECT_EQ(format_minutes_seconds(61.0), "1:01");
  EXPECT_EQ(format_minutes_seconds(267.12), "4:27");
  EXPECT_EQ(format_minutes_seconds(-5.0), "0:00");
}

TEST(Timer, MeasuresElapsed) {
  const Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(timer.milliseconds(), timer.seconds() * 1000.0 - 1.0);
}

TEST(Config, EnvParsingWithFallbacks) {
  ::setenv("USB_TEST_INT", "42", 1);
  ::setenv("USB_TEST_DOUBLE", "2.5", 1);
  ::setenv("USB_TEST_BOOL", "true", 1);
  ::setenv("USB_TEST_STRING", "hello", 1);
  EXPECT_EQ(env_int("USB_TEST_INT", 0), 42);
  EXPECT_EQ(env_double("USB_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_TRUE(env_bool("USB_TEST_BOOL", false));
  EXPECT_EQ(env_string("USB_TEST_STRING", ""), "hello");
  EXPECT_EQ(env_int("USB_TEST_MISSING", 7), 7);
  ::setenv("USB_TEST_INT", "notanumber", 1);
  EXPECT_EQ(env_int("USB_TEST_INT", 9), 9);
  ::unsetenv("USB_TEST_INT");
  ::unsetenv("USB_TEST_DOUBLE");
  ::unsetenv("USB_TEST_BOOL");
  ::unsetenv("USB_TEST_STRING");
}

TEST(Config, FastModeShrinksBudgets) {
  ::setenv("USB_FAST", "1", 1);
  const ExperimentScale scale = ExperimentScale::from_env();
  EXPECT_LE(scale.models_per_case, 2);
  EXPECT_LE(scale.train_size, 800);
  ::unsetenv("USB_FAST");
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(100,
                            [](std::int64_t begin, std::int64_t) {
                              if (begin >= 0) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  parallel_for(10, [&](std::int64_t begin, std::int64_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      // Nested parallel_for from a worker must not deadlock.
      parallel_for(4, [&](std::int64_t b, std::int64_t e) {
        total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ImageIo, WriteAndStripAndNormalize) {
  Image image;
  image.channels = 3;
  image.height = 4;
  image.width = 4;
  image.pixels.assign(48, 0.5F);
  const std::string path = ::testing::TempDir() + "img_test.ppm";
  write_image(image, path);
  EXPECT_TRUE(file_exists(path));
  std::remove(path.c_str());

  const std::vector<Image> strip_images{image, image, image};
  const std::string strip_path = ::testing::TempDir() + "strip_test.ppm";
  write_image_strip(strip_images, strip_path, 2);
  EXPECT_TRUE(file_exists(strip_path));
  std::remove(strip_path.c_str());

  const std::vector<float> values{-3.0F, 0.0F, 5.0F, 1.0F};
  const Image normalized = normalize_to_image(values, 1, 2, 2);
  EXPECT_EQ(normalized.pixels[0], 0.0F);
  EXPECT_EQ(normalized.pixels[2], 1.0F);
}

TEST(ImageIo, ValidationErrors) {
  Image bad;
  bad.channels = 2;  // only 1 or 3 supported
  bad.height = 2;
  bad.width = 2;
  bad.pixels.assign(8, 0.0F);
  EXPECT_THROW(write_image(bad, "/tmp/never.ppm"), std::invalid_argument);
  EXPECT_THROW((void)normalize_to_image(std::vector<float>{1.0F}, 1, 2, 2),
               std::invalid_argument);
}

TEST(ImageIo, AsciiArtDimensions) {
  Image image;
  image.channels = 1;
  image.height = 8;
  image.width = 8;
  image.pixels.assign(64, 1.0F);
  const std::vector<std::string> art = ascii_art(image, 8);
  EXPECT_EQ(art.size(), 8U);
  EXPECT_EQ(art[0].size(), 16U);  // double-width cells
  EXPECT_EQ(art[0][0], '@');      // bright pixel -> densest glyph
}

TEST(Csv, EscapingAndLayout) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");

  CsvWriter csv({"method", "norm", "note"});
  csv.add_row({"USB", "4.49", "target, class 0"});
  csv.add_row({"NC", "8.72"});
  EXPECT_EQ(csv.num_rows(), 2U);
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("method,norm,note\n"), std::string::npos);
  EXPECT_NE(out.find("\"target, class 0\""), std::string::npos);
  EXPECT_NE(out.find("NC,8.72,\n"), std::string::npos);  // padded short row
}

TEST(Csv, SaveRoundTrip) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "csv_test.csv";
  csv.save(path);
  EXPECT_TRUE(file_exists(path));
  BinaryReader reader = BinaryReader::from_file(path);  // raw byte read
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usb
