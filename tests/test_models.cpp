// Tests for the architecture factories, Network feature/head split,
// checkpoint round-trips, and network cloning.
#include <cstdio>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "tensor/tensor_ops.h"
#include "utils/serialize.h"

namespace usb {
namespace {

using testing::fill_uniform;

struct ArchCase {
  Architecture arch;
  std::int64_t channels;
  std::int64_t size;
  std::int64_t classes;
};

class ArchParamTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchParamTest, ForwardProducesLogits) {
  const ArchCase tc = GetParam();
  Network net = make_network(tc.arch, tc.channels, tc.size, tc.classes, /*seed=*/1);
  net.set_training(false);
  Rng rng(2);
  Tensor x(Shape{3, tc.channels, tc.size, tc.size});
  fill_uniform(x, rng, 0.0F, 1.0F);
  const Tensor logits = net.forward(x);
  EXPECT_EQ(logits.shape(), (Shape{3, tc.classes}));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST_P(ArchParamTest, BackwardReachesInput) {
  const ArchCase tc = GetParam();
  Network net = make_network(tc.arch, tc.channels, tc.size, tc.classes, /*seed=*/3);
  net.set_training(false);
  Rng rng(4);
  Tensor x(Shape{2, tc.channels, tc.size, tc.size});
  fill_uniform(x, rng, 0.0F, 1.0F);
  const Tensor logits = net.forward(x);
  Tensor dlogits(logits.shape());
  fill_uniform(dlogits, rng);
  const Tensor dx = net.backward(dlogits);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_GT(dx.abs_sum(), 0.0F);  // gradient actually reaches the image
}

TEST_P(ArchParamTest, FeatureHeadSplitMatchesFullForward) {
  const ArchCase tc = GetParam();
  Network net = make_network(tc.arch, tc.channels, tc.size, tc.classes, /*seed=*/5);
  net.set_training(false);
  Rng rng(6);
  Tensor x(Shape{2, tc.channels, tc.size, tc.size});
  fill_uniform(x, rng, 0.0F, 1.0F);
  const Tensor full = net.forward(x);
  const Tensor features = net.forward_features(x);
  const Tensor split = net.forward_head(features);
  ASSERT_EQ(split.shape(), full.shape());
  for (std::int64_t i = 0; i < full.numel(); ++i) EXPECT_NEAR(split[i], full[i], 1e-5F);
}

TEST_P(ArchParamTest, CheckpointRoundTrip) {
  const ArchCase tc = GetParam();
  Network net = make_network(tc.arch, tc.channels, tc.size, tc.classes, /*seed=*/7);
  net.set_training(false);
  Rng rng(8);
  Tensor x(Shape{1, tc.channels, tc.size, tc.size});
  fill_uniform(x, rng, 0.0F, 1.0F);
  const Tensor before = net.forward(x);

  const std::string path = ::testing::TempDir() + "ckpt_" + to_string(tc.arch) + ".bin";
  save_checkpoint(net, path);
  Network restored = load_checkpoint(path);
  restored.set_training(false);
  const Tensor after = restored.forward(x);
  ASSERT_EQ(after.shape(), before.shape());
  for (std::int64_t i = 0; i < before.numel(); ++i) EXPECT_EQ(after[i], before[i]);
  std::remove(path.c_str());
}

TEST_P(ArchParamTest, CloneIsIndependentAndIdentical) {
  const ArchCase tc = GetParam();
  Network net = make_network(tc.arch, tc.channels, tc.size, tc.classes, /*seed=*/9);
  net.set_training(false);
  Network clone = clone_network(net);
  Rng rng(10);
  Tensor x(Shape{2, tc.channels, tc.size, tc.size});
  fill_uniform(x, rng, 0.0F, 1.0F);
  const Tensor a = net.forward(x);
  const Tensor b = clone.forward(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);

  // Mutating the clone must not affect the source.
  clone.parameters()[0]->value.fill(0.0F);
  const Tensor c = net.forward(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], c[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchParamTest,
    ::testing::Values(ArchCase{Architecture::kBasicCnn, 1, 28, 10},
                      ArchCase{Architecture::kMiniResNet, 3, 32, 10},
                      ArchCase{Architecture::kMiniVgg, 3, 32, 10},
                      ArchCase{Architecture::kMiniEffNet, 3, 48, 10},
                      ArchCase{Architecture::kMiniResNet, 3, 32, 43}));  // GTSRB width

TEST(Architecture, StringRoundTrip) {
  for (const Architecture arch : {Architecture::kBasicCnn, Architecture::kMiniResNet,
                                  Architecture::kMiniVgg, Architecture::kMiniEffNet}) {
    EXPECT_EQ(architecture_from_string(to_string(arch)), arch);
  }
  EXPECT_THROW((void)architecture_from_string("resnet152"), std::invalid_argument);
}

TEST(Network, BasicCnnMatchesPaperGeometry) {
  // Appendix A.7: conv(1,16,5), conv(16,32,5), fc(512,512), fc(512,10) for
  // 28x28 MNIST inputs -> flattened feature size is exactly 512.
  Network net = make_network(Architecture::kBasicCnn, 1, 28, 10, 11);
  net.set_training(false);
  const Tensor features = net.forward_features(Tensor(Shape{1, 1, 28, 28}));
  EXPECT_EQ(features.numel(), 512);
}

TEST(Network, ParameterCountIsPositiveAndStable) {
  Network a = make_network(Architecture::kMiniResNet, 3, 32, 10, 1);
  Network b = make_network(Architecture::kMiniResNet, 3, 32, 10, 2);
  EXPECT_GT(a.parameter_count(), 1000);
  EXPECT_EQ(a.parameter_count(), b.parameter_count());  // seed-independent
}

TEST(Checkpoint, RejectsCorruptedFile) {
  const std::string path = ::testing::TempDir() + "corrupt.bin";
  BinaryWriter writer;
  writer.write_u32(0xDEADBEEF);
  writer.save(path);
  EXPECT_THROW((void)load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usb
