// Core-pipeline tests: targeted DeepFool flips samples, Alg. 1 crafts
// working targeted UAPs, the UAP decomposition is sane, and the full USB
// detector separates a backdoored MNIST victim from a clean one end to end.
#include <gtest/gtest.h>

#include "attacks/badnet.h"
#include "core/deepfool.h"
#include "core/targeted_uap.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

/// Shared tiny victims (expensive to train once per test -> build once).
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = DatasetSpec::mnist_like();
    const Dataset train_set = generate_dataset(spec_, 1500, 101);
    test_set_ = new Dataset(generate_dataset(spec_, 300, 102));
    probe_ = new Dataset(generate_dataset(spec_, 200, 103));

    TrainConfig config;
    config.epochs = 5;
    config.seed = 104;

    clean_ = new Network(make_network(Architecture::kBasicCnn, 1, 28, 10, 105));
    (void)train_network(*clean_, train_set, config);

    BadNetConfig badnet_config;
    badnet_config.trigger_size = 3;
    badnet_config.target_class = 4;
    badnet_config.poison_rate = 0.20;
    badnet_config.seed = 106;
    attack_ = new BadNet(badnet_config, spec_);
    backdoored_ = new Network(make_network(Architecture::kBasicCnn, 1, 28, 10, 107));
    (void)attack_->train_backdoored(*backdoored_, train_set, config);
  }

  static void TearDownTestSuite() {
    delete clean_;
    delete backdoored_;
    delete attack_;
    delete test_set_;
    delete probe_;
    clean_ = backdoored_ = nullptr;
    attack_ = nullptr;
    test_set_ = probe_ = nullptr;
  }

  static DatasetSpec spec_;
  static Network* clean_;
  static Network* backdoored_;
  static BadNet* attack_;
  static Dataset* test_set_;
  static Dataset* probe_;
};

DatasetSpec CoreFixture::spec_;
Network* CoreFixture::clean_ = nullptr;
Network* CoreFixture::backdoored_ = nullptr;
BadNet* CoreFixture::attack_ = nullptr;
Dataset* CoreFixture::test_set_ = nullptr;
Dataset* CoreFixture::probe_ = nullptr;

TEST_F(CoreFixture, VictimsAreHealthy) {
  EXPECT_GT(evaluate_accuracy(*clean_, *test_set_), 0.9F);
  EXPECT_GT(evaluate_accuracy(*backdoored_, *test_set_), 0.9F);
  EXPECT_GT(attack_->success_rate(*backdoored_, *test_set_), 0.85F);
}

TEST_F(CoreFixture, InputGradientMatchesSelectorSemantics) {
  // d(sum of selected logits)/dx must be nonzero and depend on the selector.
  const Tensor x = probe_->gather_images(std::vector<std::int64_t>{0, 1});
  Tensor sel_a(Shape{2, 10});
  sel_a[0 * 10 + 3] = 1.0F;
  sel_a[1 * 10 + 3] = 1.0F;
  Tensor sel_b(Shape{2, 10});
  sel_b[0 * 10 + 7] = 1.0F;
  sel_b[1 * 10 + 7] = 1.0F;
  const Tensor grad_a = input_gradient(*clean_, x, sel_a);
  const Tensor grad_b = input_gradient(*clean_, x, sel_b);
  EXPECT_GT(grad_a.abs_sum(), 0.0F);
  EXPECT_FALSE(grad_a.equals(grad_b));
}

TEST_F(CoreFixture, TargetedDeepFoolFlipsMostRows) {
  const Tensor batch = probe_->gather_images(std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7});
  DeepFoolConfig config;
  config.max_iterations = 25;  // generous budget for a hard target
  const std::int64_t target = 8;
  const DeepFoolResult result = targeted_deepfool(*clean_, batch, target, config);
  EXPECT_GE(result.flipped, 5);  // most of the batch reaches the target

  // And the perturbation it reports actually produces those flips.
  Tensor adv = batch;
  adv += result.perturbation;
  adv.clamp(0.0F, 1.0F);
  const Tensor logits = clean_->forward(adv);
  std::int64_t hits = 0;
  for (const std::int64_t pred : argmax_rows(logits)) {
    if (pred == target) ++hits;
  }
  EXPECT_GE(hits, result.flipped - 2);
}

TEST_F(CoreFixture, DeepFoolLeavesAlreadyTargetRowsAlone) {
  // Rows already classified as the target get zero perturbation.
  const Tensor logits = clean_->forward(probe_->images());
  const std::vector<std::int64_t> preds = argmax_rows(logits);
  std::int64_t row = -1;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == 5) {
      row = static_cast<std::int64_t>(i);
      break;
    }
  }
  ASSERT_GE(row, 0) << "probe contains no sample classified 5";
  const Tensor x = probe_->gather_images(std::vector<std::int64_t>{row});
  const DeepFoolResult result = targeted_deepfool(*clean_, x, 5);
  EXPECT_EQ(result.perturbation.abs_sum(), 0.0F);
  EXPECT_EQ(result.flipped, 1);
}

TEST_F(CoreFixture, TargetedUapReachesDesiredRate) {
  TargetedUapConfig config;
  config.desired_rate = 0.5;
  config.max_passes = 6;
  const TargetedUapResult result = targeted_uap(*backdoored_, *probe_, 4, config);
  EXPECT_GE(result.fooling_rate, 0.5);
  EXPECT_EQ(result.perturbation.shape(), (Shape{1, 1, 28, 28}));
}

TEST_F(CoreFixture, BackdooredUapSmallerThanCleanUap) {
  // The paper's core observation, asserted quantitatively: toward the
  // BACKDOOR TARGET the backdoored model needs a smaller UAP than the clean
  // model needs toward the same class.
  TargetedUapConfig config;
  const TargetedUapResult on_backdoored = targeted_uap(*backdoored_, *probe_, 4, config);
  const TargetedUapResult on_clean = targeted_uap(*clean_, *probe_, 4, config);
  EXPECT_LT(on_backdoored.perturbation.l2_norm(), on_clean.perturbation.l2_norm());
}

TEST_F(CoreFixture, DecomposeUapProducesValidInit) {
  UsbDetector usb{UsbConfig{}};
  Tensor uap(Shape{1, 1, 28, 28});
  Rng rng(7);
  for (std::int64_t i = 0; i < uap.numel(); ++i) uap[i] = rng.uniform_float(-0.5F, 0.5F);
  const UsbDetector::Decomposition decomposition = usb.decompose_uap(uap);
  EXPECT_EQ(decomposition.mask.shape(), (Shape{28, 28}));
  EXPECT_EQ(decomposition.pattern.shape(), (Shape{1, 28, 28}));
  EXPECT_GE(decomposition.mask.min(), 0.0F);
  EXPECT_LE(decomposition.mask.max(), 1.0F);
  EXPECT_GE(decomposition.pattern.min(), 0.0F);
  EXPECT_LE(decomposition.pattern.max(), 1.0F);
}

TEST_F(CoreFixture, UsbSeparatesBackdooredFromClean) {
  UsbConfig config;
  config.refine_steps = 80;  // test-budget detection
  UsbDetector usb{config};

  const DetectionReport on_backdoored = usb.detect(*backdoored_, *probe_);
  EXPECT_TRUE(on_backdoored.verdict.backdoored);
  const TargetOutcome outcome = classify_target(on_backdoored.verdict, 4);
  EXPECT_TRUE(outcome == TargetOutcome::kCorrect || outcome == TargetOutcome::kCorrectSet)
      << "flagged classes do not include the true target";

  const DetectionReport on_clean = usb.detect(*clean_, *probe_);
  EXPECT_FALSE(on_clean.verdict.backdoored);
}

TEST_F(CoreFixture, PrecomputedUapSkipsAlgorithmOne) {
  UsbConfig config;
  config.refine_steps = 40;
  UsbDetector usb{config};
  const TargetedUapResult uap = targeted_uap(*backdoored_, *probe_, 4, config.uap);
  const TriggerEstimate with_transfer =
      usb.reverse_engineer_class(*backdoored_, *probe_, 4, uap.perturbation);
  EXPECT_GT(with_transfer.fooling_rate, 0.8);
  EXPECT_LT(with_transfer.mask_l1, 784.0);  // sane mask
}

TEST_F(CoreFixture, ReportExposesPerClassTimings) {
  UsbConfig config;
  config.refine_steps = 10;
  config.uap.max_passes = 1;
  UsbDetector usb{config};
  const DetectionReport report = usb.detect(*clean_, *probe_);
  ASSERT_EQ(report.per_class_seconds.size(), 10U);
  EXPECT_GT(report.total_seconds(), 0.0);
  const Tensor trigger = report.reversed_trigger(0);
  EXPECT_EQ(trigger.shape(), (Shape{1, 28, 28}));
  EXPECT_THROW((void)report.reversed_trigger(99), std::out_of_range);
}

}  // namespace
}  // namespace usb
