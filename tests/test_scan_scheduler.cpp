// ClassScanScheduler: the parallel multi-class detection driver.
//
// The load-bearing guarantee is determinism: a DetectionReport's scientific
// payload (per-class estimates and verdict) must be bit-identical for any
// thread count, because every per-class job derives its RNG streams only
// from (base_seed, class) and the reduction into the MAD stage is ordered.
// USB_THREADS merely resizes the global pool; injecting explicitly sized
// pools through the scan_pool override exercises the same code path
// in-process, so these tests cover USB_THREADS=1 vs USB_THREADS=4.
#include <gtest/gtest.h>

#include <chrono>

#include "core/usb.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "defenses/class_scan_scheduler.h"
#include "defenses/masked_trigger.h"
#include "defenses/neural_cleanse.h"
#include "defenses/scan_plan.h"
#include "defenses/tabor.h"
#include "nn/models.h"

namespace usb {
namespace {

DatasetSpec tiny_spec(std::int64_t num_classes = 10) {
  DatasetSpec spec;
  spec.name = "scan-scheduler-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

/// A smoke-budget USB configuration: one UAP pass, a few refinement steps.
UsbConfig tiny_usb_config() {
  UsbConfig config;
  config.uap.max_passes = 1;
  config.uap.craft_size = 32;
  config.uap.batch_size = 16;
  config.refine_steps = 4;
  config.batch_size = 8;
  return config;
}

void expect_estimates_identical(const TriggerEstimate& a, const TriggerEstimate& b) {
  EXPECT_EQ(a.target_class, b.target_class);
  EXPECT_EQ(a.mask_l1, b.mask_l1);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.fooling_rate, b.fooling_rate);
  EXPECT_TRUE(a.pattern.equals(b.pattern));
  EXPECT_TRUE(a.mask.equals(b.mask));
}

/// Bit-identity of everything except wall-clock timings.
void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    expect_estimates_identical(a.per_class[t], b.per_class[t]);
  }
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.norms, b.verdict.norms);
  EXPECT_EQ(a.verdict.anomaly, b.verdict.anomaly);
  EXPECT_EQ(a.per_class_state, b.per_class_state);
}

TEST(ProbeBatchCache, MatchesFreshDataLoaderPass) {
  const Dataset probe = generate_dataset(tiny_spec(), 70, 41);
  const ProbeBatchCache cache(probe, 32);
  EXPECT_EQ(cache.total_samples(), 70);
  ASSERT_EQ(cache.batches().size(), 3U);  // 32 + 32 + 6

  DataLoader loader(probe, 32, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::size_t i = 0;
  while (loader.next(batch)) {
    ASSERT_LT(i, cache.batches().size());
    EXPECT_TRUE(cache.batches()[i].images.equals(batch.images));
    EXPECT_EQ(cache.batches()[i].labels, batch.labels);
    ++i;
  }
  EXPECT_EQ(i, cache.batches().size());
}

TEST(ProbeBatchCache, EmptyProbeSet) {
  const Dataset probe = generate_dataset(tiny_spec(), 0, 42);
  const ProbeBatchCache cache(probe);
  EXPECT_EQ(cache.total_samples(), 0);
  EXPECT_TRUE(cache.batches().empty());

  Network model = make_network(Architecture::kBasicCnn, 1, 16, 10, 43);
  Rng rng(44);
  const MaskedTrigger trigger(1, 16, rng, 0.1F);
  EXPECT_EQ(fooling_rate(model, cache, trigger, 0), 0.0);
}

TEST(ClassScanScheduler, ClassStreamSeedsAreStableAndDistinct) {
  const std::uint64_t a0 = ClassScanScheduler::class_stream_seed(7, 0);
  EXPECT_EQ(a0, ClassScanScheduler::class_stream_seed(7, 0));  // pure function
  // Distinct across classes and across base seeds.
  EXPECT_NE(a0, ClassScanScheduler::class_stream_seed(7, 1));
  EXPECT_NE(a0, ClassScanScheduler::class_stream_seed(8, 0));
}

TEST(ClassScanScheduler, OrderedReductionFeedsMadInClassOrder) {
  const Dataset probe = generate_dataset(tiny_spec(4), 24, 45);
  Network model = make_network(Architecture::kBasicCnn, 1, 16, 4, 46);

  ClassScanOptions options;
  options.base_seed = 5;
  const ClassScanScheduler scheduler(options);
  const DetectionReport report = scheduler.run(
      "stub", model, probe, [](Network&, const Dataset&, const ClassScanJob& job) {
        TriggerEstimate estimate;
        estimate.target_class = job.target_class;
        estimate.pattern = Tensor(Shape{1, 16, 16});
        estimate.mask = Tensor(Shape{16, 16});
        estimate.mask_l1 = 10.0 + static_cast<double>(job.target_class);
        return estimate;
      });
  ASSERT_EQ(report.per_class.size(), 4U);
  ASSERT_EQ(report.verdict.norms.size(), 4U);
  for (std::int64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(report.per_class[static_cast<std::size_t>(t)].target_class, t);
    EXPECT_EQ(report.verdict.norms[static_cast<std::size_t>(t)],
              10.0 + static_cast<double>(t));
  }
}

TEST(ClassScanScheduler, JobsReceiveSharedCacheAndPerClassSeeds) {
  const Dataset probe = generate_dataset(tiny_spec(3), 18, 47);
  Network model = make_network(Architecture::kBasicCnn, 1, 16, 3, 48);

  ClassScanOptions options;
  options.base_seed = 11;
  const ClassScanScheduler scheduler(options);
  std::vector<std::uint64_t> seeds(3, 0);
  std::vector<const ProbeBatchCache*> caches(3, nullptr);
  std::vector<std::int64_t> cache_samples(3, 0);
  // The cache lives in run()'s frame, so it must be read inside the job
  // callback; only the pointer VALUES survive for the shared-identity check.
  (void)scheduler.run("stub", model, probe,
                      [&](Network&, const Dataset&, const ClassScanJob& job) {
                        const auto index = static_cast<std::size_t>(job.target_class);
                        seeds[index] = job.rng_seed;
                        caches[index] = job.probe_cache;
                        cache_samples[index] = job.probe_cache->total_samples();
                        TriggerEstimate estimate;
                        estimate.target_class = job.target_class;
                        estimate.pattern = Tensor(Shape{1, 16, 16});
                        estimate.mask = Tensor(Shape{16, 16});
                        return estimate;
                      });
  for (std::int64_t t = 0; t < 3; ++t) {
    EXPECT_EQ(seeds[static_cast<std::size_t>(t)],
              ClassScanScheduler::class_stream_seed(11, t));
    ASSERT_NE(caches[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(cache_samples[static_cast<std::size_t>(t)], 18);
  }
  // One shared cache, not one per job.
  EXPECT_EQ(caches[0], caches[1]);
  EXPECT_EQ(caches[1], caches[2]);
}

// The satellite regression test: UsbDetector::detect on a small synthetic
// model produces an identical DetectionReport under USB_THREADS=1 vs
// USB_THREADS=4 (explicitly sized pools injected via scan_pool).
TEST(ClassScanScheduler, UsbDetectorBitIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 64, 51);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 10, 52);

  ThreadPool pool_1(1);
  ThreadPool pool_4(4);

  UsbConfig config = tiny_usb_config();
  config.scan_pool = &pool_1;
  UsbDetector usb_single(config);
  const DetectionReport single = usb_single.detect(victim, probe);

  config.scan_pool = &pool_4;
  UsbDetector usb_parallel(config);
  const DetectionReport parallel = usb_parallel.detect(victim, probe);

  ASSERT_EQ(single.per_class.size(), 10U);
  expect_reports_identical(single, parallel);
}

TEST(ClassScanScheduler, NcAndTaborBitIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec(6);
  const Dataset probe = generate_dataset(spec, 48, 53);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 6, 54);

  ThreadPool pool_1(1);
  ThreadPool pool_4(4);

  ReverseOptConfig nc_config;
  nc_config.steps = 6;
  nc_config.scan_pool = &pool_1;
  const DetectionReport nc_single = NeuralCleanse(nc_config).detect(victim, probe);
  nc_config.scan_pool = &pool_4;
  const DetectionReport nc_parallel = NeuralCleanse(nc_config).detect(victim, probe);
  expect_reports_identical(nc_single, nc_parallel);

  TaborConfig tabor_config;
  tabor_config.base.steps = 4;
  tabor_config.base.scan_pool = &pool_1;
  const DetectionReport tabor_single = Tabor(tabor_config).detect(victim, probe);
  tabor_config.base.scan_pool = &pool_4;
  const DetectionReport tabor_parallel = Tabor(tabor_config).detect(victim, probe);
  expect_reports_identical(tabor_single, tabor_parallel);
}

// Single-class entry points must reproduce the parallel scan exactly (the
// per-class stream roots depend only on the base seed and the class).
TEST(ClassScanScheduler, SequentialSingleClassMatchesParallelScan) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 55);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 56);

  UsbDetector usb(tiny_usb_config());
  const DetectionReport report = usb.detect(victim, probe);
  ASSERT_EQ(report.per_class.size(), 4U);
  for (std::int64_t t = 0; t < 4; ++t) {
    const TriggerEstimate sequential = usb.reverse_engineer_class(victim, probe, t);
    expect_estimates_identical(report.per_class[static_cast<std::size_t>(t)], sequential);
  }
}

// Shared-prefix caching is a pure reuse optimization: detect() must be
// bit-identical with the Alg. 1 scan prefix shared or recomputed per class,
// and that identity must hold at every pool size.
TEST(ClassScanScheduler, UsbSharedPrefixOnOffBitIdentical) {
  const DatasetSpec spec = tiny_spec(5);
  const Dataset probe = generate_dataset(spec, 40, 61);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 5, 62);

  ThreadPool pool_1(1);
  ThreadPool pool_4(4);

  UsbConfig config = tiny_usb_config();
  config.share_prefix = true;
  config.scan_pool = &pool_1;
  const DetectionReport shared_single = UsbDetector(config).detect(victim, probe);
  config.scan_pool = &pool_4;
  const DetectionReport shared_parallel = UsbDetector(config).detect(victim, probe);

  config.share_prefix = false;
  config.scan_pool = &pool_1;
  const DetectionReport recomputed_single = UsbDetector(config).detect(victim, probe);
  config.scan_pool = &pool_4;
  const DetectionReport recomputed_parallel = UsbDetector(config).detect(victim, probe);

  expect_reports_identical(shared_single, recomputed_single);
  expect_reports_identical(shared_single, shared_parallel);
  expect_reports_identical(shared_single, recomputed_parallel);
}

// An externally injected probe cache (the experiment harness shares one per
// model across detectors) must not change any bit of the report either.
TEST(ClassScanScheduler, ExternalProbeCacheBitIdentical) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 36, 63);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 64);

  ReverseOptConfig config;
  config.steps = 6;
  const DetectionReport fresh = NeuralCleanse(config).detect(victim, probe);

  // Must match the scan's eval_batch_size (128) or the scheduler ignores it.
  const ProbeBatchCache shared(probe, 128);
  config.shared_probe_cache = &shared;
  const DetectionReport cached = NeuralCleanse(config).detect(victim, probe);
  const DetectionReport cached_again = NeuralCleanse(config).detect(victim, probe);

  expect_reports_identical(fresh, cached);
  expect_reports_identical(fresh, cached_again);
}

// Round-sliced refinement must concatenate bit-identically to one
// uninterrupted run: with a margin no statistic can exceed, early exit
// retires nothing and the report must equal the monolithic path's exactly.
TEST(ClassScanScheduler, EarlyExitNeverRetiringMatchesMonolithicRun) {
  const DatasetSpec spec = tiny_spec(5);
  const Dataset probe = generate_dataset(spec, 40, 65);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 5, 66);

  UsbConfig config = tiny_usb_config();
  config.refine_steps = 6;
  const DetectionReport monolithic = UsbDetector(config).detect(victim, probe);

  config.early_exit.enabled = true;
  config.early_exit.round_steps = 2;  // three barriers, none may retire
  config.early_exit.margin = 1e18;
  const DetectionReport sliced = UsbDetector(config).detect(victim, probe);
  expect_reports_identical(monolithic, sliced);
}

// With an aggressive margin classes DO retire early; the report is then
// allowed to differ from the monolithic one (budget was reclaimed) but must
// still be bit-identical across thread counts.
TEST(ClassScanScheduler, EarlyExitBitIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec(6);
  const Dataset probe = generate_dataset(spec, 48, 67);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 6, 68);

  ThreadPool pool_1(1);
  ThreadPool pool_4(4);

  UsbConfig config = tiny_usb_config();
  config.refine_steps = 8;
  config.early_exit.enabled = true;
  config.early_exit.round_steps = 2;
  config.early_exit.margin = 0.25;

  config.scan_pool = &pool_1;
  const DetectionReport single = UsbDetector(config).detect(victim, probe);
  config.scan_pool = &pool_4;
  const DetectionReport parallel = UsbDetector(config).detect(victim, probe);
  expect_reports_identical(single, parallel);

  ReverseOptConfig nc_config;
  nc_config.steps = 8;
  nc_config.early_exit.enabled = true;
  nc_config.early_exit.round_steps = 2;
  nc_config.early_exit.margin = 0.25;
  nc_config.scan_pool = &pool_1;
  const DetectionReport nc_single = NeuralCleanse(nc_config).detect(victim, probe);
  nc_config.scan_pool = &pool_4;
  const DetectionReport nc_parallel = NeuralCleanse(nc_config).detect(victim, probe);
  expect_reports_identical(nc_single, nc_parallel);
}

// Async retirement (one rendezvous, then untethered per-class rounds
// against a fixed cutoff) with a margin no statistic can exceed must be the
// monolithic run: the rendezvous + continuation slices concatenate
// bit-identically to one uninterrupted refinement.
TEST(ClassScanScheduler, AsyncRetireNeverRetiringMatchesMonolithicRun) {
  const DatasetSpec spec = tiny_spec(5);
  const Dataset probe = generate_dataset(spec, 40, 71);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 5, 72);

  UsbConfig config = tiny_usb_config();
  config.refine_steps = 6;
  const DetectionReport monolithic = UsbDetector(config).detect(victim, probe);

  config.early_exit.enabled = true;
  config.early_exit.async = true;
  config.early_exit.round_steps = 2;
  config.early_exit.margin = 1e18;
  const DetectionReport async_sliced = UsbDetector(config).detect(victim, probe);
  expect_reports_identical(monolithic, async_sliced);
}

// With an aggressive margin async retirement DOES stop classes mid-budget;
// the determinism contract (EarlyExitOptions::async) is that every
// retirement decision is a pure function of the class's own trajectory and
// the rendezvous cutoff, so the report must be bit-identical for any
// thread count even though phase 2b has no barriers at all.
TEST(ClassScanScheduler, AsyncRetireBitIdenticalAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec(6);
  const Dataset probe = generate_dataset(spec, 48, 73);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 6, 74);

  ThreadPool pool_1(1);
  ThreadPool pool_4(4);

  UsbConfig config = tiny_usb_config();
  config.refine_steps = 8;
  config.early_exit.enabled = true;
  config.early_exit.async = true;
  config.early_exit.round_steps = 2;
  config.early_exit.margin = 0.25;

  config.scan_pool = &pool_1;
  const DetectionReport single = UsbDetector(config).detect(victim, probe);
  config.scan_pool = &pool_4;
  const DetectionReport parallel = UsbDetector(config).detect(victim, probe);
  expect_reports_identical(single, parallel);

  ReverseOptConfig nc_config;
  nc_config.steps = 8;
  nc_config.early_exit.enabled = true;
  nc_config.early_exit.async = true;
  nc_config.early_exit.round_steps = 2;
  nc_config.early_exit.margin = 0.25;
  nc_config.scan_pool = &pool_1;
  const DetectionReport nc_single = NeuralCleanse(nc_config).detect(victim, probe);
  nc_config.scan_pool = &pool_4;
  const DetectionReport nc_parallel = NeuralCleanse(nc_config).detect(victim, probe);
  expect_reports_identical(nc_single, nc_parallel);
}

// wall_seconds is the end-to-end measure detect() callers actually wait;
// it must be populated on every scan path.
TEST(ClassScanScheduler, ReportsCarryEndToEndWallSeconds) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 75);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 76);

  ReverseOptConfig config;
  config.steps = 4;
  const DetectionReport monolithic = NeuralCleanse(config).detect(victim, probe);
  EXPECT_GT(monolithic.wall_seconds, 0.0);
  EXPECT_GT(monolithic.total_seconds(), 0.0);

  config.early_exit.enabled = true;
  config.early_exit.round_steps = 2;
  const DetectionReport rounds = NeuralCleanse(config).detect(victim, probe);
  EXPECT_GT(rounds.wall_seconds, 0.0);

  config.early_exit.async = true;
  const DetectionReport async_rounds = NeuralCleanse(config).detect(victim, probe);
  EXPECT_GT(async_rounds.wall_seconds, 0.0);
}

TEST(ClassScanScheduler, DetectOnEmptyProbeIsWellDefined) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 0, 57);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 58);

  ReverseOptConfig config;
  config.steps = 3;
  NeuralCleanse nc(config);
  const DetectionReport report = nc.detect(victim, probe);
  ASSERT_EQ(report.per_class.size(), 4U);
  for (const TriggerEstimate& estimate : report.per_class) {
    EXPECT_EQ(estimate.fooling_rate, 0.0);  // no probe samples to fool
    EXPECT_GT(estimate.mask_l1, 0.0);       // trigger stays at its random init
  }
  // Near-identical random-init statistics: nothing is a low-side outlier.
  EXPECT_FALSE(report.verdict.backdoored);
}

// The blocking paths check ClassScanOptions::deadline at the same class and
// round boundaries as the cancel flag: a deadline already in the past
// throws ScanTimedOut out of every schedule, the partial scan unwinds, and
// the plan stays runnable once the deadline is cleared.
TEST(ClassScanScheduler, BlockingPathsThrowScanTimedOutPastDeadline) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 77);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 78);

  ReverseOptConfig config;
  config.steps = 4;
  NeuralCleanse nc(config);
  ScanPlan plan = nc.plan();
  plan.options.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_THROW((void)run_scan_plan(plan, victim, probe), ScanTimedOut);

  plan.options.early_exit.enabled = true;
  plan.options.early_exit.round_steps = 2;
  EXPECT_THROW((void)run_scan_plan(plan, victim, probe), ScanTimedOut);

  plan.options.early_exit.async = true;
  EXPECT_THROW((void)run_scan_plan(plan, victim, probe), ScanTimedOut);

  plan.options.deadline.reset();
  plan.options.early_exit = EarlyExitOptions{};
  const DetectionReport report = run_scan_plan(plan, victim, probe);
  ASSERT_EQ(report.per_class.size(), 4U);
  EXPECT_TRUE(report.complete());
}

// A deadline that is set but never hit is pure overhead (two steady_clock
// reads per boundary) with zero numeric effect: the report stays
// bit-identical to the no-deadline run.
TEST(ClassScanScheduler, GenerousDeadlineIsBitIdenticalToNoDeadline) {
  const DatasetSpec spec = tiny_spec(4);
  const Dataset probe = generate_dataset(spec, 32, 79);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 80);

  ReverseOptConfig config;
  config.steps = 4;
  NeuralCleanse nc(config);
  const DetectionReport plain = run_scan_plan(nc.plan(), victim, probe);

  ScanPlan deadlined = nc.plan();
  deadlined.options.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  const DetectionReport report = run_scan_plan(deadlined, victim, probe);
  expect_reports_identical(plain, report);
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.quarantined_classes().empty());
}

}  // namespace
}  // namespace usb
