// Tests for the shared (trigger, mask) optimization core: blend semantics,
// sigmoid reparameterization bounds, and gradient correctness of every
// regularizer against finite differences.
#include <cmath>

#include <gtest/gtest.h>

#include "defenses/masked_trigger.h"
#include "gradcheck.h"

namespace usb {
namespace {

using testing::fill_uniform;

TEST(MaskedTrigger, ValuesStayInUnitInterval) {
  Rng rng(1);
  const MaskedTrigger trigger(3, 8, rng, 0.1F);
  const Tensor mask = trigger.mask();
  const Tensor pattern = trigger.pattern();
  EXPECT_GE(mask.min(), 0.0F);
  EXPECT_LE(mask.max(), 1.0F);
  EXPECT_GE(pattern.min(), 0.0F);
  EXPECT_LE(pattern.max(), 1.0F);
  EXPECT_NEAR(trigger.mask_l1(), mask.abs_sum(), 1e-3);
}

TEST(MaskedTrigger, InitFromGivenMaskPattern) {
  Tensor mask0(Shape{4, 4});
  Tensor pattern0(Shape{1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) {
    mask0[i] = 0.25F;
    pattern0[i] = 0.75F;
  }
  const MaskedTrigger trigger(mask0, pattern0, 0.1F);
  const Tensor mask = trigger.mask();
  const Tensor pattern = trigger.pattern();
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(mask[i], 0.25F, 1e-4F);
    EXPECT_NEAR(pattern[i], 0.75F, 1e-4F);
  }
}

TEST(MaskedTrigger, InitRejectsShapeMismatch) {
  EXPECT_THROW(MaskedTrigger(Tensor(Shape{4, 4}), Tensor(Shape{1, 5, 5}), 0.1F),
               std::invalid_argument);
}

TEST(MaskedTrigger, ApplyBlendEndpoints) {
  // mask ~ 0 leaves x untouched; mask ~ 1 replaces with the pattern.
  Tensor mask0 = Tensor::full(Shape{4, 4}, 0.0001F);
  Tensor pattern0 = Tensor::full(Shape{1, 4, 4}, 0.9F);
  const MaskedTrigger transparent(mask0, pattern0, 0.1F);
  Rng rng(2);
  Tensor x(Shape{2, 1, 4, 4});
  fill_uniform(x, rng, 0.1F, 0.6F);
  const Tensor unchanged = transparent.apply(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(unchanged[i], x[i], 1e-3F);

  mask0.fill(0.9999F);
  const MaskedTrigger opaque(mask0, pattern0, 0.1F);
  const Tensor replaced = opaque.apply(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(replaced[i], 0.9F, 1e-3F);
}

/// Numerically validates a loss term's theta-gradients by comparing a
/// single small Adam-free step direction against finite differences of the
/// scalar loss. We reconstruct the loss as a function of (mask, pattern)
/// values and chain the sigmoid by probing fresh MaskedTriggers.
TEST(MaskedTrigger, OutputGradMatchesFiniteDifference) {
  Rng rng(3);
  Tensor mask0(Shape{5, 5});
  Tensor pattern0(Shape{2, 5, 5});
  for (std::int64_t i = 0; i < mask0.numel(); ++i) mask0[i] = rng.uniform_float(0.2F, 0.8F);
  for (std::int64_t i = 0; i < pattern0.numel(); ++i) pattern0[i] = rng.uniform_float(0.2F, 0.8F);

  Tensor x(Shape{3, 2, 5, 5});
  fill_uniform(x, rng, 0.0F, 1.0F);
  Tensor dy(x.shape());
  fill_uniform(dy, rng, -1.0F, 1.0F);

  // Analytic: theta-gradients accumulated by the class.
  MaskedTrigger trigger(mask0, pattern0, 0.1F);
  trigger.zero_grad();
  trigger.accumulate_from_output_grad(dy, x);

  // Numeric: probe loss(mask values) = <apply(x), dy> with pattern fixed.
  auto loss_of_mask = [&](const Tensor& probe_mask) {
    const MaskedTrigger probe(probe_mask, pattern0, 0.1F);
    const Tensor out = probe.apply(x);
    double total = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) total += static_cast<double>(out[i]) * dy[i];
    return total;
  };
  // The class stores theta-space gradients; translate the numeric
  // value-space gradient through the sigmoid derivative m(1-m) and compare
  // via a probe step: theta_grad = value_grad * m * (1 - m).
  const double h = 1e-3;
  for (std::int64_t i = 0; i < mask0.numel(); i += 7) {  // sample a few coordinates
    Tensor plus = mask0;
    Tensor minus = mask0;
    plus[i] = std::min(0.999F, plus[i] + static_cast<float>(h));
    minus[i] = std::max(0.001F, minus[i] - static_cast<float>(h));
    const double numeric_value_grad =
        (loss_of_mask(plus) - loss_of_mask(minus)) / (static_cast<double>(plus[i]) - minus[i]);
    // Recover the analytic value-space gradient by dividing out sigmoid'.
    MaskedTrigger probe(mask0, pattern0, 0.1F);
    probe.zero_grad();
    probe.accumulate_from_output_grad(dy, x);
    // Internal theta grads are not exposed; validate through a fresh
    // accumulation into value-space instead:
    Tensor value_grad(mask0.shape());
    {
      const Tensor m = probe.mask();
      const Tensor p = probe.pattern();
      const std::int64_t spatial = 25;
      for (std::int64_t n = 0; n < x.dim(0); ++n) {
        for (std::int64_t c = 0; c < x.dim(1); ++c) {
          const float* dyp = dy.raw() + (n * x.dim(1) + c) * spatial;
          const float* xp = x.raw() + (n * x.dim(1) + c) * spatial;
          const float* pat = p.raw() + c * spatial;
          for (std::int64_t s = 0; s < spatial; ++s) {
            value_grad[s] += dyp[s] * (pat[s] - xp[s]);
          }
        }
      }
    }
    EXPECT_NEAR(value_grad[i], numeric_value_grad,
                std::max(2e-2 * std::abs(numeric_value_grad), 5e-3))
        << "mask coordinate " << i;
  }
}

TEST(MaskedTrigger, L1GradShrinksMask) {
  Rng rng(4);
  MaskedTrigger trigger(1, 6, rng, 0.2F);
  const double before = trigger.mask_l1();
  for (int step = 0; step < 50; ++step) {
    trigger.zero_grad();
    trigger.add_mask_l1_grad(1.0F);
    trigger.step();
  }
  EXPECT_LT(trigger.mask_l1(), before * 0.5);
}

TEST(MaskedTrigger, TvGradSmoothsMask) {
  // A checkerboard mask has maximal TV; TV descent must reduce it.
  Tensor mask0(Shape{6, 6});
  for (std::int64_t y = 0; y < 6; ++y) {
    for (std::int64_t x = 0; x < 6; ++x) mask0[y * 6 + x] = ((y + x) % 2 == 0) ? 0.8F : 0.2F;
  }
  Tensor pattern0 = Tensor::full(Shape{1, 6, 6}, 0.5F);
  MaskedTrigger trigger(mask0, pattern0, 0.05F);

  auto tv_of = [](const Tensor& m) {
    double tv = 0.0;
    for (std::int64_t y = 0; y < 6; ++y) {
      for (std::int64_t x = 0; x < 6; ++x) {
        if (y + 1 < 6) tv += std::abs(m[(y + 1) * 6 + x] - m[y * 6 + x]);
        if (x + 1 < 6) tv += std::abs(m[y * 6 + x + 1] - m[y * 6 + x]);
      }
    }
    return tv;
  };
  const double before = tv_of(trigger.mask());
  for (int step = 0; step < 40; ++step) {
    trigger.zero_grad();
    trigger.add_mask_tv_grad(1.0F);
    trigger.step();
  }
  EXPECT_LT(tv_of(trigger.mask()), before * 0.7);
}

TEST(MaskedTrigger, ElasticGradShrinksMask) {
  // elastic = |m|_1 + |m|_2^2 must shrink a large mask under descent. (No
  // magnitude comparison against plain L1: Adam's per-coordinate
  // normalization makes descent speed scale-invariant.)
  Tensor mask_large = Tensor::full(Shape{4, 4}, 0.9F);
  Tensor pattern0 = Tensor::full(Shape{1, 4, 4}, 0.5F);
  MaskedTrigger elastic_trigger(mask_large, pattern0, 0.05F);
  const double before = elastic_trigger.mask_l1();
  for (int step = 0; step < 20; ++step) {
    elastic_trigger.zero_grad();
    elastic_trigger.add_mask_elastic_grad(1.0F);
    elastic_trigger.step();
  }
  EXPECT_LT(elastic_trigger.mask_l1(), before * 0.9);
}

}  // namespace
}  // namespace usb
