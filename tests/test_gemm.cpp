// Tests for the blocked GEMM core and its determinism contract:
//  - exact (bitwise) agreement with a naive ascending-order reference across
//    odd tail shapes, for all three transpose variants and accumulation;
//  - bit-identical matmul results for any pool size / nesting depth, with
//    tiles running inline, spilling to idle workers, or on the global pool;
//  - parallel_for_deterministic semantics: full coverage, nested calls from
//    saturated pools and 1-worker pools complete (no deadlock), exceptions
//    propagate and do not poison the pool;
//  - Im2colWorkspace grow-never-shrink behaviour and the blocked batched
//    conv2d_forward against a direct-convolution reference.
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/thread_pool.h"

namespace usb {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0F, float hi = 1.0F) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
  return t;
}

/// The reference the blocked core promises to reproduce EXACTLY for K <= KC:
/// one float accumulator per element, products added in ascending-p order.
Tensor ascending_order_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t p = 0; p < k; ++p) acc += a.at2(i, p) * b.at2(p, j);
      c.at2(i, j) = acc;
    }
  }
  return c;
}

Tensor transposed(const Tensor& t) {
  Tensor out(Shape{t.dim(1), t.dim(0)});
  for (std::int64_t i = 0; i < t.dim(0); ++i) {
    for (std::int64_t j = 0; j < t.dim(1); ++j) out.at2(j, i) = t.at2(i, j);
  }
  return out;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  ASSERT_EQ(0, std::memcmp(got.raw(), want.raw(),
                           static_cast<std::size_t>(got.numel()) * sizeof(float)))
      << what;
}

// Agreement with the ascending-order naive reference: bitwise by default;
// under USB_GEMM_FMA the micro-kernel fuses mul+add into one rounding, so
// the comparison relaxes to a tolerance (|error| is bounded by one rounding
// per fused step; 1e-3 is generous for the K <= 65 shapes below). The
// determinism tests further down stay bitwise in both builds — thread-count
// invariance is unconditional, only naive-reference agreement is not.
#if defined(USB_GEMM_FMA)
#define USB_ASSERT_GEMM_EQ(got, want) ASSERT_NEAR(got, want, 1e-3F)
#else
#define USB_ASSERT_GEMM_EQ(got, want) ASSERT_EQ(got, want)
#endif

// Every (M, N, K) below stays under one KC block, so the blocked result must
// be bit-identical to the ascending-order reference. The dims sweep the
// micro-kernel tails: 1 (degenerate), 3/7/17 (partial MR and NR panels), 64
// (full panels), 65 (full panels plus a 1-wide tail).
const std::int64_t kTailDims[] = {1, 3, 7, 17, 64, 65};

TEST(BlockedGemm, ExactlyMatchesAscendingNaive) {
  std::uint64_t seed = 1;
  for (const std::int64_t m : kTailDims) {
    for (const std::int64_t n : kTailDims) {
      for (const std::int64_t k : kTailDims) {
        const Tensor a = random_tensor(Shape{m, k}, seed++);
        const Tensor b = random_tensor(Shape{k, n}, seed++);
        const Tensor want = ascending_order_matmul(a, b);
        const Tensor got = matmul(a, b);
        ASSERT_EQ(got.shape(), want.shape());
        for (std::int64_t i = 0; i < got.numel(); ++i) {
          USB_ASSERT_GEMM_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(BlockedGemm, TransposeAExactlyMatchesAscendingNaive) {
  std::uint64_t seed = 1000;
  for (const std::int64_t m : kTailDims) {
    for (const std::int64_t n : kTailDims) {
      for (const std::int64_t k : kTailDims) {
        const Tensor a_stored = random_tensor(Shape{k, m}, seed++);  // holds A^T
        const Tensor b = random_tensor(Shape{k, n}, seed++);
        const Tensor want = ascending_order_matmul(transposed(a_stored), b);
        const Tensor got = matmul_transpose_a(a_stored, b);
        ASSERT_EQ(got.shape(), want.shape());
        for (std::int64_t i = 0; i < got.numel(); ++i) {
          USB_ASSERT_GEMM_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(BlockedGemm, TransposeBExactlyMatchesAscendingNaive) {
  std::uint64_t seed = 2000;
  for (const std::int64_t m : kTailDims) {
    for (const std::int64_t n : kTailDims) {
      for (const std::int64_t k : kTailDims) {
        const Tensor a = random_tensor(Shape{m, k}, seed++);
        const Tensor b_stored = random_tensor(Shape{n, k}, seed++);  // holds B^T
        const Tensor want = ascending_order_matmul(a, transposed(b_stored));
        const Tensor got = matmul_transpose_b(a, b_stored);
        ASSERT_EQ(got.shape(), want.shape());
        for (std::int64_t i = 0; i < got.numel(); ++i) {
          USB_ASSERT_GEMM_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(BlockedGemm, AccumulateAddsExactlyOntoC) {
  const Tensor a = random_tensor(Shape{17, 65}, 31);
  const Tensor b = random_tensor(Shape{65, 33}, 32);
  const Tensor c0 = random_tensor(Shape{17, 33}, 33);
  const Tensor product = ascending_order_matmul(a, b);
  Tensor c = c0;
  gemm(false, false, 17, 33, 65, a.raw(), 65, b.raw(), 33, c.raw(), 33, /*accumulate=*/true);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    USB_ASSERT_GEMM_EQ(c[i], c0[i] + product[i]) << "i=" << i;
  }
}

TEST(BlockedGemm, MultiKcBlockMatchesDoubleReference) {
  // K = 700 spans three KC blocks; block sums change the float rounding, so
  // compare against a double-precision reference with a tolerance instead.
  const std::int64_t m = 70;
  const std::int64_t n = 70;
  const std::int64_t k = 700;
  const Tensor a = random_tensor(Shape{m, k}, 41);
  const Tensor b = random_tensor(Shape{k, n}, 42);
  const Tensor got = matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at2(i, p)) * b.at2(p, j);
      }
      ASSERT_NEAR(got.at2(i, j), acc, 1e-3) << "i=" << i << " j=" << j;
    }
  }
}

// ------------------------------------------------------------ determinism --

TEST(BlockedGemm, BitIdenticalAcrossPoolSizesAndNesting) {
  // Big enough to tile-parallelize (6 tiles): inline on the main thread vs
  // inside a 1-worker pool (serial baseline) vs inside the workers of a
  // 4-worker pool that is under-subscribed (2 jobs on 4 workers), where the
  // two idle workers steal tiles — all must agree bit-for-bit.
  const Tensor a = random_tensor(Shape{256, 64}, 51);
  const Tensor b = random_tensor(Shape{64, 256}, 52);
  const Tensor direct = matmul(a, b);

  Tensor from_serial_pool;
  {
    ThreadPool pool(1);
    pool.parallel_for(1, [&](std::int64_t, std::int64_t, int) { from_serial_pool = matmul(a, b); });
  }
  std::vector<Tensor> from_undersubscribed_pool(2);
  {
    ThreadPool pool(4);
    // Two chunks dispatch to real workers (count >= 2), leaving two workers
    // idle to claim the nested GEMM tiles.
    pool.parallel_for(2, [&](std::int64_t begin, std::int64_t end, int) {
      for (std::int64_t i = begin; i < end; ++i) {
        from_undersubscribed_pool[static_cast<std::size_t>(i)] = matmul(a, b);
      }
    });
  }
  expect_bitwise_equal(from_serial_pool, direct, "1-worker pool vs direct");
  expect_bitwise_equal(from_undersubscribed_pool[0], direct, "under-subscribed pool job 0");
  expect_bitwise_equal(from_undersubscribed_pool[1], direct, "under-subscribed pool job 1");
}

TEST(BlockedGemm, SaturatedPoolRunsTilesInlineAndMatches) {
  // Every worker busy with its own GEMM: nested tile submissions find no
  // idle workers and drain inline; all four results must match the direct
  // computation bitwise.
  const Tensor a = random_tensor(Shape{192, 64}, 61);
  const Tensor b = random_tensor(Shape{64, 192}, 62);
  const Tensor direct = matmul(a, b);

  ThreadPool pool(4);
  std::vector<Tensor> results(4);
  pool.parallel_for(4, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) results[static_cast<std::size_t>(i)] = matmul(a, b);
  });
  for (const Tensor& r : results) expect_bitwise_equal(r, direct, "saturated-pool worker");
}

// ------------------------------------------- parallel_for_deterministic --

TEST(ParallelForDeterministic, ExecutesEveryTileExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for_deterministic(1000, [&](std::int64_t tile) {
    ++hits[static_cast<std::size_t>(tile)];  // disjoint writes
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForDeterministic, NestedInsideSingleWorkerPoolCompletes) {
  // The ThreadPool(1) in-worker inline path: a GEMM issued from inside the
  // pool's only worker must complete (tiles run inline; no free workers to
  // wait on, so anything else would deadlock).
  ThreadPool pool(1);
  const Tensor a = random_tensor(Shape{256, 64}, 71);
  const Tensor b = random_tensor(Shape{64, 256}, 72);
  Tensor nested;
  pool.parallel_for(1, [&](std::int64_t, std::int64_t, int) {
    // Explicit nested helper call plus a full GEMM on top of it.
    std::vector<int> hits(64, 0);
    pool.parallel_for_deterministic(64, [&](std::int64_t t) { ++hits[static_cast<std::size_t>(t)]; });
    for (const int h : hits) {
      if (h != 1) throw std::logic_error("nested tile dropped or duplicated");
    }
    nested = matmul(a, b);
  });
  expect_bitwise_equal(nested, matmul(a, b), "nested single-worker GEMM");
}

TEST(ParallelForDeterministic, NestedFromSaturatedWorkersCompletes) {
  ThreadPool pool(2);
  std::vector<int> hits(2 * 128, 0);
  pool.parallel_for(2, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t job = begin; job < end; ++job) {
      // Both workers are busy here, so each nested call drains inline.
      parallel_for_deterministic(128, [&, job](std::int64_t t) {
        ++hits[static_cast<std::size_t>(job * 128 + t)];
      });
    }
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForDeterministic, PropagatesExceptionsAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_deterministic(
                   64,
                   [](std::int64_t tile) {
                     if (tile == 13) throw std::runtime_error("tile 13");
                   }),
               std::runtime_error);
  // The pool is not poisoned: a follow-up job runs normally.
  std::vector<int> hits(32, 0);
  pool.parallel_for_deterministic(32, [&](std::int64_t tile) {
    ++hits[static_cast<std::size_t>(tile)];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

// ------------------------------------------------------------- workspace --

TEST(Im2colWorkspace, GrowsAndNeverShrinks) {
  Im2colWorkspace& ws = Im2colWorkspace::local();
  (void)ws.col(1000);
  const std::size_t grown = ws.col_capacity();
  EXPECT_GE(grown, 1000U);
  (void)ws.col(10);  // smaller request must not shrink the buffer
  EXPECT_EQ(ws.col_capacity(), grown);
  (void)ws.col(2 * grown);
  EXPECT_GE(ws.col_capacity(), 2 * grown);
}

// ------------------------------------------------- blocked batched conv --

TEST(ConvBatchedGemm, BlockSplitBatchMatchesDirectConvolution) {
  // Geometry chosen so the batched im2col workspace cap (16 MiB) splits the
  // batch into more than one sample block: col floats per sample =
  // 16*5*5*64*64 = 1.6M, so only 2 of the 4 samples fit per block.
  Conv2dSpec spec;
  spec.in_channels = 16;
  spec.out_channels = 4;
  spec.kernel = 5;
  spec.stride = 1;
  spec.padding = 2;
  const std::int64_t image = 64;
  const std::int64_t batch = 4;
  const Tensor x = random_tensor(Shape{batch, spec.in_channels, image, image}, 81);
  const Tensor w = random_tensor(spec.weight_shape(), 82, -0.3F, 0.3F);
  const Tensor bias = random_tensor(Shape{spec.out_channels}, 83, -0.1F, 0.1F);

  const Tensor y = conv2d_forward(x, w, bias, spec);

  const std::int64_t out = spec.out_size(image);
  ASSERT_EQ(y.shape(), (Shape{batch, spec.out_channels, out, out}));
  Rng probe_rng(84);
  // Direct convolution at 256 random output positions (the full reference
  // would dominate the suite's runtime).
  for (int trial = 0; trial < 256; ++trial) {
    const auto n = static_cast<std::int64_t>(probe_rng.uniform_int(0, batch - 1));
    const auto oc = static_cast<std::int64_t>(probe_rng.uniform_int(0, spec.out_channels - 1));
    const auto oh = static_cast<std::int64_t>(probe_rng.uniform_int(0, out - 1));
    const auto ow = static_cast<std::int64_t>(probe_rng.uniform_int(0, out - 1));
    double acc = bias[oc];
    for (std::int64_t ic = 0; ic < spec.in_channels; ++ic) {
      for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
        for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
          const std::int64_t ih = oh * spec.stride - spec.padding + kh;
          const std::int64_t iw = ow * spec.stride - spec.padding + kw;
          if (ih < 0 || ih >= image || iw < 0 || iw >= image) continue;
          acc += static_cast<double>(x.at4(n, ic, ih, iw)) *
                 w[((oc * spec.in_channels + ic) * spec.kernel + kh) * spec.kernel + kw];
        }
      }
    }
    EXPECT_NEAR(y.at4(n, oc, oh, ow), acc, 1e-3)
        << "n=" << n << " oc=" << oc << " oh=" << oh << " ow=" << ow;
  }
}

}  // namespace
}  // namespace usb
