// ModelStore + checkpoint fidelity: the guarantees behind by-reference
// serving.
//
// The load-bearing contracts under test:
//  - checkpoint round trips are BIT-identical for all four architecture
//    families: save -> load -> forward produces bitwise-equal logits, and a
//    detector run on the restored network is byte-identical to one on the
//    original (so a checkpoint ref is a faithful stand-in for the live
//    model);
//  - the store is key-addressed: every get_or_create naming the same ref
//    shares ONE resident instance, concurrent cold-key lookups collapse to
//    a single load, and hit/miss counters account for every lookup;
//  - ref-based service scans are byte-identical to Detector::detect() on
//    the live network, for concurrent scans sharing one resident model,
//    across service pool sizes;
//  - LRU-by-bytes eviction never drops a pinned entry, and the bytes
//    ledger (store counters AND the process MemoryBudget) returns to
//    baseline once entries drain;
//  - load failures carry the checkpoint path and reach every waiter.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "service/detection_service.h"
#include "service/model_store.h"
#include "utils/memory_budget.h"

namespace usb {
namespace {

DatasetSpec tiny_spec(std::int64_t num_classes = 4) {
  DatasetSpec spec;
  spec.name = "model-store-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

ReverseOptConfig tiny_nc_config(std::int64_t steps = 6) {
  ReverseOptConfig config;
  config.steps = steps;
  return config;
}

UsbConfig tiny_usb_config() {
  UsbConfig config;
  config.uap.max_passes = 1;
  config.uap.craft_size = 32;
  config.uap.batch_size = 16;
  config.refine_steps = 4;
  config.batch_size = 8;
  return config;
}

DetectionServiceConfig service_config(int scan_threads, int executors = 2) {
  DetectionServiceConfig config;
  config.scan_threads = scan_threads;
  config.max_concurrent_scans = executors;
  return config;
}

void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    EXPECT_EQ(x.target_class, y.target_class);
    EXPECT_EQ(x.mask_l1, y.mask_l1);
    EXPECT_EQ(x.final_loss, y.final_loss);
    EXPECT_EQ(x.fooling_rate, y.fooling_rate);
    EXPECT_TRUE(x.pattern.equals(y.pattern));
    EXPECT_TRUE(x.mask.equals(y.mask));
  }
  EXPECT_EQ(a.per_class_state, b.per_class_state);
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.norms, b.verdict.norms);
}

std::string checkpoint_path(const std::string& stem) {
  return testing::TempDir() + "model_store_" + stem + ".ckpt";
}

// Save -> load -> forward is BITWISE equal to the original network's
// forward, for every architecture family. This is the substrate of the
// by-ref scan guarantee: if the restored weights or the restored forward
// differed in even one ULP, ref scans could not be byte-identical.
TEST(Checkpoint, RoundTripForwardBitIdentityAllArchitectures) {
  const DatasetSpec spec = tiny_spec();
  const Dataset probe = generate_dataset(spec, 16, /*seed=*/71);
  for (const Architecture arch : {Architecture::kBasicCnn, Architecture::kMiniResNet,
                                  Architecture::kMiniVgg, Architecture::kMiniEffNet}) {
    Network original = make_network(arch, spec.channels, spec.image_size, spec.num_classes,
                                    /*seed=*/72);
    original.set_training(false);
    const std::string path = checkpoint_path(to_string(arch));
    save_checkpoint(original, path);
    Network restored = load_checkpoint(path);
    restored.set_training(false);

    const Tensor expected = original.forward(probe.images());
    const Tensor actual = restored.forward(probe.images());
    EXPECT_TRUE(expected.equals(actual)) << to_string(arch) << ": restored forward diverged";
  }
}

// A full detector run on the restored network matches the original byte for
// byte, for every architecture family.
TEST(Checkpoint, RoundTripDetectByteIdentityAllArchitectures) {
  const DatasetSpec spec = tiny_spec();
  const Dataset train_set = generate_dataset(spec, 96, /*seed=*/73);
  const Dataset probe = generate_dataset(spec, 32, /*seed=*/74);
  TrainConfig train_config;
  train_config.epochs = 1;
  train_config.seed = 75;
  for (const Architecture arch : {Architecture::kBasicCnn, Architecture::kMiniResNet,
                                  Architecture::kMiniVgg, Architecture::kMiniEffNet}) {
    Network original = make_network(arch, spec.channels, spec.image_size, spec.num_classes,
                                    /*seed=*/76);
    (void)train_network(original, train_set, train_config);
    const std::string path = checkpoint_path("detect_" + to_string(arch));
    save_checkpoint(original, path);
    Network restored = load_checkpoint(path);

    NeuralCleanse detector(tiny_nc_config(/*steps=*/3));
    const DetectionReport expected = detector.detect(original, probe);
    const DetectionReport actual = detector.detect(restored, probe);
    expect_reports_identical(expected, actual);
  }
}

TEST(Checkpoint, LoadErrorNamesThePath) {
  const std::string path = testing::TempDir() + "model_store_does_not_exist.ckpt";
  try {
    (void)load_checkpoint(path);
    FAIL() << "load_checkpoint should have thrown";
  } catch (const std::exception& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << "error lacks the path: " << error.what();
  }
}

TEST(ModelStore, KeyAddressedSharingAndCounters) {
  const DatasetSpec spec = tiny_spec();
  Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/77);
  const std::string path = checkpoint_path("sharing");
  save_checkpoint(model, path);

  ModelStore store;
  const ModelRef ref = ModelRef::from_checkpoint(path);
  const auto first = store.get_or_create(ref);
  const auto second = store.get_or_create(ref);
  EXPECT_EQ(first.get(), second.get()) << "same ref must share one resident instance";
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.hits(), 1);
  EXPECT_EQ(store.bytes_resident(), network_resident_bytes(first->network));
  EXPECT_GT(store.bytes_resident(), 0);
}

TEST(ModelStore, InvalidRefThrows) {
  ModelStore store;
  EXPECT_THROW((void)store.get_or_create(ModelRef{}), std::invalid_argument);
  ModelRef both = ModelRef::from_checkpoint("x.ckpt");
  both.zoo.emplace();
  EXPECT_FALSE(both.valid());
  EXPECT_THROW((void)store.get_or_create(both), std::invalid_argument);
}

TEST(ModelStore, ColdKeyRaceLoadsOnce) {
  const DatasetSpec spec = tiny_spec();
  Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/78);
  const std::string path = checkpoint_path("race");
  save_checkpoint(model, path);

  ModelStore store;
  const ModelRef ref = ModelRef::from_checkpoint(path);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ModelData>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] { results[static_cast<std::size_t>(i)] = store.get_or_create(ref); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(store.misses(), 1) << "a cold-key race must collapse to one load";
  EXPECT_EQ(store.hits(), kThreads - 1);
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result.get(), results[0].get());
  }
}

TEST(ModelStore, LoadFailureCarriesPathAndReleasesTheCell) {
  ModelStore store;
  const std::string path = testing::TempDir() + "model_store_missing.ckpt";
  const ModelRef ref = ModelRef::from_checkpoint(path);
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      (void)store.get_or_create(ref);
      FAIL() << "missing checkpoint should throw";
    } catch (const std::exception& error) {
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos) << error.what();
    }
  }
  EXPECT_EQ(store.size(), 0) << "a failed load must not leave a resident entry";
}

TEST(ModelStore, LruEvictionSkipsPinnedEntries) {
  const DatasetSpec spec = tiny_spec();
  const std::string path_a = checkpoint_path("evict_a");
  const std::string path_b = checkpoint_path("evict_b");
  const std::string path_c = checkpoint_path("evict_c");
  std::int64_t one_model_bytes = 0;
  for (const std::string& path : {path_a, path_b, path_c}) {
    Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                 spec.num_classes, /*seed=*/79);
    one_model_bytes = network_resident_bytes(model);
    save_checkpoint(model, path);
  }

  // Cap fits ~1.5 models: the second load pushes the store over cap.
  ModelStoreOptions options;
  options.max_bytes = one_model_bytes + one_model_bytes / 2;
  ModelStore store(options);

  // Pin A (the shared_ptr below IS the pin), then load B. A is the LRU
  // victim but pinned, and B's caller pin is live too — nothing evictable,
  // so the cap is transiently exceeded rather than evicting live memory.
  auto pinned_a = store.get_or_create(ModelRef::from_checkpoint(path_a));
  {
    const auto pinned_b = store.get_or_create(ModelRef::from_checkpoint(path_b));
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.evictions(), 0) << "pinned entries must never be evicted";
    EXPECT_GT(store.bytes_resident(), store.max_bytes());
  }
  // B's pin dropped; C's load now reclaims B (LRU unpinned) but still
  // skips the pinned A.
  const auto pinned_c = store.get_or_create(ModelRef::from_checkpoint(path_c));
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.misses(), 3);
  // A survived: the next lookup is a hit, not a reload.
  const auto again_a = store.get_or_create(ModelRef::from_checkpoint(path_a));
  EXPECT_EQ(again_a.get(), pinned_a.get());
  EXPECT_EQ(store.misses(), 3);
}

TEST(ModelStore, BytesLedgerReturnsToBaselineAfterDrain) {
  const std::int64_t baseline =
      MemoryBudget::process().bytes(MemoryBudget::Category::kResidentModels);
  const DatasetSpec spec = tiny_spec();
  Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/80);
  const std::string path = checkpoint_path("drain");
  save_checkpoint(model, path);

  {
    ModelStore store;
    auto pinned = store.get_or_create(ModelRef::from_checkpoint(path));
    EXPECT_GT(MemoryBudget::process().bytes(MemoryBudget::Category::kResidentModels), baseline);
    // clear() with a live pin: the consumer keeps the model alive, but the
    // STORE's accounting releases — the pin is not the store's bytes.
    store.clear();
    EXPECT_EQ(store.size(), 0);
    EXPECT_EQ(store.bytes_resident(), 0);
    EXPECT_EQ(MemoryBudget::process().bytes(MemoryBudget::Category::kResidentModels), baseline);
  }
  EXPECT_EQ(MemoryBudget::process().bytes(MemoryBudget::Category::kResidentModels), baseline);
}

TEST(ModelStore, PutFirstWriterWins) {
  const DatasetSpec spec = tiny_spec();
  ModelStore store;
  const ModelRef ref = ModelRef::from_checkpoint("served-without-a-file.ckpt");
  const auto first = store.put(ref, make_network(Architecture::kBasicCnn, spec.channels,
                                                 spec.image_size, spec.num_classes, /*seed=*/81));
  const auto second = store.put(ref, make_network(Architecture::kBasicCnn, spec.channels,
                                                  spec.image_size, spec.num_classes, /*seed=*/82));
  EXPECT_EQ(first.get(), second.get()) << "put is first-writer-wins";
  EXPECT_EQ(store.size(), 1);
  // And get_or_create serves the registered network without touching disk.
  const auto looked_up = store.get_or_create(ref);
  EXPECT_EQ(looked_up.get(), first.get());
}

// The acceptance-criteria pin: a ref-based scan is byte-identical to
// Detector::detect() on the live network, for CONCURRENT scans sharing one
// resident model, across service pool sizes.
TEST(ModelStore, ConcurrentRefScansMatchDetectByteForByte) {
  const DatasetSpec spec = tiny_spec(6);
  const ProbeKey key{spec, 48, /*seed=*/83};
  const Dataset probe = generate_dataset(spec, 48, /*seed=*/83);
  const Dataset train_set = generate_dataset(spec, 96, /*seed=*/84);
  Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                spec.num_classes, /*seed=*/85);
  TrainConfig train_config;
  train_config.epochs = 1;
  train_config.seed = 86;
  (void)train_network(victim, train_set, train_config);
  const std::string path = checkpoint_path("ref_scan");
  save_checkpoint(victim, path);

  UsbDetector reference(tiny_usb_config());
  const DetectionReport direct = reference.detect(victim, probe);

  for (const int threads : {1, 4}) {
    DetectionService service(service_config(threads, /*executors=*/4));
    std::vector<ScanHandle> handles;
    for (int i = 0; i < 4; ++i) {
      ScanRequest request;
      request.model_ref = ModelRef::from_checkpoint(path);
      request.detector = std::make_unique<UsbDetector>(tiny_usb_config());
      request.probe_key = key;
      handles.push_back(service.submit(std::move(request)));
    }
    for (const ScanHandle& handle : handles) {
      const ScanOutcome& outcome = handle.wait();
      ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
      expect_reports_identical(direct, outcome.report);
    }
    EXPECT_EQ(service.model_store().size(), 1)
        << "four scans of one ref must share one resident model";
    EXPECT_EQ(service.model_store().misses(), 1);
    EXPECT_EQ(service.model_store().hits(), 3);
  }
}

// Mixed plumbing in one service: the same victim scanned live (clone-on-
// submit), by checkpoint ref, and by a put() zoo-style registration all
// produce byte-identical reports.
TEST(ModelStore, RefAndLiveSubmissionsAgree) {
  const DatasetSpec spec = tiny_spec(6);
  const ProbeKey key{spec, 48, /*seed=*/87};
  Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                spec.num_classes, /*seed=*/88);
  const std::string path = checkpoint_path("mixed");
  save_checkpoint(victim, path);

  DetectionService service(service_config(2, /*executors=*/2));
  ScanRequest live;
  live.model = &victim;
  live.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  live.probe_key = key;
  ScanRequest by_ref;
  by_ref.model_ref = ModelRef::from_checkpoint(path);
  by_ref.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  by_ref.probe_key = key;
  const ScanHandle live_handle = service.submit(std::move(live));
  const ScanHandle ref_handle = service.submit(std::move(by_ref));

  const ScanOutcome& live_outcome = live_handle.wait();
  const ScanOutcome& ref_outcome = ref_handle.wait();
  ASSERT_EQ(live_outcome.status, ScanStatus::kDone) << live_outcome.error;
  ASSERT_EQ(ref_outcome.status, ScanStatus::kDone) << ref_outcome.error;
  expect_reports_identical(live_outcome.report, ref_outcome.report);
}

// A request must name exactly one model source.
TEST(ModelStore, SubmitRejectsZeroOrTwoModelSources) {
  const DatasetSpec spec = tiny_spec();
  Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                spec.num_classes, /*seed=*/89);
  DetectionService service(service_config(1));

  ScanRequest neither;
  neither.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  neither.probe_key = ProbeKey{spec, 16, 90};
  EXPECT_THROW((void)service.submit(std::move(neither)), std::invalid_argument);

  ScanRequest both;
  both.model = &victim;
  both.model_ref = ModelRef::from_checkpoint("x.ckpt");
  both.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  both.probe_key = ProbeKey{spec, 16, 90};
  EXPECT_THROW((void)service.submit(std::move(both)), std::invalid_argument);
}

// A ref naming a missing checkpoint resolves the scan kFailed (after the
// retry budget — load failures are transient-classed) with the path in the
// error, and leaves the service reusable.
TEST(ModelStore, MissingCheckpointRefFailsTheScanWithThePath) {
  const DatasetSpec spec = tiny_spec();
  const std::string path = testing::TempDir() + "model_store_no_such_model.ckpt";
  DetectionService service(service_config(1));

  ScanRequest request;
  request.model_ref = ModelRef::from_checkpoint(path);
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request.probe_key = ProbeKey{spec, 16, 91};
  const ScanHandle handle = service.submit(std::move(request));
  const ScanOutcome& outcome = handle.wait();
  EXPECT_EQ(outcome.status, ScanStatus::kFailed);
  EXPECT_NE(outcome.error.find(path), std::string::npos) << outcome.error;
}

}  // namespace
}  // namespace usb
