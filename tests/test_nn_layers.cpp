// Finite-difference validation of every layer's backward pass, plus
// mode-sensitive BatchNorm behaviour. These checks are what make the
// detection algorithms trustworthy: DeepFool, NC, TABOR and USB all consume
// dL/dinput through these layers.
#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "nn/squeeze_excite.h"

namespace usb {
namespace {

using testing::expect_gradient_close;
using testing::fill_uniform;

/// Checks dL/dinput of a module against finite differences where
/// L = <module(x), dy> with fixed random dy. Requires a deterministic,
/// mode-stable forward (BatchNorm is tested separately in eval mode).
void check_input_gradient(Module& module, const Shape& input_shape, std::uint64_t seed,
                          double rel_tol = 2e-2) {
  Rng rng(seed);
  Tensor x(input_shape);
  fill_uniform(x, rng, -1.0F, 1.0F);
  const Tensor y0 = module.forward(x);
  Tensor dy(y0.shape());
  fill_uniform(dy, rng, -1.0F, 1.0F);
  module.zero_grad();
  const Tensor dx = module.backward(dy);

  auto loss = [&](const Tensor& probe) {
    const Tensor y = module.forward(probe);
    double total = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
    return total;
  };
  expect_gradient_close(loss, x, dx, 1e-3, rel_tol);
}

/// Checks accumulated parameter gradients against finite differences.
void check_parameter_gradients(Module& module, const Shape& input_shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(input_shape);
  fill_uniform(x, rng, -1.0F, 1.0F);
  const Tensor y0 = module.forward(x);
  Tensor dy(y0.shape());
  fill_uniform(dy, rng, -1.0F, 1.0F);
  module.zero_grad();
  (void)module.backward(dy);

  for (Parameter* param : module.parameters()) {
    auto loss = [&](const Tensor& probe) {
      const Tensor saved = param->value;
      param->value = probe;
      const Tensor y = module.forward(x);
      param->value = saved;
      double total = 0.0;
      for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
      return total;
    };
    expect_gradient_close(loss, param->value, param->grad);
  }
}

TEST(Linear, InputGradient) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  check_input_gradient(layer, Shape{3, 6}, 100);
}

TEST(Linear, ParameterGradients) {
  Rng rng(2);
  Linear layer(5, 3, rng);
  check_parameter_gradients(layer, Shape{2, 5}, 101);
}

TEST(Linear, RejectsWrongWidth) {
  Rng rng(3);
  Linear layer(5, 3, rng);
  EXPECT_THROW((void)layer.forward(Tensor(Shape{2, 4})), std::invalid_argument);
}

TEST(Conv2dLayer, InputGradient) {
  Rng rng(4);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d layer(spec, rng);
  check_input_gradient(layer, Shape{2, 2, 6, 6}, 102);
}

TEST(Conv2dLayer, ParameterGradients) {
  Rng rng(5);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d layer(spec, rng);
  check_parameter_gradients(layer, Shape{1, 2, 5, 5}, 103);
}

TEST(Conv2dLayer, StridedInputAndParameterGradients) {
  Rng rng(30);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  Conv2d layer(spec, rng);
  check_input_gradient(layer, Shape{2, 2, 7, 7}, 130);
  check_parameter_gradients(layer, Shape{1, 2, 7, 7}, 131);
}

TEST(Conv2dLayer, UnpaddedInputGradient) {
  Rng rng(31);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = 3;  // padding 0: output shrinks, border pixels reach fewer taps
  Conv2d layer(spec, rng);
  check_input_gradient(layer, Shape{2, 2, 6, 6}, 132);
}

TEST(Conv2dLayer, GroupedInputAndParameterGradients) {
  Rng rng(32);
  Conv2dSpec spec;
  spec.in_channels = 4;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.padding = 1;
  spec.groups = 2;
  Conv2d layer(spec, rng);
  check_input_gradient(layer, Shape{2, 4, 5, 5}, 133);
  check_parameter_gradients(layer, Shape{1, 4, 5, 5}, 134);
}

TEST(Conv2dLayer, DepthwiseStridedGradients) {
  // groups == in_channels: the MBConv depthwise configuration.
  Rng rng(33);
  Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  spec.groups = 3;
  Conv2d layer(spec, rng);
  check_input_gradient(layer, Shape{2, 3, 7, 7}, 135);
  check_parameter_gradients(layer, Shape{1, 3, 7, 7}, 136);
}

TEST(Conv2dLayer, BiasFreeParameterGradients) {
  Rng rng(34);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 1;  // the 1x1 projection used inside residual shortcuts
  Conv2d layer(spec, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1U);
  check_parameter_gradients(layer, Shape{2, 2, 4, 4}, 137);
}

TEST(Activations, ReluGradient) {
  ReLU layer;
  check_input_gradient(layer, Shape{2, 3, 4, 4}, 104);
}

TEST(Activations, SigmoidGradient) {
  Sigmoid layer;
  check_input_gradient(layer, Shape{2, 8}, 105);
}

TEST(Activations, TanhGradient) {
  Tanh layer;
  check_input_gradient(layer, Shape{2, 8}, 106);
}

TEST(Activations, SiluGradient) {
  SiLU layer;
  check_input_gradient(layer, Shape{2, 3, 4, 4}, 107);
}

TEST(Pooling, MaxPoolInputGradient) {
  MaxPool2d layer(Pool2dSpec{2, 2});
  // Max pooling is piecewise linear; keep h small relative to value gaps.
  Rng rng(8);
  Tensor x(Shape{1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) + rng.uniform_float(0.0F, 0.3F);
  }
  const Tensor y0 = layer.forward(x);
  Tensor dy(y0.shape());
  fill_uniform(dy, rng);
  const Tensor dx = layer.backward(dy);
  auto loss = [&](const Tensor& probe) {
    const Tensor y = layer.forward(probe);
    double total = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
    return total;
  };
  expect_gradient_close(loss, x, dx, 1e-4);
}

TEST(Pooling, AvgPoolInputGradient) {
  AvgPool2d layer(Pool2dSpec{2, 2});
  check_input_gradient(layer, Shape{2, 2, 6, 6}, 108);
}

TEST(Pooling, GlobalAvgPoolInputGradient) {
  GlobalAvgPool layer;
  check_input_gradient(layer, Shape{2, 3, 4, 4}, 109);
}

TEST(Pooling, OverlappingMaxPoolInputGradient) {
  // kernel > stride: input elements feed several windows, so their gradients
  // accumulate across windows. Distinct values keep the max piecewise-stable.
  MaxPool2d layer(Pool2dSpec{3, 1});
  Rng rng(35);
  Tensor x(Shape{1, 2, 5, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>((i * 7) % 23) + rng.uniform_float(0.0F, 0.2F);
  }
  const Tensor y0 = layer.forward(x);
  Tensor dy(y0.shape());
  fill_uniform(dy, rng);
  const Tensor dx = layer.backward(dy);
  auto loss = [&](const Tensor& probe) {
    const Tensor y = layer.forward(probe);
    double total = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) total += static_cast<double>(y[i]) * dy[i];
    return total;
  };
  expect_gradient_close(loss, x, dx, 1e-4);
}

TEST(Pooling, StridedAvgPoolInputGradient) {
  AvgPool2d layer(Pool2dSpec{3, 2});
  check_input_gradient(layer, Shape{2, 2, 7, 7}, 138);
}

TEST(Pooling, FlattenRoundTrip) {
  Flatten layer;
  Tensor x(Shape{2, 3, 4, 4});
  Rng rng(10);
  fill_uniform(x, rng);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor dx = layer.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_TRUE(dx.equals(x.reshaped(Shape{2, 48}).reshaped(x.shape())));
}

TEST(BatchNorm, EvalModeGradient) {
  BatchNorm2d layer(3);
  // Give the running stats non-trivial values through one training forward.
  Rng rng(11);
  Tensor warmup(Shape{8, 3, 4, 4});
  fill_uniform(warmup, rng, -2.0F, 2.0F);
  layer.set_training(true);
  (void)layer.forward(warmup);
  layer.set_training(false);
  check_input_gradient(layer, Shape{2, 3, 4, 4}, 110);
}

TEST(BatchNorm, TrainModeGradient) {
  BatchNorm2d layer(2);
  layer.set_training(true);
  check_input_gradient(layer, Shape{4, 2, 3, 3}, 111, /*rel_tol=*/5e-2);
}

TEST(BatchNorm, TrainModeParameterGradients) {
  // Gamma/beta gradients flow through the batch statistics in train mode;
  // finite differences must see the renormalization, not just the affine.
  BatchNorm2d layer(3);
  layer.set_training(true);
  check_parameter_gradients(layer, Shape{4, 3, 3, 3}, 139);
}

TEST(BatchNorm, NormalizesBatchInTrainingMode) {
  BatchNorm2d layer(1);
  layer.set_training(true);
  Rng rng(12);
  Tensor x(Shape{16, 1, 4, 4});
  fill_uniform(x, rng, 3.0F, 5.0F);  // mean ~4, nonzero
  const Tensor y = layer.forward(x);
  EXPECT_NEAR(y.mean(), 0.0F, 1e-4F);
  EXPECT_NEAR(y.sq_sum() / static_cast<float>(y.numel()), 1.0F, 1e-2F);
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  BatchNorm2d layer(1, 1e-5F, /*momentum=*/1.0F);  // momentum 1: adopt batch stats
  layer.set_training(true);
  Tensor x(Shape{8, 1, 2, 2});
  Rng rng(13);
  fill_uniform(x, rng, 1.0F, 3.0F);
  (void)layer.forward(x);
  EXPECT_NEAR(layer.running_mean()[0], x.mean(), 1e-4F);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d layer(1, 1e-5F, 1.0F);
  layer.set_training(true);
  Tensor x(Shape{8, 1, 2, 2});
  Rng rng(14);
  fill_uniform(x, rng, 1.0F, 3.0F);
  (void)layer.forward(x);

  layer.set_training(false);
  // A constant input equal to the running mean must map to beta (= 0).
  Tensor probe = Tensor::full(Shape{1, 1, 2, 2}, layer.running_mean()[0]);
  const Tensor y = layer.forward(probe);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0F, 1e-3F);
}

TEST(Residual, InputGradientEvalMode) {
  Rng rng(15);
  ResidualBlock block(2, 2, 1, rng);
  // Warm up running stats, then check gradients in eval mode (the detection
  // path exercises exactly this configuration).
  Tensor warmup(Shape{8, 2, 6, 6});
  fill_uniform(warmup, rng);
  block.set_training(true);
  (void)block.forward(warmup);
  block.set_training(false);
  check_input_gradient(block, Shape{2, 2, 6, 6}, 112);
}

TEST(Residual, ProjectionShapeChange) {
  Rng rng(16);
  ResidualBlock block(2, 4, 2, rng);
  block.set_training(false);
  Tensor x(Shape{1, 2, 8, 8});
  fill_uniform(x, rng);
  const Tensor y = block.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 4, 4}));
}

TEST(SqueezeExciteLayer, InputGradient) {
  Rng rng(17);
  SqueezeExcite layer(4, 2, rng);
  layer.set_training(false);
  check_input_gradient(layer, Shape{2, 4, 3, 3}, 113);
}

TEST(MBConv, InputGradientEvalMode) {
  Rng rng(18);
  MBConvBlock block(4, 4, 1, 2, rng);
  Tensor warmup(Shape{8, 4, 6, 6});
  fill_uniform(warmup, rng);
  block.set_training(true);
  (void)block.forward(warmup);
  block.set_training(false);
  check_input_gradient(block, Shape{1, 4, 6, 6}, 114, /*rel_tol=*/3e-2);
}

TEST(SequentialContainer, ChainsAndCollects) {
  Rng rng(19);
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Linear>(6, 5, rng));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Linear>(5, 3, rng));
  EXPECT_EQ(seq->size(), 3);
  EXPECT_EQ(seq->parameters().size(), 4U);
  check_input_gradient(*seq, Shape{2, 6}, 115);
}

TEST(SequentialContainer, RangedForwardBackwardMatchesFull) {
  Rng rng(20);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 4, rng));
  seq.add(std::make_unique<Tanh>());
  seq.add(std::make_unique<Linear>(4, 2, rng));

  Tensor x(Shape{3, 4});
  fill_uniform(x, rng);
  const Tensor full = seq.forward(x);
  const Tensor features = seq.forward_range(x, 0, 2);
  const Tensor head = seq.forward_range(features, 2, 3);
  EXPECT_TRUE(head.equals(full));

  Tensor dy(full.shape());
  fill_uniform(dy, rng);
  seq.zero_grad();
  const Tensor dx_full = seq.backward(dy);
  seq.zero_grad();
  const Tensor dfeat = seq.backward_range(dy, 2, 3);
  const Tensor dx_split = seq.backward_range(dfeat, 0, 2);
  for (std::int64_t i = 0; i < dx_full.numel(); ++i) {
    EXPECT_NEAR(dx_full[i], dx_split[i], 1e-6F);
  }
}

TEST(SequentialContainer, RangeValidation) {
  Sequential seq;
  EXPECT_THROW((void)seq.forward_range(Tensor(Shape{1}), 0, 1), std::out_of_range);
}

}  // namespace
}  // namespace usb
