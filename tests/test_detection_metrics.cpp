// Tests for the MAD outlier rule and the paper's detection bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/detection.h"

namespace usb {
namespace {

TEST(Median, OddEvenAndEmpty) {
  EXPECT_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_EQ(median(std::vector<double>{}), 0.0);
}

TEST(MadAnomaly, FlagsObviousLowOutlier) {
  const std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 5, 52};
  const std::vector<double> anomaly = mad_anomaly_indices(norms);
  EXPECT_GT(anomaly[8], 2.0);   // class 8 is the outlier
  EXPECT_LT(anomaly[0], 2.0);
}

TEST(MadAnomaly, UniformValuesProduceNoOutliers) {
  const std::vector<double> norms(10, 42.0);
  for (const double a : mad_anomaly_indices(norms)) EXPECT_EQ(a, 0.0);
}

TEST(DecideBackdoor, DetectsLowSideOnly) {
  // A HIGH outlier must not be flagged (backdoors shrink the norm).
  const std::vector<double> high{50, 52, 48, 51, 49, 53, 47, 50, 200, 52};
  EXPECT_FALSE(decide_backdoor(high).backdoored);

  const std::vector<double> low{50, 52, 48, 51, 49, 53, 47, 50, 4, 52};
  const DetectionVerdict verdict = decide_backdoor(low);
  EXPECT_TRUE(verdict.backdoored);
  ASSERT_EQ(verdict.flagged_classes.size(), 1U);
  EXPECT_EQ(verdict.flagged_classes[0], 8);
}

TEST(DecideBackdoor, CleanProfilePasses) {
  const std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 46, 52};
  EXPECT_FALSE(decide_backdoor(norms).backdoored);
}

TEST(DecideBackdoor, ThresholdControlsSensitivity) {
  // The low outlier 20 scores anomaly ~10.1 under MAD.
  const std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 20, 52};
  EXPECT_TRUE(decide_backdoor(norms, 1.0).backdoored);
  EXPECT_FALSE(decide_backdoor(norms, 12.0).backdoored);
}

TEST(DecideBackdoor, RatioGuardRejectsMildLowOutliers) {
  // Anomalous by MAD but not decisively below the median: a class feature,
  // not a backdoor shortcut (the paper's NC false-positive mode).
  const std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 35, 52};
  EXPECT_FALSE(decide_backdoor(norms, 2.0, /*ratio_max=*/0.45).backdoored);
  EXPECT_TRUE(decide_backdoor(norms, 2.0, /*ratio_max=*/0.8).backdoored);
}

TEST(DecideBackdoor, DecisiveShortcutOverridesNoisyMad) {
  // Wide spread kills the MAD signal, but a 10x-below-median class is a
  // shortcut on its own (the NC-on-MiniResNet profile observed in Fig. 6
  // style runs).
  const std::vector<double> norms{98.7, 9.1, 92.4, 59.6, 63.9, 60.2, 135.0, 157.7, 145.7, 146.4};
  const DetectionVerdict verdict = decide_backdoor(norms);
  EXPECT_TRUE(verdict.backdoored);
  ASSERT_EQ(verdict.flagged_classes.size(), 1U);
  EXPECT_EQ(verdict.flagged_classes[0], 1);
}

TEST(MadAnomaly, SingleValueIsNeverAnomalous) {
  // K=1 "class": the value IS the median, MAD is 0, and the zero-MAD guard
  // must score it 0 instead of dividing by zero.
  const std::vector<double> anomaly = mad_anomaly_indices(std::vector<double>{7.5});
  ASSERT_EQ(anomaly.size(), 1U);
  EXPECT_EQ(anomaly[0], 0.0);
}

TEST(MadAnomaly, EmptyInput) {
  EXPECT_TRUE(mad_anomaly_indices(std::vector<double>{}).empty());
}

TEST(DecideBackdoor, SingleClassModelIsNeverFlagged) {
  // K=1: the only statistic equals its own median; there is no population to
  // be an outlier of. The verdict must be clean, with sane bookkeeping.
  const DetectionVerdict verdict = decide_backdoor(std::vector<double>{3.0});
  EXPECT_FALSE(verdict.backdoored);
  EXPECT_TRUE(verdict.flagged_classes.empty());
  ASSERT_EQ(verdict.norms.size(), 1U);
  ASSERT_EQ(verdict.anomaly.size(), 1U);
  EXPECT_EQ(verdict.anomaly[0], 0.0);
}

TEST(DecideBackdoor, AllEqualMaskNormsAreClean) {
  // Every class admits the same-size trigger: no shortcut, no outlier — even
  // at an aggressive threshold. Also exercises the MAD=0 guard end to end.
  const std::vector<double> norms(10, 13.0);
  const DetectionVerdict verdict = decide_backdoor(norms, /*threshold=*/0.1);
  EXPECT_FALSE(verdict.backdoored);
  for (const double a : verdict.anomaly) EXPECT_EQ(a, 0.0);
}

TEST(DecideBackdoor, EmptyNormsProduceCleanVerdict) {
  // An empty scan (no probe classes) must degrade to "clean", not crash.
  const DetectionVerdict verdict = decide_backdoor(std::vector<double>{});
  EXPECT_FALSE(verdict.backdoored);
  EXPECT_TRUE(verdict.flagged_classes.empty());
  EXPECT_TRUE(verdict.norms.empty());
  EXPECT_TRUE(verdict.anomaly.empty());
}

TEST(DecideBackdoor, AllZeroNormsAreClean) {
  // Degenerate all-zero statistics (e.g. an empty probe set collapsed every
  // mask): median 0 means nothing can be "well below" it.
  const DetectionVerdict verdict = decide_backdoor(std::vector<double>(5, 0.0));
  EXPECT_FALSE(verdict.backdoored);
}

TEST(CaseCounts, RecordOnEmptyVerdictKeepsL1Undefined) {
  // A verdict with no per-class norms (empty scan) must not contribute a
  // bogus 0 to the population L1 statistic.
  CaseCounts counts;
  DetectionVerdict verdict;  // empty norms, clean
  counts.record(verdict, -1);
  EXPECT_EQ(counts.detected_clean, 1);
  EXPECT_EQ(counts.l1_count, 0);
  EXPECT_EQ(counts.mean_l1(), 0.0);
}

TEST(ClassifyTarget, AllOutcomes) {
  DetectionVerdict clean;
  clean.backdoored = false;
  EXPECT_EQ(classify_target(clean, 3), TargetOutcome::kNotDetected);

  DetectionVerdict exact;
  exact.backdoored = true;
  exact.flagged_classes = {3};
  EXPECT_EQ(classify_target(exact, 3), TargetOutcome::kCorrect);

  DetectionVerdict superset;
  superset.backdoored = true;
  superset.flagged_classes = {1, 3};
  EXPECT_EQ(classify_target(superset, 3), TargetOutcome::kCorrectSet);

  DetectionVerdict wrong;
  wrong.backdoored = true;
  wrong.flagged_classes = {1};
  EXPECT_EQ(classify_target(wrong, 3), TargetOutcome::kWrong);
}

TEST(CaseCounts, RecordsBackdooredPopulation) {
  CaseCounts counts;
  counts.method = "USB";

  DetectionVerdict hit;
  hit.backdoored = true;
  hit.flagged_classes = {0};
  hit.norms = std::vector<double>{4.0, 50.0, 52.0};
  counts.record(hit, 0);

  DetectionVerdict miss;
  miss.backdoored = false;
  miss.norms = std::vector<double>{40.0, 50.0, 52.0};
  counts.record(miss, 0);

  EXPECT_EQ(counts.detected_backdoored, 1);
  EXPECT_EQ(counts.detected_clean, 1);
  EXPECT_EQ(counts.correct, 1);
  EXPECT_EQ(counts.correct_set, 0);
  EXPECT_EQ(counts.wrong, 0);
  // L1 statistic is the true-target norm: (4.0 + 40.0) / 2.
  EXPECT_NEAR(counts.mean_l1(), 22.0, 1e-9);
}

TEST(CaseCounts, CleanPopulationUsesMeanNorm) {
  CaseCounts counts;
  DetectionVerdict verdict;
  verdict.backdoored = false;
  verdict.norms = std::vector<double>{10.0, 20.0, 30.0};
  counts.record(verdict, -1);
  EXPECT_NEAR(counts.mean_l1(), 20.0, 1e-9);
  EXPECT_EQ(counts.detected_clean, 1);
}

TEST(DecideBackdoorPeeled, AllFiniteDelegatesBitIdentically) {
  const std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 4, 52};
  const DetectionVerdict plain = decide_backdoor(norms);
  const DetectionVerdict peeled = decide_backdoor_peeled(norms);
  EXPECT_EQ(plain.backdoored, peeled.backdoored);
  EXPECT_EQ(plain.flagged_classes, peeled.flagged_classes);
  EXPECT_EQ(plain.norms, peeled.norms);
  EXPECT_EQ(plain.anomaly, peeled.anomaly);
}

TEST(DecideBackdoorPeeled, NanEntriesArePeeledNotFlagged) {
  // Class 3 diverged (quarantined): its NaN must not poison the median/MAD
  // of the rest, and flagged indices must stay ORIGINAL class indices.
  const std::vector<double> norms{50, 52, std::numeric_limits<double>::quiet_NaN(), 51,
                                  49, 53, 47, 50, 4, 52};
  const DetectionVerdict verdict = decide_backdoor_peeled(norms);
  EXPECT_TRUE(verdict.backdoored);
  ASSERT_EQ(verdict.flagged_classes.size(), 1U);
  EXPECT_EQ(verdict.flagged_classes[0], 8);
  ASSERT_EQ(verdict.norms.size(), 10U);
  EXPECT_TRUE(std::isnan(verdict.norms[2]));
  ASSERT_EQ(verdict.anomaly.size(), 10U);
  EXPECT_TRUE(std::isnan(verdict.anomaly[2]));  // peeled: no anomaly score
  EXPECT_FALSE(std::isnan(verdict.anomaly[8]));
}

TEST(DecideBackdoorPeeled, PeeledOutlierDoesNotShiftVerdict) {
  // Without peeling, a +inf entry would destroy the median; with it, the
  // clean profile stays clean.
  std::vector<double> norms{50, 52, 48, 51, 49, 53, 47, 50, 46, 52};
  norms[4] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(decide_backdoor_peeled(norms).backdoored);
}

TEST(DecideBackdoorPeeled, AllNonFiniteIsCleanAndWellDefined) {
  const std::vector<double> norms(5, std::numeric_limits<double>::quiet_NaN());
  const DetectionVerdict verdict = decide_backdoor_peeled(norms);
  EXPECT_FALSE(verdict.backdoored);
  EXPECT_TRUE(verdict.flagged_classes.empty());
  ASSERT_EQ(verdict.anomaly.size(), 5U);
  for (const double a : verdict.anomaly) EXPECT_TRUE(std::isnan(a));
}

}  // namespace
}  // namespace usb
