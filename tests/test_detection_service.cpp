// DetectionService: the session/request API over the scan engine.
//
// The load-bearing guarantees under test:
//  - submit() with default options is byte-for-byte Detector::detect() on
//    the same (model, probe, config) — for any service pool size, with the
//    probe resolved through the ProbeStore or passed explicitly, and with
//    async retirement enabled through request options;
//  - ScanHandle::cancel() mid-scan resolves the handle to kCancelled and
//    leaves the service fully reusable (a resubmitted identical request
//    completes and is bit-identical to detect());
//  - the ProbeStore is content-addressed: every request naming the same
//    (spec, size, seed) shares one materialization;
//  - overlapping scans on one service pool do not perturb each other's
//    reports (the ThreadSanitizer CI job additionally races these paths).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>

#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/models.h"
#include "service/detection_service.h"

namespace usb {
namespace {

DatasetSpec tiny_spec(std::int64_t num_classes = 6) {
  DatasetSpec spec;
  spec.name = "detection-service-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = num_classes;
  return spec;
}

UsbConfig tiny_usb_config() {
  UsbConfig config;
  config.uap.max_passes = 1;
  config.uap.craft_size = 32;
  config.uap.batch_size = 16;
  config.refine_steps = 4;
  config.batch_size = 8;
  return config;
}

ReverseOptConfig tiny_nc_config(std::int64_t steps = 6) {
  ReverseOptConfig config;
  config.steps = steps;
  return config;
}

void expect_reports_identical(const DetectionReport& a, const DetectionReport& b) {
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    EXPECT_EQ(x.target_class, y.target_class);
    EXPECT_EQ(x.mask_l1, y.mask_l1);
    EXPECT_EQ(x.final_loss, y.final_loss);
    EXPECT_EQ(x.fooling_rate, y.fooling_rate);
    EXPECT_TRUE(x.pattern.equals(y.pattern));
    EXPECT_TRUE(x.mask.equals(y.mask));
  }
  EXPECT_EQ(a.verdict.backdoored, b.verdict.backdoored);
  EXPECT_EQ(a.verdict.flagged_classes, b.verdict.flagged_classes);
  EXPECT_EQ(a.verdict.norms, b.verdict.norms);
  EXPECT_EQ(a.verdict.anomaly, b.verdict.anomaly);
  EXPECT_EQ(a.per_class_state, b.per_class_state);
}

DetectionServiceConfig service_config(int scan_threads, int executors = 2) {
  DetectionServiceConfig config;
  config.scan_threads = scan_threads;
  config.max_concurrent_scans = executors;
  return config;
}

}  // namespace

// The acceptance-criteria pin: default-options submit() == detect() byte
// for byte, across service pool sizes, for both probe plumbing variants.
TEST(DetectionService, DefaultSubmitMatchesDetectByteForByte) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 81};
  const Dataset probe = generate_dataset(spec, 48, 81);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 82);

  UsbDetector reference(tiny_usb_config());
  const DetectionReport direct = reference.detect(victim, probe);

  for (const int threads : {1, 4}) {
    DetectionService service(service_config(threads));

    ScanRequest by_key;
    by_key.model = &victim;
    by_key.detector = std::make_unique<UsbDetector>(tiny_usb_config());
    by_key.probe_key = key;
    const ScanHandle key_handle = service.submit(std::move(by_key));

    ScanRequest by_value;
    by_value.model = &victim;
    by_value.detector = std::make_unique<UsbDetector>(tiny_usb_config());
    by_value.probe = &probe;
    const ScanHandle value_handle = service.submit(std::move(by_value));

    const ScanOutcome& from_key = key_handle.wait();
    const ScanOutcome& from_value = value_handle.wait();
    ASSERT_EQ(from_key.status, ScanStatus::kDone) << from_key.error;
    ASSERT_EQ(from_value.status, ScanStatus::kDone) << from_value.error;
    expect_reports_identical(direct, from_key.report);
    expect_reports_identical(direct, from_value.report);
    EXPECT_GT(from_key.report.wall_seconds, 0.0);
    EXPECT_EQ(key_handle.poll(), ScanStatus::kDone);
  }
}

// Same pin with async retirement switched on through request options (the
// intended switch for it): submit must match a detect() whose config
// carries the identical early-exit settings, at 1 and 4 scan threads.
TEST(DetectionService, AsyncRetirementSubmitMatchesDetectAcrossThreadCounts) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 83};
  const Dataset probe = generate_dataset(spec, 48, 83);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 84);

  EarlyExitOptions early;
  early.enabled = true;
  early.async = true;
  early.round_steps = 2;
  early.margin = 0.25;

  UsbConfig reference_config = tiny_usb_config();
  reference_config.refine_steps = 8;
  reference_config.early_exit = early;
  const DetectionReport direct = UsbDetector(reference_config).detect(victim, probe);

  for (const int threads : {1, 4}) {
    DetectionService service(service_config(threads));
    ScanRequest request;
    request.model = &victim;
    UsbConfig config = tiny_usb_config();
    config.refine_steps = 8;  // early-exit settings come from the request
    request.detector = std::make_unique<UsbDetector>(config);
    request.probe_key = key;
    request.options.early_exit = early;
    const ScanHandle handle = service.submit(std::move(request));
    const ScanOutcome& outcome = handle.wait();
    ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
    expect_reports_identical(direct, outcome.report);
  }
}

// cancel() mid-scan: the progress callback blocks the scan after its first
// finalized class until the handle exists, cancels through it, and the scan
// must resolve to kCancelled at the next class boundary. The service then
// runs a resubmitted identical request to completion, bit-identical to
// detect() — cancellation leaves no residue.
TEST(DetectionService, CancelMidScanLeavesServiceReusable) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 85};
  const Dataset probe = generate_dataset(spec, 48, 85);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 86);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));

  std::optional<ScanHandle> handle;
  std::promise<void> handle_ready;
  std::shared_future<void> ready(handle_ready.get_future());
  std::atomic<bool> cancelled{false};

  ScanRequest request;
  request.model = &victim;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request.probe_key = key;
  request.options.progress = [&](std::int64_t /*target_class*/, ClassScanEvent event,
                                 double /*mask_l1*/) {
    if (event != ClassScanEvent::kFinalized) return;
    ready.wait();  // the main thread owns the handle before we cancel
    if (!cancelled.exchange(true)) (void)handle->cancel();
  };
  handle = service.submit(std::move(request));
  handle_ready.set_value();

  const ScanOutcome& outcome = handle->wait();
  EXPECT_EQ(outcome.status, ScanStatus::kCancelled);
  EXPECT_TRUE(cancelled.load());
  EXPECT_EQ(service.scans_cancelled(), 1);
  EXPECT_FALSE(handle->cancel());  // already terminal

  // Reusability: the identical request (default options) completes and is
  // bit-identical to the blocking path.
  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);
  ScanRequest again;
  again.model = &victim;
  again.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  again.probe_key = key;
  const ScanHandle rerun_handle = service.submit(std::move(again));
  const ScanOutcome& rerun = rerun_handle.wait();
  ASSERT_EQ(rerun.status, ScanStatus::kDone) << rerun.error;
  expect_reports_identical(direct, rerun.report);
  EXPECT_EQ(service.scans_completed(), 1);
}

// Cancelling a scan that is still queued (single executor busy elsewhere)
// resolves it without running a single class job.
TEST(DetectionService, CancelWhileQueuedNeverRuns) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 87};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 88);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));

  // Occupy the only executor long enough to cancel the second request while
  // it is still queued (steps are generous; cancel happens immediately).
  ScanRequest busy;
  busy.model = &victim;
  busy.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/30));
  busy.probe_key = key;
  const ScanHandle busy_handle = service.submit(std::move(busy));

  std::atomic<std::int64_t> victim_classes{0};
  ScanRequest queued;
  queued.model = &victim;
  queued.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  queued.probe_key = key;
  queued.options.progress = [&victim_classes](std::int64_t, ClassScanEvent, double) {
    victim_classes.fetch_add(1);
  };
  const ScanHandle queued_handle = service.submit(std::move(queued));
  (void)queued_handle.cancel();

  EXPECT_EQ(queued_handle.wait().status, ScanStatus::kCancelled);
  EXPECT_EQ(victim_classes.load(), 0);
  EXPECT_EQ(busy_handle.wait().status, ScanStatus::kDone);
}

// Content addressing: requests naming the same (spec, size, seed) share one
// materialization; a different seed is a different address.
TEST(DetectionService, ProbeStoreSharesAcrossRequests) {
  const DatasetSpec spec = tiny_spec(4);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 90);

  DetectionService service(service_config(/*scan_threads=*/1));
  const ProbeKey key_a{spec, 32, 91};
  const ProbeKey key_b{spec, 32, 92};
  EXPECT_NE(key_a.address(), key_b.address());

  std::vector<ScanHandle> handles;
  for (const ProbeKey& key : {key_a, key_a, key_b}) {
    ScanRequest request;
    request.model = &victim;
    request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/3));
    request.probe_key = key;
    handles.push_back(service.submit(std::move(request)));
  }
  for (const ScanHandle& handle : handles) {
    EXPECT_EQ(handle.wait().status, ScanStatus::kDone);
  }
  EXPECT_EQ(service.probe_store().size(), 2);
  EXPECT_EQ(service.probe_store().misses(), 2);
  EXPECT_EQ(service.probe_store().hits(), 1);

  // Identical resubmissions are bit-identical (determinism is per-request
  // state, never shared scan state).
  expect_reports_identical(handles[0].wait().report, handles[1].wait().report);
}

// Two scans overlapping on ONE service pool must produce exactly the
// reports their isolated runs produce.
TEST(DetectionService, OverlappingScansDoNotPerturbEachOther) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 93};
  const Dataset probe = generate_dataset(spec, 32, 93);
  Network victim_a = make_network(Architecture::kBasicCnn, 1, 16, 4, 94);
  Network victim_b = make_network(Architecture::kMiniVgg, 1, 16, 4, 95);

  const DetectionReport direct_a = NeuralCleanse(tiny_nc_config()).detect(victim_a, probe);
  const DetectionReport direct_b = UsbDetector(tiny_usb_config()).detect(victim_b, probe);

  DetectionService service(service_config(/*scan_threads=*/2, /*executors=*/2));
  ScanRequest request_a;
  request_a.model = &victim_a;
  request_a.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request_a.probe_key = key;
  ScanRequest request_b;
  request_b.model = &victim_b;
  request_b.detector = std::make_unique<UsbDetector>(tiny_usb_config());
  request_b.probe_key = key;

  const ScanHandle handle_a = service.submit(std::move(request_a));
  const ScanHandle handle_b = service.submit(std::move(request_b));
  const ScanOutcome& outcome_a = handle_a.wait();
  const ScanOutcome& outcome_b = handle_b.wait();
  ASSERT_EQ(outcome_a.status, ScanStatus::kDone) << outcome_a.error;
  ASSERT_EQ(outcome_b.status, ScanStatus::kDone) << outcome_b.error;
  expect_reports_identical(direct_a, outcome_a.report);
  expect_reports_identical(direct_b, outcome_b.report);
}

// Progress events: one kFinalized per class, in any order, plus drain()
// returning only after every submitted scan is terminal.
TEST(DetectionService, ProgressEventsAndDrain) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 96};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 97);

  DetectionService service(service_config(/*scan_threads=*/1));
  std::atomic<std::int64_t> finalized{0};
  ScanRequest request;
  request.model = &victim;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/3));
  request.probe_key = key;
  request.options.progress = [&finalized](std::int64_t, ClassScanEvent event, double) {
    if (event == ClassScanEvent::kFinalized) finalized.fetch_add(1);
  };
  const ScanHandle handle = service.submit(std::move(request));
  service.drain();
  EXPECT_EQ(handle.poll(), ScanStatus::kDone);
  EXPECT_EQ(finalized.load(), 4);
}

// Destroying a service with work in flight cancels it; handles stay valid
// and resolve terminally instead of hanging.
TEST(DetectionService, ShutdownCancelsOutstandingScans) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 98};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 99);

  std::vector<ScanHandle> handles;
  {
    DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
    for (int i = 0; i < 3; ++i) {
      ScanRequest request;
      request.model = &victim;
      request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/30));
      request.probe_key = key;
      handles.push_back(service.submit(std::move(request)));
    }
  }  // dtor: cancels queued + running scans, joins executors
  for (const ScanHandle& handle : handles) {
    const ScanStatus status = handle.wait().status;
    EXPECT_TRUE(status == ScanStatus::kCancelled || status == ScanStatus::kDone);
  }
}

TEST(DetectionService, MalformedRequestsAreRejected) {
  const DatasetSpec spec = tiny_spec(4);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 100);
  DetectionService service(service_config(/*scan_threads=*/1));

  ScanRequest no_model;
  no_model.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  no_model.probe_key = ProbeKey{spec, 32, 1};
  EXPECT_THROW((void)service.submit(std::move(no_model)), std::invalid_argument);

  ScanRequest no_detector;
  no_detector.model = &victim;
  no_detector.probe_key = ProbeKey{spec, 32, 1};
  EXPECT_THROW((void)service.submit(std::move(no_detector)), std::invalid_argument);

  ScanRequest no_probe;
  no_probe.model = &victim;
  no_probe.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  EXPECT_THROW((void)service.submit(std::move(no_probe)), std::invalid_argument);
}

// ---- ProbeStore eviction (LRU by bytes) ---------------------------------

// The store under a byte cap: inserting past the cap evicts the
// least-recently-used UNPINNED entry; the evicted key regenerates on its
// next lookup (a fresh miss).
TEST(ProbeStore, EvictsLeastRecentlyUsedWhenOverByteCap) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key_a{spec, 32, 201};
  const ProbeKey key_b{spec, 32, 202};
  const ProbeKey key_c{spec, 32, 203};

  // Size the cap from a real entry: room for two, not three.
  const std::int64_t entry_bytes = ProbeStore(128).get_or_create(key_a)->bytes();
  ProbeStore store(ProbeStoreOptions{128, 2 * entry_bytes});

  (void)store.get_or_create(key_a);
  (void)store.get_or_create(key_b);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.bytes_resident(), 2 * entry_bytes);

  // Touch A so B becomes the LRU, then overflow with C: B must go.
  (void)store.get_or_create(key_a);
  (void)store.get_or_create(key_c);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_LE(store.bytes_resident(), 2 * entry_bytes);

  const std::int64_t misses_before = store.misses();
  (void)store.get_or_create(key_a);  // still resident: a hit
  EXPECT_EQ(store.misses(), misses_before);
  (void)store.get_or_create(key_b);  // evicted: regenerates
  EXPECT_EQ(store.misses(), misses_before + 1);
}

// An entry whose shared_ptr is held by a consumer (a scan in flight) is
// pinned: eviction skips it and drops the next unpinned LRU entry instead;
// with every entry pinned the cap is transiently exceeded.
TEST(ProbeStore, PinnedEntriesSurviveEviction) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key_a{spec, 32, 211};
  const ProbeKey key_b{spec, 32, 212};
  const ProbeKey key_c{spec, 32, 213};

  const std::int64_t entry_bytes = ProbeStore(128).get_or_create(key_a)->bytes();
  ProbeStore store(ProbeStoreOptions{128, 2 * entry_bytes});

  // Hold A (the would-be LRU victim) like an in-flight scan would.
  const std::shared_ptr<const ProbeData> pinned_a = store.get_or_create(key_a);
  std::shared_ptr<const ProbeData> pinned_b = store.get_or_create(key_b);
  (void)store.get_or_create(key_c);  // over cap, but A and B are both pinned
  EXPECT_EQ(store.size(), 3);
  EXPECT_EQ(store.evictions(), 0);
  EXPECT_GT(store.bytes_resident(), 2 * entry_bytes);

  // Release B; the next over-cap insert evicts it (A stays pinned).
  const ProbeKey key_d{spec, 32, 214};
  pinned_b.reset();
  (void)store.get_or_create(key_d);
  EXPECT_GE(store.evictions(), 1);
  const std::int64_t misses_before = store.misses();
  (void)store.get_or_create(key_a);  // pinned entry still resident
  EXPECT_EQ(store.misses(), misses_before);
}

// ---- Admission control (bounded pending depth) --------------------------

namespace {

/// A request whose scan blocks inside its first progress event until
/// `gate` is released — pins the executor deterministically.
ScanRequest gated_request(Network& victim, const ProbeKey& key,
                          std::shared_future<void> gate) {
  ScanRequest request;
  request.model = &victim;
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  request.probe_key = key;
  request.options.progress = [gate = std::move(gate)](std::int64_t, ClassScanEvent event,
                                                      double) {
    if (event == ClassScanEvent::kFinalized) gate.wait();
  };
  return request;
}

void wait_until_running(const ScanHandle& handle) {
  while (handle.poll() == ScanStatus::kQueued) std::this_thread::yield();
}

}  // namespace

TEST(DetectionService, AdmissionRejectPolicyThrowsQueueFullBeforeCloning) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 221};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 222);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.max_queued = 1;
  config.admission_policy = AdmissionPolicy::kReject;
  DetectionService service(config);

  std::promise<void> release;
  const std::shared_future<void> gate(release.get_future());

  // Occupy the executor (running scans do not count against the queue)...
  const ScanHandle busy = service.submit(gated_request(victim, key, gate));
  wait_until_running(busy);

  // ...fill the single queue slot...
  ScanRequest queued;
  queued.model = &victim;
  queued.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  queued.probe_key = key;
  const ScanHandle waiting = service.submit(std::move(queued));

  // ...and the next submit is rejected up front, reporting the observed
  // pending depth so callers can size their backoff.
  ScanRequest rejected;
  rejected.model = &victim;
  rejected.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  rejected.probe_key = key;
  try {
    (void)service.submit(std::move(rejected));
    FAIL() << "submit past max_queued under kReject must throw QueueFull";
  } catch (const QueueFull& full) {
    EXPECT_EQ(full.depth(), 1);
    EXPECT_NE(std::string(full.what()).find("queue full"), std::string::npos);
  }

  release.set_value();
  EXPECT_EQ(busy.wait().status, ScanStatus::kDone);
  EXPECT_EQ(waiting.wait().status, ScanStatus::kDone);
  EXPECT_EQ(service.scans_submitted(), 2);

  // With the backlog drained the service admits again.
  ScanRequest after;
  after.model = &victim;
  after.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  after.probe_key = key;
  EXPECT_EQ(service.submit(std::move(after)).wait().status, ScanStatus::kDone);
}

TEST(DetectionService, AdmissionBlockPolicyWaitsForQueueSpace) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 231};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 232);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.max_queued = 1;
  config.admission_policy = AdmissionPolicy::kBlock;
  DetectionService service(config);

  std::promise<void> release;
  const std::shared_future<void> gate(release.get_future());
  const ScanHandle busy = service.submit(gated_request(victim, key, gate));
  wait_until_running(busy);

  ScanRequest fill;
  fill.model = &victim;
  fill.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  fill.probe_key = key;
  const ScanHandle queued = service.submit(std::move(fill));

  // The third submit must block until the executor drains a slot; it runs
  // on its own thread and can only complete after the gate opens.
  std::future<ScanHandle> blocked = std::async(std::launch::async, [&] {
    ScanRequest request;
    request.model = &victim;
    request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
    request.probe_key = key;
    return service.submit(std::move(request));
  });
  // The gated scan holds the executor and the queue is full, so the submit
  // cannot have been admitted yet.
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(100)), std::future_status::timeout);
  EXPECT_EQ(service.scans_submitted(), 2);

  release.set_value();
  const ScanHandle third = blocked.get();  // unblocks once a slot drains
  EXPECT_EQ(busy.wait().status, ScanStatus::kDone);
  EXPECT_EQ(queued.wait().status, ScanStatus::kDone);
  EXPECT_EQ(third.wait().status, ScanStatus::kDone);
  EXPECT_EQ(service.scans_submitted(), 3);
}

// ---- Global scheduler: fairness, priority, queued cancel ----------------

// Cancelling a still-queued scan resolves the handle IMMEDIATELY — proven
// by wedging the service's only dispatcher inside another scan, so nothing
// but synchronous queue removal could produce kCancelled here — and frees
// the admission slot for the next submit. (CancelWhileQueuedNeverRuns
// covers the eventual-drain side.)
TEST(DetectionService, CancelWhileQueuedResolvesImmediatelyAndFreesSlot) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 251};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 252);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/1);
  config.max_queued = 1;
  config.admission_policy = AdmissionPolicy::kReject;
  DetectionService service(config);

  std::promise<void> release;
  const std::shared_future<void> gate(release.get_future());
  const ScanHandle busy = service.submit(gated_request(victim, key, gate));
  wait_until_running(busy);

  std::atomic<std::int64_t> doomed_events{0};
  ScanRequest doomed;
  doomed.model = &victim;
  doomed.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  doomed.probe_key = key;
  doomed.options.progress = [&doomed_events](std::int64_t, ClassScanEvent, double) {
    doomed_events.fetch_add(1);
  };
  const ScanHandle doomed_handle = service.submit(std::move(doomed));
  EXPECT_EQ(doomed_handle.poll(), ScanStatus::kQueued);

  EXPECT_TRUE(doomed_handle.cancel());
  EXPECT_EQ(doomed_handle.poll(), ScanStatus::kCancelled);  // no waiting
  EXPECT_EQ(doomed_handle.wait().status, ScanStatus::kCancelled);
  EXPECT_EQ(doomed_events.load(), 0);
  EXPECT_EQ(service.scans_cancelled(), 1);

  // The cancelled scan's pending slot is free again: with the dispatcher
  // still wedged, a fresh submit is admitted instead of throwing QueueFull.
  ScanRequest replacement;
  replacement.model = &victim;
  replacement.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  replacement.probe_key = key;
  const ScanHandle replacement_handle = service.submit(std::move(replacement));

  release.set_value();
  EXPECT_EQ(busy.wait().status, ScanStatus::kDone);
  EXPECT_EQ(replacement_handle.wait().status, ScanStatus::kDone);
}

// The tentpole property: a K=4 scan submitted behind a K=43 scan on a
// single-dispatcher service interleaves with it (equal fair share) and
// finishes while the large scan is still running — the old per-request
// executors could never do this — and BOTH reports stay bit-identical to
// detect(). The second pass re-runs the pair with the small scan at
// strict priority 1, which must also win.
TEST(DetectionService, FairShareAndPrioritySmallScanFinishesUnderLargeLoad) {
  DatasetSpec large_spec = tiny_spec(43);
  large_spec.name = "detection-service-fairness-large";
  const DatasetSpec small_spec = tiny_spec(4);
  const ProbeKey large_key{large_spec, 32, 261};
  const ProbeKey small_key{small_spec, 32, 262};
  const Dataset large_probe = generate_dataset(large_spec, 32, 261);
  const Dataset small_probe = generate_dataset(small_spec, 32, 262);
  Network large_victim = make_network(Architecture::kBasicCnn, 1, 16, 43, 263);
  Network small_victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 264);

  const DetectionReport direct_large =
      NeuralCleanse(tiny_nc_config()).detect(large_victim, large_probe);
  const DetectionReport direct_small =
      NeuralCleanse(tiny_nc_config()).detect(small_victim, small_probe);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1, /*executors=*/2);
  config.round_dispatchers = 1;  // both scans admitted, ONE crew to share
  DetectionService service(config);

  for (const int small_priority : {0, 1}) {
    ScanRequest large;
    large.model = &large_victim;
    large.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
    large.probe_key = large_key;
    const ScanHandle large_handle = service.submit(std::move(large));

    ScanRequest small;
    small.model = &small_victim;
    small.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
    small.probe_key = small_key;
    small.options.priority = small_priority;
    const ScanHandle small_handle = service.submit(std::move(small));

    const ScanOutcome& small_outcome = small_handle.wait();
    ASSERT_EQ(small_outcome.status, ScanStatus::kDone) << small_outcome.error;
    // ~10x the remaining work: the large scan cannot have finished unless
    // it monopolized the dispatcher and starved the small one out.
    EXPECT_EQ(large_handle.poll(), ScanStatus::kRunning)
        << "small scan (priority " << small_priority << ") did not finish first";
    const ScanOutcome& large_outcome = large_handle.wait();
    ASSERT_EQ(large_outcome.status, ScanStatus::kDone) << large_outcome.error;

    // Fair-share / priority scheduling has no numeric effect.
    expect_reports_identical(direct_small, small_outcome.report);
    expect_reports_identical(direct_large, large_outcome.report);
  }
  EXPECT_GT(service.rounds_dispatched(), 0);
}

// N threads race get_or_create on one cold key: exactly one generation
// (one miss), everyone else blocks on that entry's materialization and
// shares the pointer (N-1 hits) — the convoy fix must not turn into a
// thundering herd of duplicate builds.
TEST(ProbeStore, ColdKeyRaceMaterializesOnce) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 271};
  ProbeStore store(128);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ProbeData>> results(kThreads);
  std::promise<void> go;
  const std::shared_future<void> start(go.get_future());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&store, &results, &key, start, i] {
      start.wait();
      results[static_cast<std::size_t>(i)] = store.get_or_create(key);
    });
  }
  go.set_value();
  for (std::thread& thread : threads) thread.join();

  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], results[0]);
  }
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.hits(), kThreads - 1);
}

// ---- Deadlines (ScanOptions::deadline_seconds) --------------------------

TEST(DetectionService, ScanStatusToStringCoversEveryValue) {
  EXPECT_EQ(to_string(ScanStatus::kQueued), "queued");
  EXPECT_EQ(to_string(ScanStatus::kRunning), "running");
  EXPECT_EQ(to_string(ScanStatus::kDone), "done");
  EXPECT_EQ(to_string(ScanStatus::kCancelled), "cancelled");
  EXPECT_EQ(to_string(ScanStatus::kFailed), "failed");
  EXPECT_EQ(to_string(ScanStatus::kTimedOut), "timed_out");
  EXPECT_EQ(to_string(ScanStatus::kShed), "shed");
}

TEST(DetectionService, AdmissionPolicyToStringCoversEveryValue) {
  EXPECT_EQ(to_string(AdmissionPolicy::kBlock), "block");
  EXPECT_EQ(to_string(AdmissionPolicy::kReject), "reject");
}

TEST(DetectionService, ClassScanStateToStringCoversEveryValue) {
  EXPECT_EQ(to_string(ClassScanState::kPending), "pending");
  EXPECT_EQ(to_string(ClassScanState::kRefining), "refining");
  EXPECT_EQ(to_string(ClassScanState::kFinalized), "finalized");
  EXPECT_EQ(to_string(ClassScanState::kNumericallyUnstable), "numerically_unstable");
}

// wait_for is poll-with-timeout: it returns the CURRENT status when the
// budget elapses on a still-running scan, and the terminal status as soon
// as one exists — never an error, never an indefinite block.
TEST(DetectionService, WaitForReturnsCurrentStatusOnTimeoutAndTerminalOnCompletion) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 291};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 292);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
  std::promise<void> release;
  const std::shared_future<void> gate(release.get_future());
  const ScanHandle busy = service.submit(gated_request(victim, key, gate));
  wait_until_running(busy);

  // Gated scan: a short wait elapses and reports the live status.
  const ScanStatus while_running = busy.wait_for(0.01);
  EXPECT_TRUE(while_running == ScanStatus::kRunning || while_running == ScanStatus::kQueued);

  release.set_value();
  // Generous budget: returns the terminal status well before 30s.
  EXPECT_EQ(busy.wait_for(30.0), ScanStatus::kDone);
  // A scan already terminal returns immediately, even with a zero budget.
  EXPECT_EQ(busy.wait_for(0.0), ScanStatus::kDone);
}

// A deadline that is set but never hit must have zero numeric effect: the
// report stays byte-identical to detect(), per_class_state is all
// kFinalized, and nothing lands in the timed-out counter. Covers both the
// per-request knob and the service-wide default.
TEST(DetectionService, GenerousDeadlineSubmitMatchesDetectByteForByte) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 281};
  const Dataset probe = generate_dataset(spec, 32, 281);
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 282);

  const DetectionReport direct = NeuralCleanse(tiny_nc_config()).detect(victim, probe);

  DetectionServiceConfig config = service_config(/*scan_threads=*/1);
  config.default_deadline_seconds = 3600.0;  // every scan gets a deadline
  DetectionService service(config);

  ScanRequest by_default;
  by_default.model = &victim;
  by_default.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  by_default.probe_key = key;
  const ScanHandle default_handle = service.submit(std::move(by_default));

  ScanRequest by_request;
  by_request.model = &victim;
  by_request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  by_request.probe_key = key;
  by_request.options.deadline_seconds = 7200.0;
  const ScanHandle request_handle = service.submit(std::move(by_request));

  for (const ScanHandle* handle : {&default_handle, &request_handle}) {
    const ScanOutcome& outcome = handle->wait();
    ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
    expect_reports_identical(direct, outcome.report);
    EXPECT_TRUE(outcome.report.complete());
    EXPECT_TRUE(outcome.report.quarantined_classes().empty());
  }
  EXPECT_EQ(service.scans_timed_out(), 0);
  EXPECT_EQ(service.scans_completed(), 2);
}

// An in-flight scan whose deadline passes resolves kTimedOut at the next
// stage boundary, with a partial report whose per-class states say how far
// each class got; the service stays fully reusable afterwards.
TEST(DetectionService, DeadlineMidScanResolvesTimedOutWithPartialReport) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 283};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 284);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
  ScanRequest request;
  request.model = &victim;
  // A budget far beyond the deadline: the scan CANNOT finish in time.
  request.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/600));
  request.probe_key = key;
  request.options.deadline_seconds = 0.05;
  const ScanHandle handle = service.submit(std::move(request));

  const ScanOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kTimedOut);
  EXPECT_EQ(service.scans_timed_out(), 1);
  if (!outcome.report.per_class_state.empty()) {
    // The scan got past init: the partial report is fully shaped and
    // records per-class completion honestly (nothing can have finalized).
    EXPECT_EQ(outcome.report.per_class_state.size(),
              static_cast<std::size_t>(spec.num_classes));
    EXPECT_FALSE(outcome.report.complete());
  }
  EXPECT_FALSE(handle.cancel());  // already terminal

  // Reusability: an identical request without the deadline completes.
  ScanRequest again;
  again.model = &victim;
  again.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/3));
  again.probe_key = key;
  EXPECT_EQ(service.submit(std::move(again)).wait().status, ScanStatus::kDone);
}

// wait() on a deadline-expired scan that is still QUEUED (the only
// dispatcher is wedged in another scan) resolves kTimedOut promptly,
// without the scan ever running a stage or consuming the dispatcher.
TEST(DetectionService, WaitOnExpiredQueuedScanResolvesTimedOutWithoutRunning) {
  const DatasetSpec spec = tiny_spec(4);
  const ProbeKey key{spec, 32, 285};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 286);

  DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
  std::promise<void> release;
  const std::shared_future<void> gate(release.get_future());
  const ScanHandle busy = service.submit(gated_request(victim, key, gate));
  wait_until_running(busy);

  std::atomic<std::int64_t> events{0};
  ScanRequest doomed;
  doomed.model = &victim;
  doomed.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
  doomed.probe_key = key;
  doomed.options.deadline_seconds = 0.02;
  doomed.options.progress = [&events](std::int64_t, ClassScanEvent, double) {
    events.fetch_add(1);
  };
  const ScanHandle doomed_handle = service.submit(std::move(doomed));
  EXPECT_EQ(doomed_handle.poll(), ScanStatus::kQueued);

  const ScanOutcome& outcome = doomed_handle.wait();  // nudges at expiry
  EXPECT_EQ(outcome.status, ScanStatus::kTimedOut);
  EXPECT_TRUE(outcome.report.per_class_state.empty());  // never ran init
  EXPECT_EQ(events.load(), 0);
  EXPECT_EQ(service.scans_timed_out(), 1);

  release.set_value();
  EXPECT_EQ(busy.wait().status, ScanStatus::kDone);
}

// Shutdown under load with mixed deadlines: queued scans already past
// their deadline resolve kTimedOut (the deadline expired first; shutdown
// must not mask it), everything else resolves kCancelled or kDone.
TEST(DetectionService, ShutdownResolvesExpiredScansTimedOutNotCancelled) {
  const DatasetSpec spec = tiny_spec();
  const ProbeKey key{spec, 48, 287};
  Network victim = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 288);

  ScanHandle busy_handle;
  std::vector<ScanHandle> expired_handles;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> event_counts;
  {
    DetectionService service(service_config(/*scan_threads=*/1, /*executors=*/1));
    ScanRequest busy;
    busy.model = &victim;
    busy.detector = std::make_unique<NeuralCleanse>(tiny_nc_config(/*steps=*/60));
    busy.probe_key = key;
    busy_handle = service.submit(std::move(busy));

    for (int i = 0; i < 3; ++i) {
      event_counts.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
      std::atomic<std::int64_t>* count = event_counts.back().get();
      ScanRequest doomed;
      doomed.model = &victim;
      doomed.detector = std::make_unique<NeuralCleanse>(tiny_nc_config());
      doomed.probe_key = key;
      doomed.options.deadline_seconds = 0.01;
      doomed.options.progress = [count](std::int64_t, ClassScanEvent, double) {
        count->fetch_add(1);
      };
      expired_handles.push_back(service.submit(std::move(doomed)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));  // deadlines pass
  }  // dtor: cancels everything in flight

  for (std::size_t i = 0; i < expired_handles.size(); ++i) {
    EXPECT_EQ(expired_handles[i].wait().status, ScanStatus::kTimedOut) << "scan " << i;
    EXPECT_EQ(event_counts[i]->load(), 0) << "scan " << i;
  }
  const ScanStatus busy_status = busy_handle.wait().status;
  EXPECT_TRUE(busy_status == ScanStatus::kCancelled || busy_status == ScanStatus::kDone);
}

}  // namespace usb
