// WorkerFleet: crash-resilience of the process-sharded scan fleet.
//
// These tests fork/exec REAL scan_server worker processes (the binary built
// from this tree, found via USB_SCAN_SERVER — set by ctest — or
// ./scan_server) and then hurt them: SIGKILL mid-scan, a request that
// abort()s its worker, a worker that dies mid-write leaving a truncated
// frame, a wedged reader that goes heartbeat-silent. The contracts:
//
//  - a killed worker's in-flight scans re-dispatch to survivors and come
//    back BYTE-IDENTICAL to the same scan run in-process (re-dispatch is
//    safe because reports are deterministic);
//  - a request that kills its worker max_request_kills times is quarantined
//    (kFailed naming the worker and signal), not re-dispatched forever;
//  - respawns follow the exponential backoff schedule, observable in
//    FleetHealth::respawn_backoffs_seconds, and reset on delivered results;
//  - shutdown under load terminates EVERY request (done or cancelled,
//    never wedged);
//  - a truncated frame from a dying worker is worker death, never a wedged
//    or crashed router.
//
// Supervisor-side failure paths that no real process death can reach on
// demand are driven through the fleet.spawn / fleet.route / fleet.heartbeat
// fault-injection points.
#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "service/detection_service.h"
#include "service/scan_worker.h"
#include "service/worker_fleet.h"
#include "utils/fault_injection.h"

namespace usb {
namespace {

constexpr std::int64_t kSteps = 4;

std::string server_path() {
  const char* env = std::getenv("USB_SCAN_SERVER");
  return env != nullptr ? env : "./scan_server";
}

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "fleet-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 4;
  return spec;
}

std::string make_checkpoint() {
  static const std::string path = [] {
    const std::string file = testing::TempDir() + "fleet_victim.ckpt";
    const DatasetSpec spec = tiny_spec();
    Network net = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/91);
    save_checkpoint(net, file);
    return file;
  }();
  return path;
}

wire::WireScanRequest make_request(const std::string& method, std::uint64_t probe_seed = 92) {
  wire::WireScanRequest request;
  request.model_ref = ModelRef::from_checkpoint(make_checkpoint());
  request.probe_key = ProbeKey{tiny_spec(), 32, probe_seed};
  request.method = method;
  return request;
}

FleetConfig base_config(std::int64_t workers) {
  FleetConfig config;
  config.worker_argv = {server_path(), "--steps", std::to_string(kSteps), "--hazards"};
  config.num_workers = workers;
  config.max_in_flight_per_worker = 2;
  config.respawn_backoff_initial_seconds = 0.02;
  config.respawn_backoff_max_seconds = 5.0;
  return config;
}

/// Timing fields are the one legitimately non-deterministic part of a
/// report; zero them and serialize the rest for exact comparison.
std::vector<std::uint8_t> serialized_without_timing(ScanStatus status,
                                                    const DetectionReport& report) {
  wire::WireScanResult result;
  result.status = status;
  result.report = report;
  result.report.per_class_seconds.assign(result.report.per_class_seconds.size(), 0.0);
  result.report.wall_seconds = 0.0;
  return wire::encode_result(result);
}

template <typename Predicate>
bool wait_until(Predicate predicate, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

class FleetTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultRegistry::instance().disarm_all(); }
};

// The acceptance pin: SIGKILL a worker while it is scanning. Every scan
// still resolves kDone, the re-dispatched reports are byte-identical to the
// same scans run in-process, nothing is quarantined, and the fleet records
// exactly one respawn.
TEST_F(FleetTest, KilledWorkerMidScanRedispatchesByteIdentical) {
  WorkerFleet fleet(base_config(/*workers=*/2));
  FleetHandle first = fleet.submit(make_request("NC", /*probe_seed=*/92));
  FleetHandle second = fleet.submit(make_request("NC", /*probe_seed=*/93));

  // Kill the first worker that has a scan in flight.
  std::int64_t victim = -1;
  ASSERT_TRUE(wait_until(
      [&] {
        for (const WorkerHealth& w : fleet.health().workers) {
          if (w.alive && w.in_flight > 0) {
            victim = w.pid;
            return true;
          }
        }
        return false;
      },
      10.0));
  kill(static_cast<pid_t>(victim), SIGKILL);

  const FleetOutcome& first_outcome = first.wait();
  const FleetOutcome& second_outcome = second.wait();
  ASSERT_EQ(first_outcome.status, ScanStatus::kDone) << first_outcome.error;
  ASSERT_EQ(second_outcome.status, ScanStatus::kDone) << second_outcome.error;

  // In-process ground truth, same detector configuration as the workers.
  DetectionService local;
  for (const auto& [outcome, seed] :
       std::vector<std::pair<const FleetOutcome*, std::uint64_t>>{{&first_outcome, 92},
                                                                  {&second_outcome, 93}}) {
    ScanRequest reference;
    reference.model_ref = ModelRef::from_checkpoint(make_checkpoint());
    reference.detector = make_wire_detector("NC", kSteps);
    reference.probe_key = ProbeKey{tiny_spec(), 32, seed};
    const ScanHandle handle = local.submit(std::move(reference));
    const ScanOutcome& local_outcome = handle.wait();
    ASSERT_EQ(local_outcome.status, ScanStatus::kDone) << local_outcome.error;
    EXPECT_EQ(serialized_without_timing(outcome->status, outcome->report),
              serialized_without_timing(local_outcome.status, local_outcome.report))
        << "probe seed " << seed;
  }

  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.requests_quarantined, 0);
  EXPECT_EQ(health.respawns_total, 1);
  EXPECT_GE(health.redispatches_total, 1);
  EXPECT_EQ(health.requests_completed, 2);
  fleet.shutdown();
}

// A request that abort()s every worker it lands on is quarantined after
// max_request_kills deaths — resolved kFailed naming the worker and signal
// — while a healthy scan sharing the fleet still completes.
TEST_F(FleetTest, PoisonRequestQuarantinedAfterTwoKills) {
  FleetConfig config = base_config(/*workers=*/2);
  config.max_request_kills = 2;
  WorkerFleet fleet(config);
  FleetHandle healthy = fleet.submit(make_request("NC"));
  FleetHandle poison = fleet.submit(make_request("__crash__"));

  const FleetOutcome& poison_outcome = poison.wait();
  EXPECT_EQ(poison_outcome.status, ScanStatus::kFailed);
  EXPECT_NE(poison_outcome.error.find("poison request"), std::string::npos)
      << poison_outcome.error;
  EXPECT_NE(poison_outcome.error.find("signal"), std::string::npos) << poison_outcome.error;
  EXPECT_EQ(poison_outcome.worker_kills, 2);

  const FleetOutcome& healthy_outcome = healthy.wait();
  EXPECT_EQ(healthy_outcome.status, ScanStatus::kDone) << healthy_outcome.error;

  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.requests_quarantined, 1);
  EXPECT_GE(health.respawns_total, 1);
  fleet.shutdown();
}

// A worker that dies mid-write — leaving a TRUNCATED frame on the pipe —
// is a worker death like any other: the router never wedges or crashes on
// the partial frame, the poison request is quarantined, healthy work
// completes.
TEST_F(FleetTest, TruncatedFrameFromDyingWorkerNeverWedgesRouter) {
  WorkerFleet fleet(base_config(/*workers=*/2));
  FleetHandle healthy = fleet.submit(make_request("NC"));
  FleetHandle garbler = fleet.submit(make_request("__garble__"));

  const FleetOutcome& garble_outcome = garbler.wait();
  EXPECT_EQ(garble_outcome.status, ScanStatus::kFailed);
  EXPECT_NE(garble_outcome.error.find("poison request"), std::string::npos)
      << garble_outcome.error;

  const FleetOutcome& healthy_outcome = healthy.wait();
  EXPECT_EQ(healthy_outcome.status, ScanStatus::kDone) << healthy_outcome.error;

  // The router survived two truncated-frame deaths and still serves.
  FleetHandle after = fleet.submit(make_request("NC"));
  const FleetOutcome& after_outcome = after.wait();
  EXPECT_EQ(after_outcome.status, ScanStatus::kDone) << after_outcome.error;
  fleet.shutdown();
}

// A wedged worker (reader thread hung: pings go unanswered, no results ever
// come) is detected by heartbeat SILENCE, SIGKILLed, and its request
// eventually quarantined. The fleet keeps serving afterwards.
TEST_F(FleetTest, HeartbeatSilenceKillsWedgedWorker) {
  FleetConfig config = base_config(/*workers=*/1);
  config.heartbeat_interval_seconds = 0.05;
  config.heartbeat_timeout_seconds = 0.5;
  WorkerFleet fleet(config);
  FleetHandle wedge = fleet.submit(make_request("__wedge__"));

  const FleetOutcome& wedge_outcome = wedge.wait();
  EXPECT_EQ(wedge_outcome.status, ScanStatus::kFailed);
  EXPECT_NE(wedge_outcome.error.find("poison request"), std::string::npos)
      << wedge_outcome.error;
  EXPECT_EQ(wedge_outcome.worker_kills, 2);

  // The quarantine resolves at the second death; the slot's second respawn
  // lands after its backoff.
  ASSERT_TRUE(wait_until([&] { return fleet.health().respawns_total >= 2; }, 5.0));
  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.requests_quarantined, 1);
  EXPECT_FALSE(health.workers[0].last_death.empty());

  // The respawned worker serves normally.
  FleetHandle after = fleet.submit(make_request("NC"));
  const FleetOutcome& after_outcome = after.wait();
  EXPECT_EQ(after_outcome.status, ScanStatus::kDone) << after_outcome.error;
  fleet.shutdown();
}

// Respawn backoff doubles per consecutive failure — observed through the
// recorded schedule while the fleet.spawn fault point keeps the respawn
// failing — and the slot comes back once the fault clears.
TEST_F(FleetTest, BackoffScheduleDoublesAcrossConsecutiveFailures) {
  WorkerFleet fleet(base_config(/*workers=*/1));
  std::int64_t pid = -1;
  ASSERT_TRUE(wait_until(
      [&] {
        const FleetHealth health = fleet.health();
        if (!health.workers[0].alive) return false;
        pid = health.workers[0].pid;
        return true;
      },
      5.0));

  // The next three spawn attempts die at the fault point; the fourth lands.
  fault::FaultSpec spec;
  spec.kind = fault::FaultSpec::Kind::kThrow;
  spec.after_hits = 0;
  spec.count = 3;
  fault::FaultRegistry::instance().arm("fleet.spawn", spec);
  kill(static_cast<pid_t>(pid), SIGKILL);

  ASSERT_TRUE(wait_until(
      [&] {
        const FleetHealth health = fleet.health();
        return health.respawns_total == 1 && health.workers[0].alive;
      },
      10.0));

  const FleetHealth health = fleet.health();
  // Death, then three failed attempts: four scheduled backoffs, doubling.
  ASSERT_GE(health.respawn_backoffs_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(health.respawn_backoffs_seconds[0], 0.02);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(health.respawn_backoffs_seconds[i],
                     2.0 * health.respawn_backoffs_seconds[i - 1])
        << "backoff " << i;
  }
  EXPECT_EQ(health.workers[0].restarts, 1);

  // Backoff resets on a delivered result: the slot serves, and a later
  // death starts from the initial backoff again.
  FleetHandle scan = fleet.submit(make_request("NC"));
  ASSERT_EQ(scan.wait().status, ScanStatus::kDone);
  const FleetHealth before = fleet.health();
  kill(static_cast<pid_t>(before.workers[0].pid), SIGKILL);
  ASSERT_TRUE(wait_until([&] { return fleet.health().respawns_total == 2; }, 5.0));
  const FleetHealth after = fleet.health();
  ASSERT_GT(after.respawn_backoffs_seconds.size(), before.respawn_backoffs_seconds.size());
  EXPECT_DOUBLE_EQ(after.respawn_backoffs_seconds.back(), 0.02);
  fleet.shutdown();
}

// A dispatch write that fails (fleet.route fault standing in for EPIPE)
// charges the worker, re-dispatches the request, and the scan completes on
// the replacement dispatch.
TEST_F(FleetTest, RouteFaultChargesWorkerAndRedispatches) {
  fault::FaultSpec spec;
  spec.kind = fault::FaultSpec::Kind::kThrow;
  spec.after_hits = 0;
  spec.count = 1;
  fault::FaultRegistry::instance().arm("fleet.route", spec);

  WorkerFleet fleet(base_config(/*workers=*/2));
  FleetHandle handle = fleet.submit(make_request("NC"));
  const FleetOutcome& outcome = handle.wait();
  ASSERT_EQ(outcome.status, ScanStatus::kDone) << outcome.error;
  EXPECT_EQ(outcome.dispatches, 2);
  EXPECT_EQ(outcome.worker_kills, 1);

  const FleetHealth health = fleet.health();
  EXPECT_EQ(health.redispatches_total, 1);
  EXPECT_EQ(health.requests_quarantined, 0);
  fleet.shutdown();
}

// A heartbeat that cannot be evaluated (fleet.heartbeat fault standing in
// for an undeliverable ping) is treated as worker silence: the worker is
// killed and respawned.
TEST_F(FleetTest, HeartbeatFaultTreatsWorkerAsSilent) {
  FleetConfig config = base_config(/*workers=*/1);
  config.heartbeat_interval_seconds = 0.05;
  WorkerFleet fleet(config);
  ASSERT_TRUE(wait_until([&] { return fleet.health().workers[0].alive; }, 5.0));

  fault::FaultSpec spec;
  spec.kind = fault::FaultSpec::Kind::kThrow;
  spec.after_hits = 0;
  spec.count = 1;
  fault::FaultRegistry::instance().arm("fleet.heartbeat", spec);

  ASSERT_TRUE(wait_until(
      [&] {
        const FleetHealth health = fleet.health();
        return health.respawns_total == 1 && health.workers[0].alive;
      },
      10.0));
  const FleetHealth health = fleet.health();
  EXPECT_NE(health.workers[0].last_death.find("signal"), std::string::npos)
      << health.workers[0].last_death;
  fleet.shutdown();
}

// Shutdown under load terminates EVERY request: in-flight scans either
// finish inside the drain budget or are cancelled by the escalation
// (EOF drain -> SIGTERM -> SIGKILL); queued scans cancel immediately; a
// submission racing shutdown cancels instead of wedging.
TEST_F(FleetTest, DrainUnderLoadTerminatesEveryRequest) {
  FleetConfig config = base_config(/*workers=*/2);
  config.drain_wait_seconds = 0.5;
  config.sigterm_wait_seconds = 0.5;
  WorkerFleet fleet(config);
  std::vector<FleetHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(fleet.submit(make_request("NC", /*probe_seed=*/100 + i)));
  }
  fleet.shutdown();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const FleetOutcome& outcome = handles[i].wait();  // must not block forever
    EXPECT_TRUE(outcome.status == ScanStatus::kDone || outcome.status == ScanStatus::kCancelled)
        << "request " << i << ": " << to_string(outcome.status);
  }
  // Submission after shutdown resolves immediately as cancelled.
  FleetHandle late = fleet.submit(make_request("NC"));
  EXPECT_EQ(late.wait().status, ScanStatus::kCancelled);
  // Every worker process is gone.
  for (const WorkerHealth& w : fleet.health().workers) {
    EXPECT_FALSE(w.alive);
  }
}

}  // namespace
}  // namespace usb
