// Tests for the three backdoor attacks: poisoning semantics, trigger
// stamping, input-awareness, and end-to-end injection (train a small victim
// and require high ASR with preserved clean accuracy).
#include <gtest/gtest.h>

#include "attacks/badnet.h"
#include "attacks/factory.h"
#include "attacks/iad.h"
#include "attacks/latent.h"
#include "data/synthetic.h"
#include "nn/trainer.h"

namespace usb {
namespace {

DatasetSpec small_spec() { return DatasetSpec::mnist_like(); }

TEST(BadNetAttack, PatchGeometryAndDeterminism) {
  const DatasetSpec spec = small_spec();
  BadNetConfig config;
  config.trigger_size = 3;
  config.seed = 5;
  const BadNet a(config, spec);
  const BadNet b(config, spec);
  EXPECT_EQ(a.position_y(), b.position_y());
  EXPECT_EQ(a.position_x(), b.position_x());
  EXPECT_TRUE(a.patch().equals(b.patch()));
  EXPECT_LE(a.position_y() + 3, spec.image_size);
  EXPECT_LE(a.position_x() + 3, spec.image_size);

  BadNetConfig other = config;
  other.seed = 6;
  const BadNet c(other, spec);
  EXPECT_FALSE(a.patch().equals(c.patch()));
}

TEST(BadNetAttack, RejectsOversizedTrigger) {
  BadNetConfig config;
  config.trigger_size = 99;
  EXPECT_THROW(BadNet(config, small_spec()), std::invalid_argument);
}

TEST(BadNetAttack, ApplyTriggerOnlyTouchesPatch) {
  const DatasetSpec spec = small_spec();
  BadNetConfig config;
  config.trigger_size = 2;
  BadNet attack(config, spec);
  const Dataset data = generate_dataset(spec, 4, 1);
  Tensor stamped = attack.apply_trigger(data.images());
  std::int64_t changed = 0;
  for (std::int64_t i = 0; i < stamped.numel(); ++i) {
    if (stamped[i] != data.images()[i]) ++changed;
  }
  // At most patch area per sample per channel can change.
  EXPECT_LE(changed, 4 * spec.channels * 4);
  EXPECT_GT(changed, 0);
}

TEST(BadNetAttack, PoisonDatasetFlipsLabelsAtGivenRate) {
  const DatasetSpec spec = small_spec();
  BadNetConfig config;
  config.trigger_size = 2;
  config.target_class = 7;
  config.poison_rate = 0.25;
  BadNet attack(config, spec);
  const Dataset clean = generate_dataset(spec, 200, 2);
  const Dataset poisoned = attack.poison_dataset(clean);
  ASSERT_EQ(poisoned.size(), clean.size());

  std::int64_t relabeled = 0;
  for (std::int64_t i = 0; i < clean.size(); ++i) {
    if (clean.label(i) != poisoned.label(i)) {
      ++relabeled;
      EXPECT_EQ(poisoned.label(i), 7);
    }
  }
  // 25% selected; some already carry label 7 so the relabel count is close
  // to but at most 50.
  EXPECT_GE(relabeled, 35);
  EXPECT_LE(relabeled, 50);
}

TEST(BadNetAttack, TriggerImageMatchesPatch) {
  const DatasetSpec spec = small_spec();
  BadNetConfig config;
  config.trigger_size = 2;
  BadNet attack(config, spec);
  const Tensor image = attack.trigger_image();
  EXPECT_EQ(image.shape(), (Shape{1, 28, 28}));
  EXPECT_NEAR(image.abs_sum(), attack.patch().abs_sum(), 1e-5F);
}

TEST(IadAttack, TriggersAreInputDependent) {
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  IadConfig config;
  Iad attack(config, spec);
  const Dataset data = generate_dataset(spec, 8, 3);
  const Tensor fields = attack.trigger_field(data.images());
  ASSERT_EQ(fields.shape(), data.images().shape());
  // Compare trigger fields of two different images: must differ noticeably.
  const std::int64_t numel = spec.image_numel();
  double diff = 0.0;
  for (std::int64_t i = 0; i < numel; ++i) {
    diff += std::abs(fields[i] - fields[numel + i]);
  }
  EXPECT_GT(diff / static_cast<double>(numel), 1e-3);
}

TEST(IadAttack, StampStaysInRange) {
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  Iad attack(IadConfig{}, spec);
  const Dataset data = generate_dataset(spec, 4, 4);
  const Tensor stamped = attack.apply_trigger(data.images());
  EXPECT_GE(stamped.min(), 0.0F);
  EXPECT_LE(stamped.max(), 1.0F);
}

TEST(AttackFactory, BuildsEveryKind) {
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  AttackParams params;
  params.kind = AttackKind::kNone;
  EXPECT_EQ(make_attack(params, spec), nullptr);
  params.kind = AttackKind::kBadNet;
  EXPECT_EQ(make_attack(params, spec)->name(), "badnet");
  params.kind = AttackKind::kLatent;
  EXPECT_EQ(make_attack(params, spec)->name(), "latent");
  params.kind = AttackKind::kIad;
  EXPECT_EQ(make_attack(params, spec)->name(), "iad");
}

TEST(AttackFactory, KindStrings) {
  EXPECT_EQ(to_string(AttackKind::kNone), "clean");
  EXPECT_EQ(to_string(AttackKind::kBadNet), "badnet");
  EXPECT_EQ(to_string(AttackKind::kLatent), "latent");
  EXPECT_EQ(to_string(AttackKind::kIad), "iad");
}

// End-to-end injection: each attack must reach high ASR without destroying
// clean accuracy on a small MNIST BasicCnn victim.
class InjectionTest : public ::testing::TestWithParam<AttackKind> {};

TEST_P(InjectionTest, HighAsrPreservedAccuracy) {
  const DatasetSpec spec = small_spec();
  const Dataset train_set = generate_dataset(spec, 1500, 11);
  const Dataset test_set = generate_dataset(spec, 300, 12);

  // Injection is achievable, not guaranteed for every (position, init) draw:
  // like the experiment harness's stability guard, retry a few seeds and
  // assert the best run. A systematically broken attack fails all three.
  float best_accuracy = 0.0F;
  float best_asr = 0.0F;
  for (const std::uint64_t seed : {13ULL, 23ULL, 33ULL}) {
    AttackParams params;
    params.kind = GetParam();
    params.trigger_size = 3;
    params.target_class = 2;
    params.poison_rate = 0.20;
    params.seed = seed;
    AttackPtr attack = make_attack(params, spec);

    Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                 spec.num_classes, seed + 1);
    TrainConfig config;
    config.epochs = 5;
    config.seed = seed + 2;
    (void)attack->train_backdoored(model, train_set, config);

    const float accuracy = evaluate_accuracy(model, test_set);
    const float asr = attack->success_rate(model, test_set);
    if (accuracy > 0.85F && asr > best_asr) {
      best_accuracy = accuracy;
      best_asr = asr;
    }
    if (best_accuracy > 0.85F && best_asr > 0.75F) break;
  }
  EXPECT_GT(best_accuracy, 0.85F);
  EXPECT_GT(best_asr, 0.75F);
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, InjectionTest,
                         ::testing::Values(AttackKind::kBadNet, AttackKind::kLatent,
                                           AttackKind::kIad));

}  // namespace
}  // namespace usb
