// PrefixActivationCache: restarting a forward from a cached boundary
// activation must be bit-identical to the full forward from the pixels, for
// every boundary in the layer stack — that is the contract that lets a scan
// run the class-independent prefix once and fan per-class work out from the
// boundary. Full-depth caches additionally memoize logits and argmax
// predictions (the v = 0 warm start of Alg. 1).
#include <gtest/gtest.h>

#include <stdexcept>

#include "data/probe_cache.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "nn/prefix_cache.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "prefix-cache-tiny";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 4;
  return spec;
}

TEST(PrefixActivationCache, ForwardFromAnyBoundaryMatchesFullForward) {
  const Dataset probe = generate_dataset(tiny_spec(), 24, 91);
  const ProbeBatchCache batches(probe, 10);  // 10 + 10 + 4: includes a tail batch
  Network net = make_network(Architecture::kBasicCnn, 1, 16, 4, 92);
  net.set_training(false);

  std::vector<Tensor> full;
  for (const Batch& batch : batches.batches()) full.push_back(net.forward(batch.images));

  const std::int64_t depth = net.sequential().size();
  for (std::int64_t boundary = 0; boundary <= depth; ++boundary) {
    const PrefixActivationCache cache(net, batches.batches(), boundary);
    EXPECT_EQ(cache.boundary(), boundary);
    EXPECT_EQ(cache.full_depth(), boundary == depth);
    ASSERT_EQ(cache.size(), batches.batches().size());
    for (std::size_t i = 0; i < batches.batches().size(); ++i) {
      const Tensor restarted = cache.forward_from(net, i);
      EXPECT_TRUE(restarted.equals(full[i])) << "boundary=" << boundary << " batch=" << i;
    }
  }
}

TEST(PrefixActivationCache, ForwardFromBoundaryOnCloneMatchesReference) {
  // The scan builds the cache on the reference model and restarts from the
  // boundary inside per-class clones; shared weights make that exact.
  const Dataset probe = generate_dataset(tiny_spec(), 12, 93);
  const ProbeBatchCache batches(probe, 12);
  Network reference = make_network(Architecture::kBasicCnn, 1, 16, 4, 94);
  reference.set_training(false);
  const Tensor full = reference.forward(batches.batches()[0].images);

  const std::int64_t mid = reference.sequential().size() / 2;
  const PrefixActivationCache cache(reference, batches.batches(), mid);
  Network clone = clone_network(reference);
  clone.set_training(false);
  EXPECT_TRUE(cache.forward_from(clone, 0).equals(full));
}

TEST(PrefixActivationCache, FullDepthCachesLogitsAndPredictions) {
  const Dataset probe = generate_dataset(tiny_spec(), 15, 95);
  const ProbeBatchCache batches(probe, 8);
  Network net = make_network(Architecture::kBasicCnn, 1, 16, 4, 96);
  net.set_training(false);

  const PrefixActivationCache cache(net, batches.batches());
  EXPECT_TRUE(cache.full_depth());
  ASSERT_EQ(cache.size(), batches.batches().size());
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const Tensor logits = net.forward(batches.batches()[i].images);
    EXPECT_TRUE(cache.activation(i).equals(logits));
    EXPECT_EQ(cache.predictions(i), argmax_rows(logits));
    // forward_from at full depth returns the cached logits without running
    // any layer.
    EXPECT_TRUE(cache.forward_from(net, i).equals(logits));
  }
}

TEST(PrefixActivationCache, RebuildMatchesFreshCache) {
  Network net = make_network(Architecture::kBasicCnn, 1, 16, 4, 97);
  const Dataset first = generate_dataset(tiny_spec(), 20, 98);
  const Dataset second = generate_dataset(tiny_spec(), 9, 99);
  const ProbeBatchCache first_batches(first, 8);
  const ProbeBatchCache second_batches(second, 8);

  // Grow-never-shrink reuse across rebuilds (larger then smaller probe, and
  // a boundary change) must be invisible in the cached values.
  PrefixActivationCache reused(net, first_batches.batches());
  reused.rebuild(net, second_batches.batches());
  const PrefixActivationCache fresh(net, second_batches.batches());
  ASSERT_EQ(reused.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(reused.activation(i).equals(fresh.activation(i)));
    EXPECT_EQ(reused.predictions(i), fresh.predictions(i));
  }

  const std::int64_t mid = net.sequential().size() / 2;
  reused.rebuild(net, first_batches.batches(), mid);
  const PrefixActivationCache fresh_mid(net, first_batches.batches(), mid);
  ASSERT_EQ(reused.size(), fresh_mid.size());
  for (std::size_t i = 0; i < fresh_mid.size(); ++i) {
    EXPECT_TRUE(reused.activation(i).equals(fresh_mid.activation(i)));
  }
}

TEST(PrefixActivationCache, BoundaryOutsideStackThrows) {
  Network net = make_network(Architecture::kBasicCnn, 1, 16, 4, 100);
  const Dataset probe = generate_dataset(tiny_spec(), 4, 101);
  const ProbeBatchCache batches(probe, 4);
  EXPECT_THROW(PrefixActivationCache(net, batches.batches(), net.sequential().size() + 1),
               std::out_of_range);
  EXPECT_THROW(PrefixActivationCache(net, batches.batches(), -2), std::out_of_range);
}

}  // namespace
}  // namespace usb
