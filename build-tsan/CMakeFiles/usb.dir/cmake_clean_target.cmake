file(REMOVE_RECURSE
  "libusb.a"
)
