
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/badnet.cpp" "CMakeFiles/usb.dir/src/attacks/badnet.cpp.o" "gcc" "CMakeFiles/usb.dir/src/attacks/badnet.cpp.o.d"
  "/root/repo/src/attacks/factory.cpp" "CMakeFiles/usb.dir/src/attacks/factory.cpp.o" "gcc" "CMakeFiles/usb.dir/src/attacks/factory.cpp.o.d"
  "/root/repo/src/attacks/iad.cpp" "CMakeFiles/usb.dir/src/attacks/iad.cpp.o" "gcc" "CMakeFiles/usb.dir/src/attacks/iad.cpp.o.d"
  "/root/repo/src/attacks/latent.cpp" "CMakeFiles/usb.dir/src/attacks/latent.cpp.o" "gcc" "CMakeFiles/usb.dir/src/attacks/latent.cpp.o.d"
  "/root/repo/src/core/deepfool.cpp" "CMakeFiles/usb.dir/src/core/deepfool.cpp.o" "gcc" "CMakeFiles/usb.dir/src/core/deepfool.cpp.o.d"
  "/root/repo/src/core/targeted_uap.cpp" "CMakeFiles/usb.dir/src/core/targeted_uap.cpp.o" "gcc" "CMakeFiles/usb.dir/src/core/targeted_uap.cpp.o.d"
  "/root/repo/src/core/usb.cpp" "CMakeFiles/usb.dir/src/core/usb.cpp.o" "gcc" "CMakeFiles/usb.dir/src/core/usb.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "CMakeFiles/usb.dir/src/data/dataloader.cpp.o" "gcc" "CMakeFiles/usb.dir/src/data/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/usb.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/usb.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/usb.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/usb.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/defenses/class_scan_scheduler.cpp" "CMakeFiles/usb.dir/src/defenses/class_scan_scheduler.cpp.o" "gcc" "CMakeFiles/usb.dir/src/defenses/class_scan_scheduler.cpp.o.d"
  "/root/repo/src/defenses/detector.cpp" "CMakeFiles/usb.dir/src/defenses/detector.cpp.o" "gcc" "CMakeFiles/usb.dir/src/defenses/detector.cpp.o.d"
  "/root/repo/src/defenses/masked_trigger.cpp" "CMakeFiles/usb.dir/src/defenses/masked_trigger.cpp.o" "gcc" "CMakeFiles/usb.dir/src/defenses/masked_trigger.cpp.o.d"
  "/root/repo/src/defenses/neural_cleanse.cpp" "CMakeFiles/usb.dir/src/defenses/neural_cleanse.cpp.o" "gcc" "CMakeFiles/usb.dir/src/defenses/neural_cleanse.cpp.o.d"
  "/root/repo/src/defenses/tabor.cpp" "CMakeFiles/usb.dir/src/defenses/tabor.cpp.o" "gcc" "CMakeFiles/usb.dir/src/defenses/tabor.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "CMakeFiles/usb.dir/src/exp/experiment.cpp.o" "gcc" "CMakeFiles/usb.dir/src/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/model_zoo.cpp" "CMakeFiles/usb.dir/src/exp/model_zoo.cpp.o" "gcc" "CMakeFiles/usb.dir/src/exp/model_zoo.cpp.o.d"
  "/root/repo/src/metrics/detection.cpp" "CMakeFiles/usb.dir/src/metrics/detection.cpp.o" "gcc" "CMakeFiles/usb.dir/src/metrics/detection.cpp.o.d"
  "/root/repo/src/metrics/ssim.cpp" "CMakeFiles/usb.dir/src/metrics/ssim.cpp.o" "gcc" "CMakeFiles/usb.dir/src/metrics/ssim.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "CMakeFiles/usb.dir/src/nn/activations.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "CMakeFiles/usb.dir/src/nn/batchnorm.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "CMakeFiles/usb.dir/src/nn/checkpoint.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "CMakeFiles/usb.dir/src/nn/conv.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/conv.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "CMakeFiles/usb.dir/src/nn/init.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/usb.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/usb.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "CMakeFiles/usb.dir/src/nn/models.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/models.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "CMakeFiles/usb.dir/src/nn/optimizer.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "CMakeFiles/usb.dir/src/nn/pooling.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "CMakeFiles/usb.dir/src/nn/residual.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/usb.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/squeeze_excite.cpp" "CMakeFiles/usb.dir/src/nn/squeeze_excite.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/squeeze_excite.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "CMakeFiles/usb.dir/src/nn/trainer.cpp.o" "gcc" "CMakeFiles/usb.dir/src/nn/trainer.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "CMakeFiles/usb.dir/src/tensor/gemm.cpp.o" "gcc" "CMakeFiles/usb.dir/src/tensor/gemm.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/usb.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/usb.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/tensor/tensor_ops.cpp" "CMakeFiles/usb.dir/src/tensor/tensor_ops.cpp.o" "gcc" "CMakeFiles/usb.dir/src/tensor/tensor_ops.cpp.o.d"
  "/root/repo/src/utils/config.cpp" "CMakeFiles/usb.dir/src/utils/config.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/config.cpp.o.d"
  "/root/repo/src/utils/csv.cpp" "CMakeFiles/usb.dir/src/utils/csv.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/csv.cpp.o.d"
  "/root/repo/src/utils/image_io.cpp" "CMakeFiles/usb.dir/src/utils/image_io.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/image_io.cpp.o.d"
  "/root/repo/src/utils/logging.cpp" "CMakeFiles/usb.dir/src/utils/logging.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/logging.cpp.o.d"
  "/root/repo/src/utils/rng.cpp" "CMakeFiles/usb.dir/src/utils/rng.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/rng.cpp.o.d"
  "/root/repo/src/utils/serialize.cpp" "CMakeFiles/usb.dir/src/utils/serialize.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/serialize.cpp.o.d"
  "/root/repo/src/utils/table.cpp" "CMakeFiles/usb.dir/src/utils/table.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/table.cpp.o.d"
  "/root/repo/src/utils/thread_pool.cpp" "CMakeFiles/usb.dir/src/utils/thread_pool.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/thread_pool.cpp.o.d"
  "/root/repo/src/utils/timer.cpp" "CMakeFiles/usb.dir/src/utils/timer.cpp.o" "gcc" "CMakeFiles/usb.dir/src/utils/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
