# Empty dependencies file for usb.
# This may be replaced when dependencies are built.
