# Empty compiler generated dependencies file for test_ssim.
# This may be replaced when dependencies are built.
