file(REMOVE_RECURSE
  "CMakeFiles/test_ssim.dir/tests/test_ssim.cpp.o"
  "CMakeFiles/test_ssim.dir/tests/test_ssim.cpp.o.d"
  "test_ssim"
  "test_ssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
