# Empty compiler generated dependencies file for test_masked_trigger.
# This may be replaced when dependencies are built.
