file(REMOVE_RECURSE
  "CMakeFiles/test_masked_trigger.dir/tests/test_masked_trigger.cpp.o"
  "CMakeFiles/test_masked_trigger.dir/tests/test_masked_trigger.cpp.o.d"
  "test_masked_trigger"
  "test_masked_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masked_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
