# Empty compiler generated dependencies file for test_utils.
# This may be replaced when dependencies are built.
