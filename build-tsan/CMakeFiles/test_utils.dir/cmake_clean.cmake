file(REMOVE_RECURSE
  "CMakeFiles/test_utils.dir/tests/test_utils.cpp.o"
  "CMakeFiles/test_utils.dir/tests/test_utils.cpp.o.d"
  "test_utils"
  "test_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
