file(REMOVE_RECURSE
  "CMakeFiles/test_detection_metrics.dir/tests/test_detection_metrics.cpp.o"
  "CMakeFiles/test_detection_metrics.dir/tests/test_detection_metrics.cpp.o.d"
  "test_detection_metrics"
  "test_detection_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detection_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
