file(REMOVE_RECURSE
  "CMakeFiles/test_scan_scheduler.dir/tests/test_scan_scheduler.cpp.o"
  "CMakeFiles/test_scan_scheduler.dir/tests/test_scan_scheduler.cpp.o.d"
  "test_scan_scheduler"
  "test_scan_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
