# Empty dependencies file for test_scan_scheduler.
# This may be replaced when dependencies are built.
