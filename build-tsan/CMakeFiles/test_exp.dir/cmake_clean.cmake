file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/tests/test_exp.cpp.o"
  "CMakeFiles/test_exp.dir/tests/test_exp.cpp.o.d"
  "test_exp"
  "test_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
