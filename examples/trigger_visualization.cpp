// Trigger visualization: trains a BadNet victim, reverse engineers the
// trigger with USB, and writes side-by-side images (original trigger,
// poisoned sample, targeted UAP, reversed trigger) plus terminal previews.
//
// Usage: trigger_visualization [output_dir]
#include <cstdio>
#include <string>

#include "attacks/badnet.h"
#include "core/targeted_uap.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "utils/image_io.h"
#include "utils/serialize.h"

namespace {

usb::Image to_image(const usb::Tensor& chw) {
  usb::Image image;
  image.channels = chw.dim(0);
  image.height = chw.dim(1);
  image.width = chw.dim(2);
  image.pixels.assign(chw.data().begin(), chw.data().end());
  return image;
}

void preview(const char* title, const usb::Image& image) {
  std::printf("%s\n", title);
  for (const std::string& row : usb::ascii_art(image, 32)) std::printf("  %s\n", row.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace usb;
  const std::string out_dir = argc > 1 ? argv[1] : "trigger_viz";
  ensure_directory(out_dir);

  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset train_set = generate_dataset(spec, 1600, /*seed=*/31);
  const Dataset probe = generate_dataset(spec, 300, /*seed=*/33);

  BadNetConfig badnet_config;
  badnet_config.trigger_size = 3;
  badnet_config.target_class = 5;
  badnet_config.poison_rate = 0.08;
  BadNet attack(badnet_config, spec);
  Network model = make_network(Architecture::kMiniResNet, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/34);
  TrainConfig train_config;
  train_config.epochs = 4;
  (void)attack.train_backdoored(model, train_set, train_config);
  std::printf("victim trained; true trigger at (%lld,%lld), target class 5\n\n",
              static_cast<long long>(attack.position_y()),
              static_cast<long long>(attack.position_x()));

  // Panel 1: the ground-truth trigger on black.
  const Tensor truth = attack.trigger_image();
  const Image truth_image = to_image(truth);
  write_image(truth_image, out_dir + "/original_trigger.ppm");
  preview("original trigger:", truth_image);

  // Panel 2: a poisoned sample.
  const Tensor poisoned = attack.apply_trigger(probe.image(0));
  const Image poisoned_image =
      to_image(poisoned.reshaped(Shape{spec.channels, spec.image_size, spec.image_size}));
  write_image(poisoned_image, out_dir + "/poisoned_sample.ppm");

  // Panel 3: the targeted UAP toward the backdoor class (normalized).
  const TargetedUapResult uap = targeted_uap(model, probe, badnet_config.target_class);
  const Image uap_image = normalize_to_image(uap.perturbation.data(), spec.channels,
                                             spec.image_size, spec.image_size);
  write_image(uap_image, out_dir + "/targeted_uap.ppm");
  std::printf("targeted UAP: fooling rate %.2f after %lld passes, L2 %.2f\n\n",
              uap.fooling_rate, static_cast<long long>(uap.passes),
              uap.perturbation.l2_norm());

  // Panel 4: USB's reversed trigger.
  UsbDetector usb{UsbConfig{}};
  const TriggerEstimate estimate =
      usb.reverse_engineer_class(model, probe, badnet_config.target_class, uap.perturbation);
  Tensor reversed(Shape{spec.channels, spec.image_size, spec.image_size});
  const std::int64_t spatial = spec.image_size * spec.image_size;
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      reversed[c * spatial + s] = estimate.pattern[c * spatial + s] * estimate.mask[s];
    }
  }
  const Image reversed_image = to_image(reversed);
  write_image(reversed_image, out_dir + "/usb_reversed_trigger.ppm");
  preview("USB reversed trigger:", reversed_image);
  std::printf("reversed mask L1 = %.2f, fooling rate = %.2f\n", estimate.mask_l1,
              estimate.fooling_rate);
  std::printf("images written to %s/\n", out_dir.c_str());
  return 0;
}
