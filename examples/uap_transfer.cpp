// UAP transfer (paper Section 4.4): a targeted UAP crafted on one model is
// reused as the Alg. 2 starting point for OTHER models of the same
// architecture, skipping Alg. 1 entirely on the later models.
//
// This is the paper's time-accounting argument for Table 7: "we only need
// to generate it once". The example measures detection quality and wall
// clock with and without transfer on a second backdoored victim.
#include <cstdio>

#include "attacks/badnet.h"
#include "core/targeted_uap.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "utils/table.h"
#include "utils/timer.h"

namespace {

usb::Network train_victim(const usb::DatasetSpec& spec, std::uint64_t seed,
                          std::int64_t target, float* asr_out) {
  using namespace usb;
  const Dataset train_set = generate_dataset(spec, 1600, seed);
  const Dataset test_set = generate_dataset(spec, 300, seed + 1);
  BadNetConfig config;
  config.trigger_size = 3;
  config.target_class = target;
  config.poison_rate = 0.08;
  config.seed = seed + 2;
  BadNet attack(config, spec);
  Network model = make_network(Architecture::kMiniResNet, spec.channels, spec.image_size,
                               spec.num_classes, seed + 3);
  TrainConfig train_config;
  train_config.epochs = 4;
  train_config.seed = seed + 4;
  (void)attack.train_backdoored(model, train_set, train_config);
  *asr_out = attack.success_rate(model, test_set);
  return model;
}

}  // namespace

int main() {
  using namespace usb;
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const std::int64_t target = 4;
  const Dataset probe = generate_dataset(spec, 300, /*seed=*/77);

  float asr_a = 0.0F;
  float asr_b = 0.0F;
  Network model_a = train_victim(spec, 41, target, &asr_a);
  Network model_b = train_victim(spec, 51, target, &asr_b);  // same arch, fresh seeds
  std::printf("two MiniResNet victims, BadNet 3x3 on class %lld: ASR_A=%.1f%% ASR_B=%.1f%%\n\n",
              static_cast<long long>(target), 100.0F * asr_a, 100.0F * asr_b);

  UsbDetector usb{UsbConfig{}};

  // Craft the UAP once, on model A.
  Timer timer;
  const TargetedUapResult uap = targeted_uap(model_a, probe, target);
  const double craft_seconds = timer.seconds();
  std::printf("UAP crafted on model A in %.1fs (fooling %.2f on A)\n",
              craft_seconds, uap.fooling_rate);
  std::printf("same UAP on model B without any adaptation: fooling %.2f\n\n",
              uap_fooling_rate(model_b, probe, uap.perturbation, target));

  Table table({"model B detection", "target L1", "fooling rate", "time [s]"});
  {
    timer.reset();
    const TriggerEstimate estimate = usb.reverse_engineer_class(model_b, probe, target);
    table.add_row({"full pipeline (Alg.1 + Alg.2)", format_double(estimate.mask_l1),
                   format_double(estimate.fooling_rate), format_double(timer.seconds(), 1)});
  }
  {
    timer.reset();
    const TriggerEstimate estimate =
        usb.reverse_engineer_class(model_b, probe, target, uap.perturbation);
    table.add_row({"transferred UAP (Alg.2 only)", format_double(estimate.mask_l1),
                   format_double(estimate.fooling_rate), format_double(timer.seconds(), 1)});
  }
  table.print();
  std::printf("\nTransfer skips Alg. 1 on later models: detection statistic stays comparable\n"
              "while the per-model cost drops by the crafting time (paper Section 4.4).\n");
  return 0;
}
