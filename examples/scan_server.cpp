// Scan worker process: wire-protocol frames on stdin/stdout.
//
// Usage: scan_server [--steps N] [--store-bytes BYTES]
//
// Reads WireScanRequest frames from stdin until end-of-stream, submits every
// one to a single DetectionService as it arrives (so requests overlap on the
// service's pool and share probe/model store entries), then writes one
// WireScanResult frame per request to stdout IN SUBMISSION ORDER. All
// diagnostics go to stderr — stdout carries only frames.
//
// Models arrive by reference (ModelRef) and are resolved through the
// service's ModelStore: N requests naming the same checkpoint or zoo case
// share one resident instance. The detector CONFIGURATION lives here, on the
// server — the wire ships only the method name ("NC" / "TABOR" / "USB"), so
// a fleet's workers, versioned with this binary, all scan identically.
//
// Failure handling: a frame that fails to decode, or names an unknown
// method, gets a kFailed result in its slot (frames are length-prefixed, so
// one bad payload never desyncs the stream). A truncated frame header or
// payload is unrecoverable and exits 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "service/detection_service.h"
#include "service/wire.h"

namespace {

using namespace usb;

// Demo-scale detector for each wire method name; nullptr for unknown names.
// `steps` bounds the per-class refinement so the pipe demo finishes in
// seconds; the USB crafting knobs shrink alongside it when steps is small.
DetectorPtr make_detector(const std::string& method, std::int64_t steps) {
  if (method == "NC") {
    ReverseOptConfig config;
    config.steps = steps;
    return std::make_unique<NeuralCleanse>(config);
  }
  if (method == "TABOR") {
    TaborConfig config;
    config.base.steps = steps;
    return std::make_unique<Tabor>(config);
  }
  if (method == "USB") {
    UsbConfig config;
    config.refine_steps = steps;
    if (steps <= 16) {
      config.uap.max_passes = 1;
      config.uap.craft_size = 32;
      config.uap.batch_size = 16;
      config.batch_size = 8;
    }
    return std::make_unique<UsbDetector>(config);
  }
  return nullptr;
}

// One inbound frame: either a live handle or an immediately-failed result
// (decode error / unknown method) holding its slot in the response order.
struct Pending {
  std::optional<ScanHandle> handle;
  wire::WireScanResult failed;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace usb;

  std::int64_t steps = 12;
  DetectionServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--store-bytes") == 0 && i + 1 < argc) {
      config.model_store_max_bytes = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: scan_server [--steps N] [--store-bytes BYTES]\n");
      return 2;
    }
  }

  DetectionService service(config);
  std::vector<Pending> pending;
  std::vector<std::uint8_t> payload;

  try {
    while (wire::read_frame(stdin, payload)) {
      Pending slot;
      try {
        wire::WireScanRequest request = wire::decode_request(payload);
        DetectorPtr detector = make_detector(request.method, steps);
        if (detector == nullptr) {
          throw wire::WireError("unknown method '" + request.method + "'");
        }
        ScanRequest submit;
        submit.model_ref = std::move(request.model_ref);
        submit.detector = std::move(detector);
        submit.probe_key = request.probe_key;
        submit.options = request.options;
        slot.handle = service.submit(std::move(submit));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "scan_server: request #%zu rejected: %s\n", pending.size(),
                     error.what());
        slot.failed.status = ScanStatus::kFailed;
        slot.failed.error = error.what();
      }
      pending.push_back(std::move(slot));
    }
  } catch (const wire::WireError& error) {
    // Stream-level corruption (truncated header/payload, oversized frame):
    // framing is lost, nothing further can be attributed to a request.
    std::fprintf(stderr, "scan_server: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "scan_server: %zu requests in, waiting...\n", pending.size());

  for (const Pending& slot : pending) {
    wire::WireScanResult result = slot.failed;
    if (slot.handle.has_value()) {
      const ScanOutcome& outcome = slot.handle->wait();
      result.status = outcome.status;
      result.error = outcome.error;
      result.retries = outcome.retries;
      result.report = outcome.report;
    }
    wire::write_frame(stdout, wire::encode_result(result));
  }
  if (std::fflush(stdout) != 0) {
    std::fprintf(stderr, "scan_server: flush failed\n");
    return 1;
  }

  const ModelStore& models = service.model_store();
  std::fprintf(stderr,
               "scan_server: done — model store %lld entries, %lld hits / %lld misses, "
               "%lld bytes resident; probe store %lld entries, %lld hits\n",
               static_cast<long long>(models.size()), static_cast<long long>(models.hits()),
               static_cast<long long>(models.misses()),
               static_cast<long long>(models.bytes_resident()),
               static_cast<long long>(service.probe_store().size()),
               static_cast<long long>(service.probe_store().hits()));
  return 0;
}
