// Scan worker process: wire-protocol frames on stdin/stdout.
//
// Usage: scan_server [--steps N] [--store-bytes BYTES] [--hazards]
//
// Thin wrapper over usb::run_scan_worker (src/service/scan_worker.cpp) — the
// worker loop lives in the library so the WorkerFleet supervisor tests and
// benches drive the exact code this binary runs. Reads WireScanRequest
// frames from stdin until end-of-stream (or SIGTERM = graceful drain),
// answers pings with pongs immediately, and streams WireScanResult frames —
// tagged with each request's id — to stdout AS SCANS COMPLETE. All
// diagnostics go to stderr; stdout carries only frames.
//
// --hazards enables the magic misbehaving methods ("__crash__",
// "__wedge__", "__garble__") used by the fleet fault tests. Never pass it
// outside a test harness.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/scan_worker.h"

int main(int argc, char** argv) {
  usb::ScanWorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      options.steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--store-bytes") == 0 && i + 1 < argc) {
      options.service.model_store_max_bytes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--hazards") == 0) {
      options.enable_test_hazards = true;
    } else {
      std::fprintf(stderr, "usage: scan_server [--steps N] [--store-bytes BYTES] [--hazards]\n");
      return 2;
    }
  }
  return usb::run_scan_worker(options);
}
