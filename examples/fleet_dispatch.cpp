// Process-sharded scan fleet, end to end.
//
// Usage: fleet_dispatch <path-to-scan_server> [--steps N] [--workers N]
//                       [--kill-worker]
//
// Trains a tiny two-model zoo (one clean, one BadNet victim), checkpoints
// both, then stands up a WorkerFleet of scan_server processes and ships
// every (model, method) pair through it. Each report that comes back over
// the wire is checked BYTE-IDENTICAL to the same scan run in-process
// (timing fields zeroed — the one legitimately non-deterministic part),
// which is the property that makes crash re-dispatch safe: a re-run scan
// reproduces the lost report exactly.
//
// --kill-worker is the crash-resilience self-test: once a worker has scans
// in flight, it is SIGKILLed mid-scan. The run passes only if every scan
// still resolves kDone with a byte-identical report, no request was
// quarantined, and the fleet recorded exactly one respawn — i.e. the
// supervisor noticed the death, respawned the slot, re-dispatched the
// orphaned scans to survivors, and nothing was lost.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/factory.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "nn/trainer.h"
#include "service/scan_worker.h"
#include "service/worker_fleet.h"
#include "utils/table.h"

namespace {

using namespace usb;

struct Job {
  std::string label;
  std::string path;
  std::string method;
  FleetHandle handle;
};

std::vector<std::uint8_t> serialized_without_timing(const DetectionReport& report,
                                                    ScanStatus status) {
  wire::WireScanResult result;
  result.status = status;
  result.report = report;
  result.report.per_class_seconds.assign(result.report.per_class_seconds.size(), 0.0);
  result.report.wall_seconds = 0.0;
  return wire::encode_result(result);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace usb;

  const char* server = nullptr;
  std::int64_t steps = 8;
  std::int64_t workers = 2;
  bool kill_worker = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-worker") == 0) {
      kill_worker = true;
    } else if (server == nullptr) {
      server = argv[i];
    } else {
      server = nullptr;
      break;
    }
  }
  if (server == nullptr) {
    std::fprintf(stderr,
                 "usage: fleet_dispatch <path-to-scan_server> [--steps N] [--workers N] "
                 "[--kill-worker]\n");
    return 2;
  }

  // Train the model zoo locally; the fleet sees checkpoints by path only.
  DatasetSpec spec;
  spec.name = "fleet-dispatch";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 6;
  const Dataset train_set = generate_dataset(spec, 512, /*seed=*/71);

  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.seed = 72;

  std::vector<std::pair<std::string, std::string>> models;  // label -> path
  {
    Network clean = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                 spec.num_classes, /*seed=*/73);
    (void)train_network(clean, train_set, train_config);
    const std::string path = "/tmp/fleet_dispatch_clean.ckpt";
    save_checkpoint(clean, path);
    models.emplace_back("clean", path);

    AttackParams params;
    params.kind = AttackKind::kBadNet;
    params.trigger_size = 3;
    params.target_class = 2;
    params.poison_rate = 0.25;
    AttackPtr attack = make_attack(params, spec);
    Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                  spec.num_classes, /*seed=*/74);
    (void)attack->train_backdoored(victim, train_set, train_config);
    const std::string victim_path = "/tmp/fleet_dispatch_badnet.ckpt";
    save_checkpoint(victim, victim_path);
    models.emplace_back("badnet", victim_path);
  }
  std::printf("trained %zu models, checkpointed under /tmp\n", models.size());

  FleetConfig config;
  config.worker_argv = {server, "--steps", std::to_string(steps)};
  config.num_workers = workers;
  config.max_in_flight_per_worker = 2;
  config.heartbeat_interval_seconds = 0.1;
  config.heartbeat_timeout_seconds = 10.0;
  WorkerFleet fleet(config);

  const ProbeKey probe_key{spec, /*size=*/96, /*seed=*/75};
  const std::vector<std::string> methods = {"NC", "USB"};
  std::vector<Job> jobs;
  for (const auto& [label, path] : models) {
    for (const std::string& method : methods) {
      wire::WireScanRequest request;
      request.model_ref = ModelRef::from_checkpoint(path);
      request.probe_key = probe_key;
      request.method = method;
      Job job;
      job.label = label;
      job.path = path;
      job.method = method;
      job.handle = fleet.submit(std::move(request));
      jobs.push_back(std::move(job));
    }
  }
  std::printf("shipped %zu scans to a %lld-worker fleet\n", jobs.size(),
              static_cast<long long>(workers));

  if (kill_worker) {
    // Wait until some worker actually has scans in flight, then murder it.
    std::int64_t victim_pid = -1;
    for (int attempt = 0; attempt < 2000 && victim_pid < 0; ++attempt) {
      const FleetHealth health = fleet.health();
      for (const WorkerHealth& w : health.workers) {
        if (w.alive && w.in_flight > 0) {
          victim_pid = w.pid;
          break;
        }
      }
      if (victim_pid < 0) usleep(10 * 1000);
    }
    if (victim_pid < 0) {
      std::fprintf(stderr, "kill-worker: no worker ever had scans in flight\n");
      return 1;
    }
    kill(static_cast<pid_t>(victim_pid), SIGKILL);
    std::printf("killed worker pid %lld mid-scan\n", static_cast<long long>(victim_pid));
  }

  // Local ground truth: the same scans, in-process.
  DetectionService local;
  Table table({"Model", "Method", "status", "verdict", "dispatches", "byte-identical"});
  int bad = 0;
  for (Job& job : jobs) {
    const FleetOutcome& outcome = job.handle.wait();
    if (outcome.status != ScanStatus::kDone) {
      ++bad;
      table.add_row({job.label, job.method, to_string(outcome.status), "-",
                     std::to_string(outcome.dispatches), "-"});
      if (!outcome.error.empty()) {
        std::fprintf(stderr, "%s/%s: %s\n", job.label.c_str(), job.method.c_str(),
                     outcome.error.c_str());
      }
      continue;
    }
    ScanRequest reference;
    reference.model_ref = ModelRef::from_checkpoint(job.path);
    reference.detector = make_wire_detector(job.method, steps);
    reference.probe_key = probe_key;
    const ScanHandle reference_handle = local.submit(std::move(reference));
    const ScanOutcome& reference_outcome = reference_handle.wait();
    const bool identical =
        reference_outcome.status == ScanStatus::kDone &&
        serialized_without_timing(outcome.report, outcome.status) ==
            serialized_without_timing(reference_outcome.report, reference_outcome.status);
    if (!identical) ++bad;
    table.add_row({job.label, job.method, to_string(outcome.status),
                   outcome.report.verdict.backdoored ? "BACKDOORED" : "clean",
                   std::to_string(outcome.dispatches), identical ? "yes" : "NO"});
  }
  table.print();

  const FleetHealth health = fleet.health();
  std::printf("fleet: %lld completed, %lld re-dispatched, %lld quarantined, %lld respawns\n",
              static_cast<long long>(health.requests_completed),
              static_cast<long long>(health.redispatches_total),
              static_cast<long long>(health.requests_quarantined),
              static_cast<long long>(health.respawns_total));
  for (const WorkerHealth& w : health.workers) {
    std::printf("  worker %lld: pid %lld, alive=%d, restarts %lld%s%s\n",
                static_cast<long long>(w.index), static_cast<long long>(w.pid),
                w.alive ? 1 : 0, static_cast<long long>(w.restarts),
                w.last_death.empty() ? "" : ", last death: ",
                w.last_death.c_str());
  }
  fleet.shutdown();

  if (kill_worker) {
    // The acceptance pin: nothing lost, nothing quarantined, one respawn.
    if (health.requests_quarantined != 0) {
      std::fprintf(stderr, "FAIL: %lld requests quarantined\n",
                   static_cast<long long>(health.requests_quarantined));
      ++bad;
    }
    if (health.respawns_total != 1) {
      std::fprintf(stderr, "FAIL: expected exactly one respawn, saw %lld\n",
                   static_cast<long long>(health.respawns_total));
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
