// Defense comparison: NC vs TABOR vs USB on one backdoored model.
//
// Usage: defense_comparison [badnet|latent|iad] [trigger_size]
//
// Reproduces the paper's core comparison on a single victim: all three
// detectors reverse engineer per-class triggers; the table shows each
// method's norms, timing, verdict, and predicted target class. With the IAD
// attack, expect NC and TABOR to miss while USB still flags the target
// (paper Table 3).
#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/factory.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "nn/trainer.h"
#include "utils/table.h"
#include "utils/timer.h"

int main(int argc, char** argv) {
  using namespace usb;

  AttackParams params;
  params.kind = AttackKind::kBadNet;
  params.trigger_size = 3;
  params.target_class = 2;
  params.poison_rate = 0.10;
  if (argc > 1) {
    if (std::strcmp(argv[1], "latent") == 0) {
      params.kind = AttackKind::kLatent;
      params.trigger_size = 4;
    } else if (std::strcmp(argv[1], "iad") == 0) {
      params.kind = AttackKind::kIad;
    }
  }
  if (argc > 2) params.trigger_size = std::atoll(argv[2]);

  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset train_set = generate_dataset(spec, 2000, /*seed=*/21);
  const Dataset test_set = generate_dataset(spec, 500, /*seed=*/22);
  const Dataset probe = generate_dataset(spec, 300, /*seed=*/23);

  AttackPtr attack = make_attack(params, spec);
  Network model = make_network(Architecture::kMiniVgg, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/24);
  TrainConfig train_config;
  train_config.epochs = params.kind == AttackKind::kIad ? 6 : 4;
  train_config.seed = 25;

  Timer timer;
  (void)attack->train_backdoored(model, train_set, train_config);
  std::printf("[%.1fs] trained MiniVgg with %s attack: accuracy %.2f%%, ASR %.2f%%\n",
              timer.seconds(), attack->name().c_str(),
              100.0F * evaluate_accuracy(model, test_set),
              100.0F * attack->success_rate(model, test_set));
  std::printf("true backdoor target class: %lld\n\n",
              static_cast<long long>(params.target_class));

  NeuralCleanse nc{ReverseOptConfig{}};
  Tabor tabor{TaborConfig{}};
  UsbDetector usb{UsbConfig{}};
  Detector* detectors[] = {&nc, &tabor, &usb};

  Table table({"Method", "verdict", "flagged classes", "target-class L1", "median L1",
               "time [m:s]"});
  for (Detector* detector : detectors) {
    timer.reset();
    const DetectionReport report = detector->detect(model, probe);
    std::string flagged;
    for (const std::int64_t cls : report.verdict.flagged_classes) {
      flagged += (flagged.empty() ? "" : ",") + std::to_string(cls);
    }
    table.add_row({detector->name(), report.verdict.backdoored ? "BACKDOORED" : "clean",
                   flagged.empty() ? "-" : flagged,
                   format_double(report.verdict.norms[params.target_class]),
                   format_double(median(report.verdict.norms)),
                   format_minutes_seconds(timer.seconds())});
  }
  table.print();
  return 0;
}
