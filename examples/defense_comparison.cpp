// Defense comparison: NC vs TABOR vs USB on one backdoored model.
//
// Usage: defense_comparison [badnet|latent|iad] [trigger_size]
//        defense_comparison --model-ref <ckpt> [<ckpt>...]
//
// Reproduces the paper's core comparison on a single victim: all three
// detectors reverse engineer per-class triggers; the table shows each
// method's norms, timing, verdict, and predicted target class. With the IAD
// attack, expect NC and TABOR to miss while USB still flags the target
// (paper Table 3).
//
// Since the service API redesign this example is also the DetectionService
// migration reference: instead of three blocking detect() calls it submits
// all three scans at once — they overlap on the service's pool, share one
// content-addressed probe materialization, and report per-class progress —
// then waits on the handles in method order. Reports are bit-identical to
// the legacy sequential loop.
//
// With --model-ref the fleet-triage scenario runs end-to-end from the CLI:
// each argument is a checkpoint path (nn/checkpoint.h format, e.g. saved by
// examples/scan_client or train_or_load's zoo cache) submitted BY REFERENCE
// — the service's ModelStore loads each file once and the three per-model
// scans share that single resident instance. The probe is sized from the
// checkpoint's own geometry, so mixed fleets (different architectures or
// input shapes) triage in one run.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/factory.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "nn/trainer.h"
#include "service/detection_service.h"
#include "utils/table.h"
#include "utils/timer.h"

namespace {

using namespace usb;

// --model-ref mode: triage every checkpoint with all three detectors
// through one service, models resolved through the ModelStore.
int run_model_refs(const std::vector<std::string>& paths) {
  DetectionService service;
  Table table({"Checkpoint", "Method", "status", "verdict", "flagged classes", "wall [m:s]"});
  int degraded = 0;

  for (const std::string& path : paths) {
    const ModelRef ref = ModelRef::from_checkpoint(path);
    // Resolve the ref up front: this loads (or finds) the resident model,
    // tells us the probe geometry, and — because the pin is held across the
    // submits below — guarantees all three scans hit the same entry.
    std::shared_ptr<const ModelData> resident;
    try {
      resident = service.model_store().get_or_create(ref);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      table.add_row({path, "-", "load failed", "-", "-", "-"});
      ++degraded;
      continue;
    }
    DatasetSpec spec;
    spec.name = "fleet-probe";
    spec.channels = resident->network.in_channels();
    spec.image_size = resident->network.input_size();
    spec.num_classes = resident->network.num_classes();
    const ProbeKey probe_key{spec, 96, /*seed=*/23};

    auto submit = [&](DetectorPtr detector) {
      ScanRequest request;
      request.model_ref = ref;
      request.detector = std::move(detector);
      request.probe_key = probe_key;
      return service.submit(std::move(request));
    };
    ReverseOptConfig nc_config;
    nc_config.steps = 24;
    TaborConfig tabor_config;
    tabor_config.base.steps = 24;
    UsbConfig usb_config;
    usb_config.uap.max_passes = 1;
    usb_config.uap.craft_size = 32;
    usb_config.refine_steps = 24;
    const ScanHandle handles[] = {submit(std::make_unique<NeuralCleanse>(nc_config)),
                                  submit(std::make_unique<Tabor>(tabor_config)),
                                  submit(std::make_unique<UsbDetector>(usb_config))};
    for (const ScanHandle& handle : handles) {
      const ScanOutcome& outcome = handle.wait();
      if (outcome.status != ScanStatus::kDone) {
        ++degraded;
        table.add_row({path, outcome.report.method.empty() ? "?" : outcome.report.method,
                       to_string(outcome.status), "-", "-", "-"});
        if (!outcome.error.empty()) std::fprintf(stderr, "%s\n", outcome.error.c_str());
        continue;
      }
      const DetectionReport& report = outcome.report;
      std::string flagged;
      for (const std::int64_t cls : report.verdict.flagged_classes) {
        flagged += (flagged.empty() ? "" : ",") + std::to_string(cls);
      }
      table.add_row({path, report.method, to_string(outcome.status),
                     report.verdict.backdoored ? "BACKDOORED" : "clean",
                     flagged.empty() ? "-" : flagged,
                     format_minutes_seconds(report.wall_seconds)});
    }
  }
  table.print();
  const ModelStore& models = service.model_store();
  std::printf("\nmodel store: %lld entries, %lld hits / %lld misses, %lld bytes resident\n",
              static_cast<long long>(models.size()), static_cast<long long>(models.hits()),
              static_cast<long long>(models.misses()),
              static_cast<long long>(models.bytes_resident()));
  return degraded == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace usb;

  if (argc > 1 && std::strcmp(argv[1], "--model-ref") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: defense_comparison --model-ref <ckpt> [<ckpt>...]\n");
      return 2;
    }
    return run_model_refs({argv + 2, argv + argc});
  }

  AttackParams params;
  params.kind = AttackKind::kBadNet;
  params.trigger_size = 3;
  params.target_class = 2;
  params.poison_rate = 0.10;
  if (argc > 1) {
    if (std::strcmp(argv[1], "latent") == 0) {
      params.kind = AttackKind::kLatent;
      params.trigger_size = 4;
    } else if (std::strcmp(argv[1], "iad") == 0) {
      params.kind = AttackKind::kIad;
    }
  }
  if (argc > 2) params.trigger_size = std::atoll(argv[2]);

  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset train_set = generate_dataset(spec, 2000, /*seed=*/21);
  const Dataset test_set = generate_dataset(spec, 500, /*seed=*/22);
  // The probe is named by content address (spec, size, seed) and
  // materialized once inside the service for all three scans.
  const ProbeKey probe_key{spec, 300, /*seed=*/23};

  AttackPtr attack = make_attack(params, spec);
  Network model = make_network(Architecture::kMiniVgg, spec.channels, spec.image_size,
                               spec.num_classes, /*seed=*/24);
  TrainConfig train_config;
  train_config.epochs = params.kind == AttackKind::kIad ? 6 : 4;
  train_config.seed = 25;

  const Timer train_timer;
  (void)attack->train_backdoored(model, train_set, train_config);
  std::printf("[%.1fs] trained MiniVgg with %s attack: accuracy %.2f%%, ASR %.2f%%\n",
              train_timer.seconds(), attack->name().c_str(),
              100.0F * evaluate_accuracy(model, test_set),
              100.0F * attack->success_rate(model, test_set));
  std::printf("true backdoor target class: %lld\n\n",
              static_cast<long long>(params.target_class));

  // One service session: three concurrent scans of the same victim (the
  // service clones the model per request, so sharing `model` is safe).
  DetectionService service;
  std::atomic<std::int64_t> classes_done{0};

  auto submit = [&](DetectorPtr detector) {
    ScanRequest request;
    request.model = &model;
    request.detector = std::move(detector);
    request.probe_key = probe_key;
    request.options.progress = [&classes_done](std::int64_t /*target_class*/, ClassScanEvent event,
                                               double /*mask_l1*/) {
      if (event == ClassScanEvent::kFinalized) classes_done.fetch_add(1);
    };
    return service.submit(std::move(request));
  };

  const Timer scan_timer;
  ScanHandle handles[] = {submit(std::make_unique<NeuralCleanse>(ReverseOptConfig{})),
                          submit(std::make_unique<Tabor>(TaborConfig{})),
                          submit(std::make_unique<UsbDetector>(UsbConfig{}))};
  std::printf("submitted %lld scans (probe %s)\n",
              static_cast<long long>(service.scans_submitted()), probe_key.address().c_str());

  Table table({"Method", "verdict", "flagged classes", "target-class L1", "median L1",
               "wall [m:s]", "per-class sum [m:s]"});
  int degraded = 0;
  for (const ScanHandle& handle : handles) {
    const ScanOutcome& outcome = handle.wait();
    // A scan that failed, timed out, or was shed degrades THIS row only —
    // the other methods' verdicts still print. A timed-out scan has a
    // partial report; say how far each class got instead of dropping it.
    if (outcome.status != ScanStatus::kDone) {
      ++degraded;
      std::fprintf(stderr, "scan #%llu resolved %s%s%s\n",
                   static_cast<unsigned long long>(handle.id()),
                   to_string(outcome.status).c_str(), outcome.error.empty() ? "" : ": ",
                   outcome.error.c_str());
      if (outcome.status == ScanStatus::kTimedOut && !outcome.report.per_class_state.empty()) {
        std::int64_t finalized = 0;
        for (const ClassScanState state : outcome.report.per_class_state) {
          if (state == ClassScanState::kFinalized) ++finalized;
        }
        std::fprintf(stderr, "  partial report: %lld/%zu classes finalized\n",
                     static_cast<long long>(finalized), outcome.report.per_class_state.size());
      }
      const std::string method =
          outcome.report.method.empty() ? "(unknown)" : outcome.report.method;
      table.add_row({method, to_string(outcome.status), "-", "-", "-", "-", "-"});
      continue;
    }
    const DetectionReport& report = outcome.report;
    std::string flagged;
    for (const std::int64_t cls : report.verdict.flagged_classes) {
      flagged += (flagged.empty() ? "" : ",") + std::to_string(cls);
    }
    table.add_row({report.method, report.verdict.backdoored ? "BACKDOORED" : "clean",
                   flagged.empty() ? "-" : flagged,
                   format_double(report.verdict.norms[params.target_class]),
                   format_double(median(report.verdict.norms)),
                   format_minutes_seconds(report.wall_seconds),
                   format_minutes_seconds(report.total_seconds())});
  }
  table.print();
  std::printf(
      "\n%lld per-class scans finished across 3 overlapping requests in %s "
      "(probe store: %lld entries, %lld hits).\n",
      static_cast<long long>(classes_done.load()),
      format_minutes_seconds(scan_timer.seconds()).c_str(),
      static_cast<long long>(service.probe_store().size()),
      static_cast<long long>(service.probe_store().hits()));
  // Degraded rows are visible above; a partial comparison is still exit 1
  // so scripted runs notice, but only after every healthy verdict printed.
  return degraded == 0 ? 0 : 1;
}
