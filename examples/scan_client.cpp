// Out-of-process scan submission over the wire protocol.
//
// Usage: scan_client <path-to-scan_server> [--steps N]
//
// The client end of the pipe pair (see examples/scan_server.cpp). It trains
// a tiny two-model fleet (one clean, one BadNet victim), saves both to
// checkpoints, spawns scan_server as a child process, and ships every
// (model, method) pair as a WireScanRequest frame down the child's stdin —
// models BY CHECKPOINT PATH, no Network ever crossing the process boundary.
// The server resolves each path through its ModelStore (two methods per
// checkpoint -> one load, one store hit each), scans, and streams
// WireScanResult frames back, which the client decodes into a verdict
// table. Exit 0 iff every frame round-trips and every scan resolves kDone
// (verdict quality at this toy scale is informational — see
// defense_comparison for the paper-scale comparison).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/factory.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "nn/trainer.h"
#include "service/wire.h"
#include "utils/table.h"

namespace {

using namespace usb;

struct Fleet {
  std::string label;
  std::string path;
  bool backdoored = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace usb;

  const char* server = nullptr;
  std::int64_t steps = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoll(argv[++i]);
    } else if (server == nullptr) {
      server = argv[i];
    } else {
      server = nullptr;
      break;
    }
  }
  if (server == nullptr) {
    std::fprintf(stderr, "usage: scan_client <path-to-scan_server> [--steps N]\n");
    return 2;
  }

  // Train the fleet locally and hand it to the server by checkpoint path.
  DatasetSpec spec;
  spec.name = "scan-client-fleet";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 6;
  const Dataset train_set = generate_dataset(spec, 512, /*seed=*/31);

  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.seed = 32;

  std::vector<Fleet> fleet;
  {
    Network clean = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                 spec.num_classes, /*seed=*/33);
    (void)train_network(clean, train_set, train_config);
    const std::string path = "/tmp/scan_client_clean.ckpt";
    save_checkpoint(clean, path);
    fleet.push_back({"clean", path, false});

    AttackParams params;
    params.kind = AttackKind::kBadNet;
    params.trigger_size = 3;
    params.target_class = 2;
    params.poison_rate = 0.25;
    AttackPtr attack = make_attack(params, spec);
    Network victim = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                                  spec.num_classes, /*seed=*/34);
    (void)attack->train_backdoored(victim, train_set, train_config);
    const std::string victim_path = "/tmp/scan_client_badnet.ckpt";
    save_checkpoint(victim, victim_path);
    fleet.push_back({"badnet", victim_path, true});
  }
  std::printf("trained %zu models, checkpointed under /tmp\n", fleet.size());

  // Spawn the server: requests flow down to_child, results back up
  // from_child. The client closes its write end after the last frame so the
  // server sees EOF and starts draining.
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    const std::string steps_text = std::to_string(steps);
    execl(server, server, "--steps", steps_text.c_str(), static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  std::FILE* request_stream = fdopen(to_child[1], "wb");
  std::FILE* result_stream = fdopen(from_child[0], "rb");
  if (request_stream == nullptr || result_stream == nullptr) {
    std::perror("fdopen");
    return 1;
  }

  const ProbeKey probe_key{spec, /*size=*/96, /*seed=*/35};
  const std::vector<std::string> methods = {"NC", "USB"};
  std::vector<std::string> row_labels;
  for (const Fleet& entry : fleet) {
    for (const std::string& method : methods) {
      wire::WireScanRequest request;
      // The server streams results in COMPLETION order (wire v2); the id is
      // how each result finds its row. 0 is reserved for unattributable.
      request.request_id = row_labels.size() + 1;
      request.model_ref = ModelRef::from_checkpoint(entry.path);
      request.probe_key = probe_key;
      request.method = method;
      wire::write_frame(request_stream, wire::encode_request(request));
      row_labels.push_back(entry.label);
    }
  }
  std::fclose(request_stream);  // EOF: the server drains and responds
  std::printf("shipped %zu requests to pid %d, waiting on results...\n", row_labels.size(),
              static_cast<int>(pid));

  Table table({"Model", "Method", "status", "verdict", "flagged classes", "wall [m:s]"});
  int bad = 0;
  std::vector<std::uint8_t> payload;
  std::vector<wire::WireScanResult> results(row_labels.size());
  std::vector<bool> seen(row_labels.size(), false);
  for (std::size_t n = 0; n < row_labels.size(); ++n) {
    if (!wire::read_frame(result_stream, payload)) {
      std::fprintf(stderr, "server stream ended after %zu/%zu results\n", n, row_labels.size());
      ++bad;
      break;
    }
    wire::WireScanResult result = wire::decode_result(payload);
    if (result.request_id < 1 || result.request_id > row_labels.size()) {
      std::fprintf(stderr, "result carries unknown request id %llu\n",
                   static_cast<unsigned long long>(result.request_id));
      ++bad;
      continue;
    }
    const std::size_t slot = static_cast<std::size_t>(result.request_id) - 1;
    results[slot] = std::move(result);
    seen[slot] = true;
  }
  for (std::size_t i = 0; i < row_labels.size(); ++i) {
    if (!seen[i]) {
      ++bad;
      table.add_row({row_labels[i], methods[i % methods.size()], "missing", "-", "-", "-"});
      continue;
    }
    const wire::WireScanResult& result = results[i];
    const Fleet& entry = fleet[i / methods.size()];
    if (result.status != ScanStatus::kDone) {
      ++bad;
      table.add_row({row_labels[i], result.report.method.empty() ? methods[i % methods.size()]
                                                                 : result.report.method,
                     to_string(result.status), "-", "-", "-"});
      if (!result.error.empty()) {
        std::fprintf(stderr, "scan %zu: %s\n", i, result.error.c_str());
      }
      continue;
    }
    const DetectionReport& report = result.report;
    if (report.verdict.backdoored != entry.backdoored) {
      std::fprintf(stderr, "note: %s/%s verdict differs from ground truth (toy scale)\n",
                   row_labels[i].c_str(), report.method.c_str());
    }
    std::string flagged;
    for (const std::int64_t cls : report.verdict.flagged_classes) {
      flagged += (flagged.empty() ? "" : ",") + std::to_string(cls);
    }
    table.add_row({row_labels[i], report.method,
                   to_string(result.status), report.verdict.backdoored ? "BACKDOORED" : "clean",
                   flagged.empty() ? "-" : flagged, format_minutes_seconds(report.wall_seconds)});
  }
  std::fclose(result_stream);
  int status = 0;
  waitpid(pid, &status, 0);
  table.print();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "scan_server exited abnormally (status %d)\n", status);
    return 1;
  }
  return bad == 0 ? 0 : 1;
}
