// Quickstart: the USB pipeline end to end on a CIFAR-10-like dataset.
//
//   1. Train a clean MiniResNet and a BadNet-backdoored one.
//   2. Run the USB detector on both.
//   3. Print per-class reversed-trigger norms and the MAD verdicts.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "attacks/badnet.h"
#include "core/usb.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "utils/table.h"
#include "utils/timer.h"

int main() {
  using namespace usb;

  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset train_set = generate_dataset(spec, 2000, /*seed=*/1);
  const Dataset test_set = generate_dataset(spec, 500, /*seed=*/2);

  TrainConfig train_config;
  train_config.epochs = 4;
  train_config.seed = 3;

  // ---- Clean victim. ----
  Timer timer;
  Network clean_model = make_network(Architecture::kMiniResNet, spec.channels, spec.image_size,
                                     spec.num_classes, /*seed=*/10);
  (void)train_network(clean_model, train_set, train_config);
  const float clean_acc = evaluate_accuracy(clean_model, test_set);
  std::printf("[%.1fs] clean model:      accuracy %.2f%%\n", timer.seconds(),
              100.0F * clean_acc);

  // ---- Backdoored victim: BadNet 3x3 patch, target class 0. ----
  timer.reset();
  BadNetConfig badnet_config;
  badnet_config.trigger_size = 3;
  badnet_config.target_class = 0;
  badnet_config.poison_rate = 0.10;
  BadNet attack(badnet_config, spec);
  Network backdoored_model = make_network(Architecture::kMiniResNet, spec.channels,
                                          spec.image_size, spec.num_classes, /*seed=*/11);
  (void)attack.train_backdoored(backdoored_model, train_set, train_config);
  const float bd_acc = evaluate_accuracy(backdoored_model, test_set);
  const float asr = attack.success_rate(backdoored_model, test_set);
  std::printf("[%.1fs] backdoored model: accuracy %.2f%%, attack success rate %.2f%%\n",
              timer.seconds(), 100.0F * bd_acc, 100.0F * asr);

  // ---- USB detection on both models. ----
  const Dataset probe = generate_dataset(spec, 300, /*seed=*/4);  // the paper's |X| = 300
  UsbConfig usb_config;
  UsbDetector usb(usb_config);

  const std::pair<const char*, Network*> victims[] = {{"clean", &clean_model},
                                                      {"backdoored", &backdoored_model}};
  for (const auto& entry : victims) {
    timer.reset();
    const DetectionReport report = usb.detect(*entry.second, probe);
    std::printf("\n[%.1fs] USB on %s model -> %s\n", timer.seconds(), entry.first,
                report.verdict.backdoored ? "BACKDOORED" : "clean");
    Table table({"class", "mask L1", "anomaly index", "fooling rate"});
    for (std::size_t k = 0; k < report.per_class.size(); ++k) {
      table.add_row({std::to_string(k), format_double(report.verdict.norms[k]),
                     format_double(report.verdict.anomaly[k]),
                     format_double(report.per_class[k].fooling_rate)});
    }
    table.print();
    if (report.verdict.backdoored) {
      std::printf("flagged target class(es):");
      for (const std::int64_t cls : report.verdict.flagged_classes) {
        std::printf(" %lld", static_cast<long long>(cls));
      }
      std::printf("  (true backdoor target: 0)\n");
    }
  }
  return 0;
}
