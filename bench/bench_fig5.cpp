// Figure 5 — USB reverse engineering for all 10 classes on MNIST with the
// Basic model (appendix A.6/A.7).
//
// The paper removes the mask-size constraint (loss = CE - SSIM, no |m|_1)
// and reverse engineers every class of a BadNet-backdoored Basic CNN. The
// clean classes recover their class features; the backdoored class (target
// 1 in the paper) recovers the trigger — visibly smaller and localized.
#include <cstdio>

#include "core/usb.h"
#include "fig_common.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  ExperimentScale scale = ExperimentScale::from_env();
  scale.epochs = std::max<std::int64_t>(scale.epochs, 5);
  const DatasetSpec spec = DatasetSpec::mnist_like();
  const std::int64_t target = 1;  // the paper's Fig. 5 uses target class 1

  TrainedModel victim =
      badnet_victim(spec, Architecture::kBasicCnn, /*trigger=*/3, target, scale);
  const Dataset probe = make_probe(spec, 300);
  std::printf("Figure 5: USB reverse engineering for 10 MNIST classes, BasicCnn victim\n");
  std::printf("acc=%.1f%% ASR=%.1f%%, true target class %lld, loss = CE - SSIM (no |m|_1)\n\n",
              100.0F * victim.clean_accuracy, 100.0F * victim.asr,
              static_cast<long long>(target));

  UsbConfig config;
  config.use_l1_term = false;  // the appendix's unconstrained variant
  UsbDetector usb{config};

  // First panel: a clean probe image carrying the true trigger.
  Tensor stamped = victim.attack->apply_trigger(probe.image(0));
  std::vector<Tensor> panels{
      stamped.reshaped(Shape{spec.channels, spec.image_size, spec.image_size})};

  Table table({"class", "mask L1", "fooling rate", "role"});
  for (std::int64_t t = 0; t < spec.num_classes; ++t) {
    const TriggerEstimate est = usb.reverse_engineer_class(victim.network, probe, t);
    table.add_row({std::to_string(t), format_double(est.mask_l1),
                   format_double(est.fooling_rate),
                   t == target ? "backdoor target (trigger expected)" : "clean (class feature)"});
    Tensor panel(est.pattern.shape());
    const std::int64_t spatial = spec.image_size * spec.image_size;
    for (std::int64_t c = 0; c < spec.channels; ++c) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        panel[c * spatial + s] = est.pattern[c * spatial + s] * est.mask[s];
      }
    }
    panels.push_back(std::move(panel));
  }
  table.print();
  dump_strip(panels, "fig5_mnist_all_classes.pgm");
  return 0;
}
