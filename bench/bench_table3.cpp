// Table 3 — Stronger backdoor attacks on VGG-16 + CIFAR-10: clean, Latent
// Backdoor (4x4), Input-Aware Dynamic (full-image trigger).
//
// The paper's headline here: NC and TABOR detect zero IAD backdoors while
// USB finds all 15 with the correct target. See EXPERIMENTS.md for how this
// reproduction's IAD substitution shifts that differential.
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  const ExperimentScale scale = ExperimentScale::from_env();
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::cifar10_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kMiniVgg, AttackKind::kNone, 0, 0.0, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Latent Backdoor (4x4 trigger)", spec, Architecture::kMiniVgg,
                        AttackKind::kLatent, 4, 0.12, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Input Aware Dynamic (32x32 trigger)", spec, Architecture::kMiniVgg,
                        AttackKind::kIad, 32, 0.20, 300},
      scale, methods));

  print_detection_table(
      "Table 3: stronger attacks, CIFAR-10-like + MiniVgg (paper: VGG-16, 15 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
