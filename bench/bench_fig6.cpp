// Figure 6 — Reversed triggers from class 0 to 9, one row per method
// (NC / TABOR / USB), on a BadNet-backdoored MNIST Basic model.
#include <cstdio>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "fig_common.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  ExperimentScale scale = ExperimentScale::from_env();
  scale.epochs = std::max<std::int64_t>(scale.epochs, 5);  // BasicCnn trigger generalization
  const DatasetSpec spec = DatasetSpec::mnist_like();
  const std::int64_t target = 1;

  TrainedModel victim =
      badnet_victim(spec, Architecture::kBasicCnn, /*trigger=*/3, target, scale);
  const Dataset probe = make_probe(spec, 300);
  std::printf("Figure 6: reversed triggers for classes 0..9 (true target %lld); "
              "acc=%.1f%% ASR=%.1f%%\n\n",
              static_cast<long long>(target), 100.0F * victim.clean_accuracy,
              100.0F * victim.asr);

  NeuralCleanse nc{ReverseOptConfig{}};
  Tabor tabor{TaborConfig{}};
  UsbDetector usb{UsbConfig{}};

  struct Row {
    const char* name;
    Detector* detector;
  };
  Row rows[] = {{"NC", &nc}, {"TABOR", &tabor}, {"USB", &usb}};

  Table table({"method", "0", "1", "2", "3", "4", "5", "6", "7", "8", "9"});
  for (const Row& row : rows) {
    const DetectionReport report = row.detector->detect(victim.network, probe);
    std::vector<std::string> cells{row.name};
    std::vector<Tensor> panels;
    for (std::int64_t t = 0; t < spec.num_classes; ++t) {
      cells.push_back(format_double(report.per_class[static_cast<std::size_t>(t)].mask_l1, 1));
      panels.push_back(report.reversed_trigger(t));
    }
    table.add_row(cells);
    dump_strip(panels, std::string("fig6_") + row.name + "_classes.pgm");
  }
  std::printf("per-class reversed mask L1 (target column should be the low outlier):\n");
  table.print();
  return 0;
}
