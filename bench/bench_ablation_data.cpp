// Ablation 3 (DESIGN.md) — clean-data budget |X|.
//
// The paper uses 300 probe images and notes (appendix A.5) that this
// starves GTSRB's 43 classes (<10 images per class), explaining USB's extra
// Wrong cases there, with "add more data" as the stated fix. This bench
// sweeps |X| on both a 10-class and a 43-class victim.
#include <cstdio>

#include "core/usb.h"
#include "fig_common.h"
#include "utils/table.h"

namespace {

using namespace usb;
using namespace usb::figbench;

void sweep(const DatasetSpec& spec, Architecture arch, const char* tag,
           const ExperimentScale& scale) {
  TrainedModel victim = badnet_victim(spec, arch, /*trigger=*/3, /*target=*/0, scale);
  std::printf("%s (%lld classes): acc=%.1f%% ASR=%.1f%%\n", tag,
              static_cast<long long>(spec.num_classes), 100.0F * victim.clean_accuracy,
              100.0F * victim.asr);

  Table table({"|X|", "per-class images", "verdict", "target L1", "median L1"});
  for (const std::int64_t probe_size : {60L, 150L, 300L, 600L}) {
    const Dataset probe = make_probe(spec, probe_size);
    UsbDetector usb{UsbConfig{}};
    const DetectionReport report = usb.detect(victim.network, probe);
    table.add_row({std::to_string(probe_size),
                   std::to_string(probe_size / spec.num_classes),
                   report.verdict.backdoored ? "BACKDOORED" : "clean",
                   format_double(report.verdict.norms[0]),
                   format_double(median(report.verdict.norms))});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  const ExperimentScale scale = ExperimentScale::from_env();
  std::printf("Ablation: clean-data budget |X| for USB (paper: 300; appendix A.5)\n\n");
  sweep(DatasetSpec::cifar10_like(), Architecture::kMiniResNet, "CIFAR-10-like", scale);
  sweep(DatasetSpec::gtsrb_like(), Architecture::kMiniResNet, "GTSRB-like", scale);
  return 0;
}
