// Table 5 — MNIST (appendix A.2): clean, BadNet 2x2, BadNet 3x3 on the
// paper's Basic CNN family; 50 models per case at paper scale.
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  ExperimentScale scale = ExperimentScale::from_env();
  scale.epochs = std::max<std::int64_t>(scale.epochs, 5);  // BasicCnn trigger generalization
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::mnist_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kBasicCnn, AttackKind::kNone, 0, 0.0, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (2x2 trigger)", spec, Architecture::kBasicCnn,
                        AttackKind::kBadNet, 2, 0.20, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3x3 trigger)", spec, Architecture::kBasicCnn,
                        AttackKind::kBadNet, 3, 0.15, 300},
      scale, methods));

  print_detection_table(
      "Table 5: MNIST-like + BasicCnn (paper: 50 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
