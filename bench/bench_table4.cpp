// Table 4 — BadNet on VGG-16 + CIFAR-10 (appendix A.3): clean, 2x2, 3x3.
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  const ExperimentScale scale = ExperimentScale::from_env();
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::cifar10_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kMiniVgg, AttackKind::kNone, 0, 0.0, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (2x2 trigger)", spec, Architecture::kMiniVgg,
                        AttackKind::kBadNet, 2, 0.20, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3x3 trigger)", spec, Architecture::kMiniVgg,
                        AttackKind::kBadNet, 3, 0.15, 300},
      scale, methods));

  print_detection_table(
      "Table 4: CIFAR-10-like + MiniVgg (paper: VGG-16, 15 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
