// Figure 1 — "The random point is barely updated by NC."
//
// Four panels: a random trigger (NC's starting point), the NC-optimized
// pattern, the targeted UAP of a backdoored model, and the targeted UAP of
// a clean model. The quantitative claims behind the figure:
//   (1) NC's optimized pattern stays close to its random start
//       (high correlation / small L2 distance), and
//   (2) the backdoored model's UAP is markedly smaller than the clean
//       model's UAP toward the same class (the shortcut exists).
#include <cmath>
#include <cstdio>

#include "core/targeted_uap.h"
#include "defenses/masked_trigger.h"
#include "defenses/neural_cleanse.h"
#include "fig_common.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  const ExperimentScale scale = ExperimentScale::from_env();
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const std::int64_t target = 0;

  TrainedModel backdoored =
      badnet_victim(spec, Architecture::kMiniResNet, /*trigger=*/3, target, scale);
  ModelCaseSpec clean_spec;
  clean_spec.dataset = spec;
  clean_spec.arch = Architecture::kMiniResNet;
  clean_spec.attack.kind = AttackKind::kNone;
  clean_spec.scale = scale;
  TrainedModel clean = train_or_load(clean_spec);

  const Dataset probe = make_probe(spec, 300);
  std::printf("Figure 1: random start vs NC pattern vs targeted UAPs (target class %lld)\n",
              static_cast<long long>(target));
  std::printf("backdoored: acc=%.1f%% ASR=%.1f%% | clean: acc=%.1f%%\n\n",
              100.0F * backdoored.clean_accuracy, 100.0F * backdoored.asr,
              100.0F * clean.clean_accuracy);

  // Panel 1+2: NC's random starting pattern and its optimized pattern.
  Rng rng(hash_combine(99ULL, static_cast<std::uint64_t>(target)));  // NC's own init stream
  const MaskedTrigger random_start(spec.channels, spec.image_size, rng, 0.1F);
  const Tensor random_pattern = random_start.pattern();

  NeuralCleanse nc{ReverseOptConfig{}};
  const TriggerEstimate nc_estimate =
      nc.reverse_engineer_class(backdoored.network, probe, target);

  // Panel 3+4: targeted UAPs of the backdoored and the clean model.
  TargetedUapConfig uap_config;
  const TargetedUapResult uap_backdoored =
      targeted_uap(backdoored.network, probe, target, uap_config);
  const TargetedUapResult uap_clean = targeted_uap(clean.network, probe, target, uap_config);

  // Quantitative claim (1): the NC pattern barely moves from its start.
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (std::int64_t i = 0; i < random_pattern.numel(); ++i) {
    const double a = random_pattern[i] - 0.5;
    const double b = nc_estimate.pattern[i] - 0.5;
    dot += a * b;
    norm_a += a * a;
    norm_b += b * b;
  }
  const double correlation = dot / std::max(std::sqrt(norm_a * norm_b), 1e-9);

  Table table({"panel", "L1 norm", "L2 norm", "fooling rate"});
  table.add_row({"Random trigger (NC start)", format_double(random_pattern.abs_sum()),
                 format_double(random_pattern.l2_norm()), "-"});
  table.add_row({"NC optimized pattern", format_double(nc_estimate.pattern.abs_sum()),
                 format_double(nc_estimate.pattern.l2_norm()),
                 format_double(nc_estimate.fooling_rate)});
  table.add_row({"UAP (backdoored)", format_double(uap_backdoored.perturbation.abs_sum()),
                 format_double(uap_backdoored.perturbation.l2_norm()),
                 format_double(uap_backdoored.fooling_rate)});
  table.add_row({"UAP (clean)", format_double(uap_clean.perturbation.abs_sum()),
                 format_double(uap_clean.perturbation.l2_norm()),
                 format_double(uap_clean.fooling_rate)});
  table.print();
  std::printf("\ncorrelation(NC start pattern, NC optimized pattern) = %.3f"
              "  (paper: pattern barely updated)\n",
              correlation);
  std::printf("UAP L2 ratio backdoored/clean = %.3f  (paper: backdoored needs fewer "
              "perturbations)\n\n",
              uap_backdoored.perturbation.l2_norm() /
                  std::max(uap_clean.perturbation.l2_norm(), 1e-9F));

  dump_image(random_pattern, "fig1_random_trigger.ppm", false);
  dump_image(nc_estimate.pattern, "fig1_nc_pattern.ppm", false);
  const Tensor uap_b = uap_backdoored.perturbation.reshaped(
      Shape{spec.channels, spec.image_size, spec.image_size});
  const Tensor uap_c =
      uap_clean.perturbation.reshaped(Shape{spec.channels, spec.image_size, spec.image_size});
  Image norm_b_img = normalize_to_image(uap_b.data(), spec.channels, spec.image_size,
                                        spec.image_size);
  Image norm_c_img = normalize_to_image(uap_c.data(), spec.channels, spec.image_size,
                                        spec.image_size);
  write_image(norm_b_img, std::string(figbench::kFigureDir) + "/fig1_uap_backdoored.ppm");
  write_image(norm_c_img, std::string(figbench::kFigureDir) + "/fig1_uap_clean.ppm");
  std::printf("  wrote figures/fig1_uap_backdoored.ppm, figures/fig1_uap_clean.ppm\n");
  return 0;
}
