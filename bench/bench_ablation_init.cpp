// Ablation 1 (DESIGN.md) — UAP initialization vs random initialization.
//
// The paper's central design claim: starting Alg. 2 from the targeted UAP
// (which already rides the backdoor shortcut) beats the NC-style random
// start. This bench runs USB twice on the same victims — once as published,
// once with random_init=true (same loss, same optimizer, only the starting
// point differs) — and compares verdicts and target-class norms.
#include <cstdio>

#include "core/usb.h"
#include "fig_common.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  const ExperimentScale scale = ExperimentScale::from_env();
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset probe = make_probe(spec, 300);

  std::printf("Ablation: Alg. 2 initialization (UAP vs random), CIFAR-10-like MiniResNet\n\n");
  Table table({"victim", "variant", "verdict", "target L1", "median L1", "target/median"});

  for (const std::int64_t trigger_size : {2, 3}) {
    TrainedModel victim =
        badnet_victim(spec, Architecture::kMiniResNet, trigger_size, /*target=*/0, scale);
    const std::string victim_label =
        std::to_string(trigger_size) + "x" + std::to_string(trigger_size) + " BadNet";

    for (const bool random_init : {false, true}) {
      UsbConfig config;
      config.random_init = random_init;
      UsbDetector usb{config};
      const DetectionReport report = usb.detect(victim.network, probe);
      const double target_norm = report.verdict.norms[0];
      const double med = median(report.verdict.norms);
      table.add_row({victim_label, random_init ? "random init" : "UAP init (USB)",
                     report.verdict.backdoored ? "BACKDOORED" : "clean",
                     format_double(target_norm), format_double(med),
                     format_double(med > 0 ? target_norm / med : 0.0)});
    }
  }
  table.print();
  std::printf("\nLower target/median = sharper separation. The UAP start should match or beat\n"
              "the random start, with the gap widening on harder victims (paper Fig. 1, A.4).\n");
  return 0;
}
