// Figure 2 — Original vs reversed triggers, CIFAR-10 and ImageNet.
//
// One strip per dataset: [original trigger | NC | TABOR | USB], each panel
// the full-size trigger image pattern*mask. Norms and trigger-location
// overlap are printed so the visual story is auditable in text.
#include <cstdio>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "fig_common.h"
#include "utils/table.h"

namespace {

using namespace usb;
using namespace usb::figbench;

/// Fraction of reversed-mask mass inside the true trigger's bounding box.
double mask_overlap(const Tensor& mask, const BadNet& attack, std::int64_t trigger_size) {
  const std::int64_t size = mask.dim(0);
  double inside = 0.0;
  double total = 0.0;
  for (std::int64_t y = 0; y < size; ++y) {
    for (std::int64_t x = 0; x < size; ++x) {
      const double value = mask[y * size + x];
      total += value;
      if (y >= attack.position_y() && y < attack.position_y() + trigger_size &&
          x >= attack.position_x() && x < attack.position_x() + trigger_size) {
        inside += value;
      }
    }
  }
  return total > 0.0 ? inside / total : 0.0;
}

void run_dataset(const DatasetSpec& spec, Architecture arch, std::int64_t trigger_size,
                 std::int64_t probe_size, const std::string& tag,
                 const ExperimentScale& scale) {
  TrainedModel victim = badnet_victim(spec, arch, trigger_size, /*target=*/0, scale);
  const auto& badnet = dynamic_cast<const BadNet&>(*victim.attack);
  const Dataset probe = make_probe(spec, probe_size);

  std::printf("%s: acc=%.1f%% ASR=%.1f%%, true trigger %lldx%lld at (%lld,%lld)\n",
              tag.c_str(), 100.0F * victim.clean_accuracy, 100.0F * victim.asr,
              static_cast<long long>(trigger_size), static_cast<long long>(trigger_size),
              static_cast<long long>(badnet.position_y()),
              static_cast<long long>(badnet.position_x()));

  NeuralCleanse nc{ReverseOptConfig{}};
  Tabor tabor{TaborConfig{}};
  UsbDetector usb{UsbConfig{}};
  const TriggerEstimate nc_estimate = nc.reverse_engineer_class(victim.network, probe, 0);
  const TriggerEstimate tabor_estimate = tabor.reverse_engineer_class(victim.network, probe, 0);
  const TriggerEstimate usb_estimate = usb.reverse_engineer_class(victim.network, probe, 0);

  Table table({"panel", "mask L1", "overlap with true trigger"});
  auto trigger_of = [](const TriggerEstimate& est) {
    Tensor image(Shape{est.pattern.dim(0), est.pattern.dim(1), est.pattern.dim(2)});
    const std::int64_t spatial = est.pattern.dim(1) * est.pattern.dim(2);
    for (std::int64_t c = 0; c < est.pattern.dim(0); ++c) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        image[c * spatial + s] = est.pattern[c * spatial + s] * est.mask[s];
      }
    }
    return image;
  };
  table.add_row({"Original", "-", "1.00"});
  table.add_row({"NC", format_double(nc_estimate.mask_l1),
                 format_double(mask_overlap(nc_estimate.mask, badnet, trigger_size))});
  table.add_row({"TABOR", format_double(tabor_estimate.mask_l1),
                 format_double(mask_overlap(tabor_estimate.mask, badnet, trigger_size))});
  table.add_row({"USB", format_double(usb_estimate.mask_l1),
                 format_double(mask_overlap(usb_estimate.mask, badnet, trigger_size))});
  table.print();

  dump_strip({true_trigger_image(victim), trigger_of(nc_estimate), trigger_of(tabor_estimate),
              trigger_of(usb_estimate)},
             "fig2_" + tag + ".ppm");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  const ExperimentScale scale = ExperimentScale::from_env();
  std::printf("Figure 2: original vs reversed triggers (panels: original, NC, TABOR, USB)\n\n");
  run_dataset(DatasetSpec::cifar10_like(), Architecture::kMiniResNet, 3, 300, "cifar10", scale);
  run_dataset(DatasetSpec::imagenet_like(), Architecture::kMiniEffNet, 4, 500, "imagenet", scale);
  return 0;
}
