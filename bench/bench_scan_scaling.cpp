// Multi-class scan scaling: wall clock of a full K-class detect() as a
// function of scan-pool size, plus a single-thread feature matrix that
// isolates the speedup of each scan-level mechanism (shared-prefix caching
// and early-exit scheduling), with bit-identity checks throughout.
//
// Section "threads" is the ClassScanScheduler's contract made measurable:
// per-class reverse engineering fans out over the pool, so a K-class scan
// should approach a num_threads-fold speedup while producing the same
// DetectionReport bit for bit.
//
// Section "matrix" runs the K=10 synthetic USB detect() at one thread for
// every requested {prefix-cache, early-exit} combination and reports each
// run's speedup over the both-off baseline, so the two mechanisms'
// contributions land separately in the JSON. Contract checks: prefix-cache
// on/off must be bit-identical (early exit off), and early-exit runs must
// reach the same verdict.
//
// Section "service" is the DetectionService's cross-request fair-share
// contract made measurable: a small K=4 scan is submitted while a K=43 scan
// occupies the service's single round dispatcher, and the entry records the
// small scan's p50 submit-to-done latency plus two contract booleans —
// small_before_large (the small scan finished while the large one was still
// running, i.e. the global scheduler interleaved the two jobs' rounds
// instead of draining the large scan first) and identical (both reports are
// bit-identical to a direct detect()). check_regression.py hard-requires
// this entry.
//
// Usage:
//   bench_scan_scaling [OUT.json] [--prefix-cache=on|off|both]
//                      [--early-exit=on|off|both]
// The flags restrict the matrix axes (default both x both).
// Emits BENCH_scan_scaling.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "core/usb.h"
#include "fig_common.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "service/detection_service.h"
#include "service/worker_fleet.h"
#include "utils/fault_injection.h"
#include "utils/thread_pool.h"
#include "utils/timer.h"

namespace {

using namespace usb;

// The scan_server worker binary for the fleet sub-benchmark: env override
// first (ctest / CI), else next to this binary in the build tree.
std::string scan_server_path(const char* argv0) {
  if (const char* env = std::getenv("USB_SCAN_SERVER")) return env;
  const std::string self(argv0);
  const std::size_t slash = self.find_last_of('/');
  return (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
         "/scan_server";
}

bool reports_identical(const DetectionReport& a, const DetectionReport& b) {
  if (a.per_class.size() != b.per_class.size()) return false;
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    if (x.target_class != y.target_class || x.mask_l1 != y.mask_l1 ||
        x.final_loss != y.final_loss || x.fooling_rate != y.fooling_rate ||
        !x.pattern.equals(y.pattern) || !x.mask.equals(y.mask)) {
      return false;
    }
  }
  return a.verdict.backdoored == b.verdict.backdoored &&
         a.verdict.flagged_classes == b.verdict.flagged_classes &&
         a.verdict.norms == b.verdict.norms;
}

struct ScalingRow {
  std::string method;
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

struct MatrixRow {
  bool prefix_cache = false;
  bool early_exit = false;
  double seconds = 0.0;
  double speedup = 1.0;  // vs the both-off baseline
  bool identical = true;   // bit-identity vs baseline; only meaningful when checked
  bool identical_checked = false;  // the contract only promises it with early exit off
  bool same_verdict = true;
};

/// The K=10 matrix workload: refinement-heavy enough that early exit has
/// rounds to reclaim, with a real Alg. 1 crafting stage for the prefix
/// cache to share.
UsbConfig matrix_usb_config() {
  UsbConfig config;
  config.uap.max_passes = 1;
  config.uap.craft_size = 32;         // one craft batch: the v = 0 warm start covers it
  config.uap.deepfool.max_iterations = 2;  // warm start then covers half of Alg. 1
  config.refine_steps = 96;           // refinement-dominated, the regime early exit attacks
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  // The strict-parsing rule this bench introduced in PR 3 now lives in
  // figbench::BenchArgs, shared by every fig/table bench.
  figbench::BenchArgs args(argc, argv);
  const std::string json_path = args.take_positional().value_or("BENCH_scan_scaling.json");
  const std::vector<bool> prefix_axis = args.take_axis("prefix-cache", {false, true});
  const std::vector<bool> early_axis = args.take_axis("early-exit", {false, true});
  args.finish();

  // K = 10 candidate classes on a CIFAR-like synthetic probe.
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset probe = generate_dataset(spec, 128, 301);
  Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, 302);

  UsbConfig usb_config;
  usb_config.uap.max_passes = 1;
  usb_config.uap.craft_size = 64;
  usb_config.refine_steps = 12;

  ReverseOptConfig nc_config;
  nc_config.steps = 30;

  std::vector<ScalingRow> rows;
  std::printf("%-6s %8s %12s %10s %10s\n", "method", "threads", "seconds", "speedup",
              "identical");
  for (const std::string& method : {std::string("USB"), std::string("NC")}) {
    DetectionReport baseline;
    double baseline_seconds = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      Timer timer;
      DetectionReport report;
      if (method == "USB") {
        UsbConfig config = usb_config;
        config.scan_pool = &pool;
        report = UsbDetector(config).detect(model, probe);
      } else {
        ReverseOptConfig config = nc_config;
        config.scan_pool = &pool;
        report = NeuralCleanse(config).detect(model, probe);
      }
      ScalingRow row;
      row.method = method;
      row.threads = threads;
      row.seconds = timer.seconds();
      if (threads == 1) {
        baseline = report;
        baseline_seconds = row.seconds;
      } else {
        row.speedup = baseline_seconds / row.seconds;
        row.identical = reports_identical(baseline, report);
      }
      std::printf("%-6s %8d %12.3f %9.2fx %10s\n", row.method.c_str(), row.threads,
                  row.seconds, row.speedup, row.identical ? "yes" : "NO");
      rows.push_back(row);
    }
  }

  // ---- Feature matrix: one thread, each mechanism on/off separately. ----
  // Baseline semantics (both off) are always measured even when the flags
  // exclude that cell from the report, so speedups stay comparable.
  std::printf("\n%-6s %13s %11s %12s %10s %10s %13s\n", "method", "prefix-cache", "early-exit",
              "seconds", "speedup", "identical", "same-verdict");
  ThreadPool single(1);
  // Two timed repetitions per cell, keeping the min: the matrix gates CI, and
  // single-run wall clocks on a shared 1-core runner swing by 10-20%.
  constexpr int kMatrixReps = 2;
  const auto run_matrix_cell = [&](bool prefix_on, bool early_on, double& seconds) {
    UsbConfig config = matrix_usb_config();
    config.scan_pool = &single;
    config.share_prefix = prefix_on;
    config.early_exit.enabled = early_on;
    if (early_on) {
      config.early_exit.round_steps = 4;
      config.early_exit.min_rounds = 1;
      config.early_exit.margin = 0.25;
    }
    DetectionReport report;
    seconds = 0.0;
    for (int rep = 0; rep < kMatrixReps; ++rep) {
      Timer timer;
      report = UsbDetector(config).detect(model, probe);
      const double elapsed = timer.seconds();
      if (rep == 0 || elapsed < seconds) seconds = elapsed;
    }
    return report;
  };
  double baseline_seconds = 0.0;
  const DetectionReport matrix_baseline =
      run_matrix_cell(/*prefix_on=*/false, /*early_on=*/false, baseline_seconds);

  std::vector<MatrixRow> matrix;
  for (const bool prefix_on : prefix_axis) {
    for (const bool early_on : early_axis) {
      MatrixRow row;
      row.prefix_cache = prefix_on;
      row.early_exit = early_on;
      if (!prefix_on && !early_on) {
        row.seconds = baseline_seconds;
        row.identical_checked = true;  // trivially identical to itself
      } else {
        const DetectionReport report = run_matrix_cell(prefix_on, early_on, row.seconds);
        row.speedup = baseline_seconds / row.seconds;
        // Prefix caching alone promises bit-identity; early exit only
        // promises the verdict (it trades refinement budget for time), so
        // its rows carry no identity claim at all.
        if (!early_on) {
          row.identical = reports_identical(matrix_baseline, report);
          row.identical_checked = true;
        }
        row.same_verdict =
            report.verdict.backdoored == matrix_baseline.verdict.backdoored &&
            report.verdict.flagged_classes == matrix_baseline.verdict.flagged_classes;
      }
      std::printf("%-6s %13s %11s %12.3f %9.2fx %10s %13s\n", "USB",
                  row.prefix_cache ? "on" : "off", row.early_exit ? "on" : "off", row.seconds,
                  row.speedup,
                  row.identical_checked ? (row.identical ? "yes" : "NO") : "n/a",
                  row.same_verdict ? "yes" : "NO");
      matrix.push_back(row);
    }
  }

  // ---- Mixed-request fairness: the service's global class-job scheduler. ----
  // One round dispatcher, two admitted scans: without fair-share the K=43
  // scan would drain all its rounds before the K=4 scan's first, and the
  // small scan's latency would be the large scan's full wall clock.
  struct ServiceRow {
    double seconds = 0.0;  // p50 small-scan submit-to-done latency
    bool small_before_large = true;
    bool identical = true;
    // p50 solo-scan latency with an armed-but-never-hit deadline, relative
    // to the identical scan with no deadline, minus 1.0. The deadline seam
    // is a handful of steady_clock reads per stage boundary; the gate holds
    // this below 2%.
    double deadline_overhead = 0.0;
    // ModelStore economics of by-reference submission: hits/(hits+misses)
    // after N same-ref submits ((N-1)/N when sharing works), and the bytes
    // the submit-time deep clone would have cost minus what actually went
    // resident ((N-1) x model size when N submits share one instance).
    double model_store_hit_rate = 0.0;
    double submit_clone_bytes_saved = 0.0;
    // Crash resilience of the process-sharded fleet: fraction of
    // kill-a-worker-mid-scan reps whose scan still resolved kDone with a
    // report identical to direct detect() (hard 1.0 — re-dispatch must be
    // lossless), and the p50 seconds from SIGKILL to the slot's respawn
    // being live again (death detection + backoff + fork/exec).
    double fleet_redispatch_success_rate = 0.0;
    double fleet_respawn_p50 = 0.0;
  };
  ServiceRow service_row;
  // ---- Overload resilience: retries, shedding, health-snapshot cost. ----
  struct OverloadRow {
    double retry_seconds = 0.0;        // p50 submit-to-done WITH one injected retry
    double retry_success_rate = 0.0;   // fraction of faulted scans resolving kDone
    double shed_p50_latency = 0.0;     // p50 submit-to-kShed resolution latency
    double health_overhead = 0.0;      // solo p50 with a health() poller, minus 1
  };
  OverloadRow overload_row;
  {
    DatasetSpec large_spec;
    large_spec.name = "bench-scan-service-large";
    large_spec.channels = 1;
    large_spec.image_size = 16;
    large_spec.num_classes = 43;
    DatasetSpec small_spec = large_spec;
    small_spec.name = "bench-scan-service-small";
    small_spec.num_classes = 4;
    const ProbeKey large_key{large_spec, 32, 611};
    const ProbeKey small_key{small_spec, 32, 612};
    const Dataset large_probe = generate_dataset(large_spec, 32, 611);
    const Dataset small_probe = generate_dataset(small_spec, 32, 612);
    Network large_victim = make_network(Architecture::kBasicCnn, 1, 16, 43, 613);
    Network small_victim = make_network(Architecture::kBasicCnn, 1, 16, 4, 614);

    ReverseOptConfig service_nc;
    service_nc.steps = 6;
    const DetectionReport direct_large =
        NeuralCleanse(service_nc).detect(large_victim, large_probe);
    const DetectionReport direct_small =
        NeuralCleanse(service_nc).detect(small_victim, small_probe);

    DetectionServiceConfig service_config;
    service_config.scan_threads = 1;
    service_config.max_concurrent_scans = 2;
    service_config.round_dispatchers = 1;  // one crew both scans must share
    DetectionService service(service_config);

    constexpr int kServiceReps = 5;
    std::vector<double> latencies;
    latencies.reserve(kServiceReps);
    for (int rep = 0; rep < kServiceReps; ++rep) {
      ScanRequest large_request;
      large_request.model = &large_victim;
      large_request.detector = std::make_unique<NeuralCleanse>(service_nc);
      large_request.probe_key = large_key;
      const ScanHandle large_handle = service.submit(std::move(large_request));

      Timer latency;
      ScanRequest small_request;
      small_request.model = &small_victim;
      small_request.detector = std::make_unique<NeuralCleanse>(service_nc);
      small_request.probe_key = small_key;
      const ScanHandle small_handle = service.submit(std::move(small_request));
      const ScanOutcome& small_outcome = small_handle.wait();
      latencies.push_back(latency.seconds());

      // ~10x the small scan's work remains: the large scan can only have
      // finished by monopolizing the dispatcher and starving the small one.
      if (large_handle.poll() != ScanStatus::kRunning) {
        service_row.small_before_large = false;
      }
      const ScanOutcome& large_outcome = large_handle.wait();
      if (small_outcome.status != ScanStatus::kDone ||
          large_outcome.status != ScanStatus::kDone ||
          !reports_identical(direct_small, small_outcome.report) ||
          !reports_identical(direct_large, large_outcome.report)) {
        service_row.identical = false;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    service_row.seconds = latencies[latencies.size() / 2];

    // ---- Deadline bookkeeping overhead. ---------------------------------
    // Same small scan, solo on the service, with and without a 1-hour
    // deadline the scan never approaches. Reps interleave the two variants
    // (so frequency/cache drift hits both alike) and each rep times a pair
    // of back-to-back scans to lift the sample above scheduler noise.
    constexpr int kDeadlineReps = 9;
    constexpr int kScansPerRep = 2;
    std::vector<double> without_deadline;
    std::vector<double> with_deadline;
    auto run_small = [&](double deadline_seconds) {
      const Timer timer;
      for (int scan = 0; scan < kScansPerRep; ++scan) {
        ScanRequest request;
        request.model = &small_victim;
        request.detector = std::make_unique<NeuralCleanse>(service_nc);
        request.probe_key = small_key;
        request.options.deadline_seconds = deadline_seconds;
        // The handle must outlive the outcome reference: wait() returns
        // state the handle keeps alive, and a temporary handle dying at
        // the end of this statement leaves `outcome` dangling (observed as
        // freed-heap garbage in the report tensors on allocator reuse).
        const ScanHandle handle = service.submit(std::move(request));
        const ScanOutcome& outcome = handle.wait();
        if (outcome.status != ScanStatus::kDone ||
            !reports_identical(direct_small, outcome.report)) {
          service_row.identical = false;
        }
      }
      return timer.seconds();
    };
    for (int rep = 0; rep < kDeadlineReps; ++rep) {
      without_deadline.push_back(run_small(0.0));
      with_deadline.push_back(run_small(3600.0));
    }
    // Min-of-reps on both sides: the deadline seam costs well under 1%, and
    // on a shared 1-core runner the p50 of millisecond-scale pairs still
    // carries one-sided scheduler spikes several times that size — the
    // least-disturbed run of each variant is the honest comparison.
    const double base_best =
        *std::min_element(without_deadline.begin(), without_deadline.end());
    const double deadline_best =
        *std::min_element(with_deadline.begin(), with_deadline.end());
    service_row.deadline_overhead = base_best > 0 ? deadline_best / base_best - 1.0 : 0.0;

    // ---- ModelStore economics: by-reference submission. ------------------
    // The small victim is checkpointed once and submitted kRefSubmits times
    // BY REFERENCE through the same service. The store loads the file once
    // (one miss) and every later submit shares the resident instance, so
    // the hit rate is (N-1)/N and the submit-time deep clone disappears:
    // bytes saved = N x model size (the clones that were never made) minus
    // what actually went resident (1 x model size). The ref reports must
    // still be byte-identical to detect() — folded into `identical`.
    {
      const std::string ckpt_path = "/tmp/bench_scan_scaling_small.ckpt";
      save_checkpoint(small_victim, ckpt_path);
      const std::int64_t model_bytes = network_resident_bytes(small_victim);
      constexpr int kRefSubmits = 4;
      std::vector<ScanHandle> ref_handles;
      ref_handles.reserve(kRefSubmits);
      for (int i = 0; i < kRefSubmits; ++i) {
        ScanRequest request;
        request.model_ref = ModelRef::from_checkpoint(ckpt_path);
        request.detector = std::make_unique<NeuralCleanse>(service_nc);
        request.probe_key = small_key;
        ref_handles.push_back(service.submit(std::move(request)));
      }
      for (const ScanHandle& handle : ref_handles) {
        const ScanOutcome& outcome = handle.wait();
        if (outcome.status != ScanStatus::kDone ||
            !reports_identical(direct_small, outcome.report)) {
          service_row.identical = false;
        }
      }
      const ModelStore& store = service.model_store();
      const double lookups = static_cast<double>(store.hits() + store.misses());
      service_row.model_store_hit_rate =
          lookups > 0 ? static_cast<double>(store.hits()) / lookups : 0.0;
      service_row.submit_clone_bytes_saved =
          static_cast<double>(kRefSubmits) * static_cast<double>(model_bytes) -
          static_cast<double>(store.bytes_resident());
      std::remove(ckpt_path.c_str());
    }

    // ---- Transient-fault retry success rate. ----------------------------
    // Each rep arms exactly one injected throw at the next round stage; a
    // max_retries=2 budget must absorb it and the retried scan must still
    // be byte-identical to detect(). The rate is a hard 1.0 requirement in
    // check_regression.py; the p50 latency (seconds of the JSON row) tracks
    // what one retry + backoff costs end to end.
    constexpr int kRetryReps = 9;
    int retry_successes = 0;
    std::vector<double> retry_latencies;
    retry_latencies.reserve(kRetryReps);
    for (int rep = 0; rep < kRetryReps; ++rep) {
      fault::FaultSpec fault_spec;
      fault_spec.kind = fault::FaultSpec::Kind::kThrow;
      fault_spec.count = 1;
      fault::FaultRegistry::instance().arm("scan.round", fault_spec);
      ScanRequest request;
      request.model = &small_victim;
      request.detector = std::make_unique<NeuralCleanse>(service_nc);
      request.probe_key = small_key;
      request.options.max_retries = 2;
      request.options.retry_backoff_seconds = 0.001;
      const Timer timer;
      // Named handle: see the deadline block — a temporary would leave the
      // outcome reference dangling.
      const ScanHandle handle = service.submit(std::move(request));
      const ScanOutcome& outcome = handle.wait();
      retry_latencies.push_back(timer.seconds());
      if (outcome.status == ScanStatus::kDone && outcome.retries >= 1 &&
          reports_identical(direct_small, outcome.report)) {
        ++retry_successes;
      }
    }
    fault::FaultRegistry::instance().disarm_all();
    std::sort(retry_latencies.begin(), retry_latencies.end());
    overload_row.retry_seconds = retry_latencies[retry_latencies.size() / 2];
    overload_row.retry_success_rate =
        static_cast<double>(retry_successes) / static_cast<double>(kRetryReps);

    // ---- Shed resolution latency. ---------------------------------------
    // A dedicated single-slot service past its depth watermark: every rep's
    // submit breaches the watermark and sheds ITSELF synchronously, so the
    // submit-to-kShed latency is the full cost of rejecting work under
    // overload (clone + watermark sweep + resolution) — the number an
    // overloaded caller actually waits.
    {
      DetectionServiceConfig shed_config;
      shed_config.scan_threads = 1;
      shed_config.max_concurrent_scans = 1;
      shed_config.shed_queue_depth = 1;
      DetectionService shed_service(shed_config);
      std::promise<void> release;
      const std::shared_future<void> gate(release.get_future());
      auto small_request = [&](bool gated) {
        ScanRequest request;
        request.model = &small_victim;
        request.detector = std::make_unique<NeuralCleanse>(service_nc);
        request.probe_key = small_key;
        if (gated) {
          request.options.progress = [gate](std::int64_t, ClassScanEvent event, double) {
            if (event == ClassScanEvent::kFinalized) gate.wait();
          };
        }
        return request;
      };
      // Occupy the executor (gated at its first finalize) and the one
      // tolerated queue slot; every further submit is over the watermark.
      const ScanHandle blocker = shed_service.submit(small_request(/*gated=*/true));
      const ScanHandle filler = shed_service.submit(small_request(/*gated=*/false));
      constexpr int kShedReps = 9;
      std::vector<double> shed_latencies;
      shed_latencies.reserve(kShedReps);
      for (int rep = 0; rep < kShedReps; ++rep) {
        const Timer timer;
        const ScanHandle shed = shed_service.submit(small_request(/*gated=*/false));
        const double elapsed = timer.seconds();
        if (shed.poll() == ScanStatus::kShed) {
          shed_latencies.push_back(elapsed);
        }
      }
      release.set_value();
      if (shed_latencies.empty()) {
        service_row.identical = false;  // shedding never happened: contract broken
      } else {
        std::sort(shed_latencies.begin(), shed_latencies.end());
        overload_row.shed_p50_latency = shed_latencies[shed_latencies.size() / 2];
      }
      (void)blocker.wait();
      (void)filler.wait();
    }

    // ---- Health snapshot overhead. --------------------------------------
    // Solo-scan pairs with a monitoring thread polling health() at 100 Hz
    // (a realistic monitoring cadence; on a 1-core runner a tighter loop
    // measures context-switch preemption, not snapshot cost), interleaved
    // with unmonitored pairs so machine drift hits both alike. health() is
    // two mutex grabs plus a wait-free heartbeat sweep; the gate holds its
    // effect on scan latency below 2%. Min-of-reps on both sides: the p50
    // of millisecond-scale pairs on a shared 1-core runner still carries
    // one-sided scheduler spikes that would swamp a sub-1% effect.
    constexpr int kHealthReps = 9;
    std::vector<double> unmonitored;
    std::vector<double> monitored;
    for (int rep = 0; rep < kHealthReps; ++rep) {
      unmonitored.push_back(run_small(0.0));
      std::atomic<bool> stop_poller{false};
      std::thread poller([&] {
        while (!stop_poller.load(std::memory_order_relaxed)) {
          (void)service.health();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      });
      monitored.push_back(run_small(0.0));
      stop_poller.store(true, std::memory_order_relaxed);
      poller.join();
    }
    const double unmonitored_best = *std::min_element(unmonitored.begin(), unmonitored.end());
    const double monitored_best = *std::min_element(monitored.begin(), monitored.end());
    overload_row.health_overhead =
        unmonitored_best > 0 ? monitored_best / unmonitored_best - 1.0 : 0.0;

    // ---- Fleet crash re-dispatch. ---------------------------------------
    // A 2-worker process fleet scanning the small victim; each rep SIGKILLs
    // the worker holding the in-flight scan and times SIGKILL-to-respawn
    // (death detection + backoff + fork/exec). The killed scan must still
    // resolve kDone on the survivor with a report byte-identical to direct
    // detect() — re-dispatch is only safe because reports are deterministic,
    // so the success rate is a hard 1.0 in check_regression.py. The rate is
    // zeroed outright if no kill ever landed mid-scan (re-dispatch never
    // exercised) or any request got quarantined.
    {
      const std::string worker = scan_server_path(argv[0]);
      if (access(worker.c_str(), X_OK) != 0) {
        std::fprintf(stderr,
                     "bench_scan_scaling: worker binary %s missing; fleet metrics zeroed\n",
                     worker.c_str());
      } else {
        const std::string fleet_ckpt = "/tmp/bench_scan_scaling_fleet.ckpt";
        save_checkpoint(small_victim, fleet_ckpt);
        FleetConfig fleet_config;
        // --steps 6 matches service_nc: the worker's NC config must equal
        // the direct baseline's for byte-identity to be a fair check.
        fleet_config.worker_argv = {worker, "--steps", "6"};
        fleet_config.num_workers = 2;
        fleet_config.max_in_flight_per_worker = 2;
        fleet_config.heartbeat_interval_seconds = 0.05;
        fleet_config.respawn_backoff_initial_seconds = 0.02;
        WorkerFleet fleet(fleet_config);
        constexpr int kFleetReps = 5;
        int fleet_successes = 0;
        std::vector<double> respawn_latencies;
        respawn_latencies.reserve(kFleetReps);
        for (int rep = 0; rep < kFleetReps; ++rep) {
          wire::WireScanRequest request;
          request.model_ref = ModelRef::from_checkpoint(fleet_ckpt);
          request.probe_key = small_key;
          request.method = "NC";
          FleetHandle handle = fleet.submit(std::move(request));

          // Find the worker carrying the scan and SIGKILL it mid-flight.
          pid_t victim = -1;
          const auto hunt_deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(2);
          while (victim < 0 && std::chrono::steady_clock::now() < hunt_deadline) {
            for (const WorkerHealth& w : fleet.health().workers) {
              if (w.alive && w.in_flight > 0) victim = w.pid;
            }
            if (victim < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (victim > 0) {
            const std::int64_t respawns_before = fleet.health().respawns_total;
            const Timer respawn_timer;
            kill(victim, SIGKILL);
            const auto respawn_deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(10);
            while (fleet.health().respawns_total <= respawns_before &&
                   std::chrono::steady_clock::now() < respawn_deadline) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            if (fleet.health().respawns_total > respawns_before) {
              respawn_latencies.push_back(respawn_timer.seconds());
            }
          }
          const FleetOutcome& outcome = handle.wait();
          if (outcome.status == ScanStatus::kDone &&
              reports_identical(direct_small, outcome.report)) {
            ++fleet_successes;
          }
        }
        const FleetHealth final_health = fleet.health();
        service_row.fleet_redispatch_success_rate =
            (final_health.redispatches_total > 0 && final_health.requests_quarantined == 0)
                ? static_cast<double>(fleet_successes) / static_cast<double>(kFleetReps)
                : 0.0;
        if (!respawn_latencies.empty()) {
          std::sort(respawn_latencies.begin(), respawn_latencies.end());
          service_row.fleet_respawn_p50 = respawn_latencies[respawn_latencies.size() / 2];
        }
        fleet.shutdown();
        std::remove(fleet_ckpt.c_str());
      }
    }
  }
  std::printf("\n%-6s %13s %20s %10s %18s %14s %14s\n", "method", "small-p50-s",
              "small-before-large", "identical", "deadline-overhead", "store-hit-rate",
              "clone-KB-saved");
  std::printf("%-6s %13.3f %20s %10s %17.1f%% %14.2f %14.1f\n", "NC", service_row.seconds,
              service_row.small_before_large ? "yes" : "NO",
              service_row.identical ? "yes" : "NO", service_row.deadline_overhead * 100.0,
              service_row.model_store_hit_rate,
              service_row.submit_clone_bytes_saved / 1024.0);
  std::printf("\n%-6s %14s %19s %14s %17s\n", "method", "retry-p50-s", "retry-success-rate",
              "shed-p50-ms", "health-overhead");
  std::printf("%-6s %14.3f %19.2f %14.3f %16.1f%%\n", "NC", overload_row.retry_seconds,
              overload_row.retry_success_rate, overload_row.shed_p50_latency * 1e3,
              overload_row.health_overhead * 100.0);
  std::printf("\n%-6s %24s %18s\n", "method", "fleet-redispatch-rate", "respawn-p50-ms");
  std::printf("%-6s %24.2f %18.1f\n", "NC", service_row.fleet_redispatch_success_rate,
              service_row.fleet_respawn_p50 * 1e3);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_scan_scaling: cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  {
    out << "[\n";
    char line[768];
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::snprintf(line, sizeof(line),
                    "  {\"section\": \"threads\", \"method\": \"%s\", \"threads\": %d, "
                    "\"seconds\": %.4f, \"speedup\": %.3f, \"identical\": %s},\n",
                    rows[i].method.c_str(), rows[i].threads, rows[i].seconds, rows[i].speedup,
                    rows[i].identical ? "true" : "false");
      out << line;
    }
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      // Early-exit rows make no identity claim: the field is null so the
      // gate never "verifies" a property the bench did not measure.
      std::snprintf(line, sizeof(line),
                    "  {\"section\": \"matrix\", \"method\": \"USB\", \"threads\": 1, "
                    "\"prefix_cache\": \"%s\", \"early_exit\": \"%s\", \"seconds\": %.4f, "
                    "\"speedup\": %.3f, \"identical\": %s, \"same_verdict\": %s}%s\n",
                    matrix[i].prefix_cache ? "on" : "off", matrix[i].early_exit ? "on" : "off",
                    matrix[i].seconds, matrix[i].speedup,
                    matrix[i].identical_checked ? (matrix[i].identical ? "true" : "false")
                                                : "null",
                    matrix[i].same_verdict ? "true" : "false", ",");
      out << line;
    }
    std::snprintf(line, sizeof(line),
                  "  {\"section\": \"service\", \"method\": \"NC\", \"threads\": 1, "
                  "\"scenario\": \"mixed\", \"seconds\": %.4f, "
                  "\"small_before_large\": %s, \"identical\": %s, "
                  "\"deadline_miss_p50_overhead\": %.4f, "
                  "\"model_store_hit_rate\": %.4f, "
                  "\"submit_clone_bytes_saved\": %.0f, "
                  "\"fleet_redispatch_success_rate\": %.3f, "
                  "\"fleet_respawn_p50_seconds\": %.4f},\n",
                  service_row.seconds, service_row.small_before_large ? "true" : "false",
                  service_row.identical ? "true" : "false", service_row.deadline_overhead,
                  service_row.model_store_hit_rate, service_row.submit_clone_bytes_saved,
                  service_row.fleet_redispatch_success_rate, service_row.fleet_respawn_p50);
    out << line;
    std::snprintf(line, sizeof(line),
                  "  {\"section\": \"overload\", \"method\": \"NC\", \"threads\": 1, "
                  "\"scenario\": \"overload\", \"seconds\": %.4f, "
                  "\"retry_success_rate\": %.3f, \"shed_p50_latency_seconds\": %.6f, "
                  "\"health_snapshot_overhead\": %.4f}\n",
                  overload_row.retry_seconds, overload_row.retry_success_rate,
                  overload_row.shed_p50_latency, overload_row.health_overhead);
    out << line;
    out << "]\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (const ScalingRow& row : rows) {
    if (!row.identical) return 1;  // determinism is part of the contract
  }
  for (const MatrixRow& row : matrix) {
    if ((row.identical_checked && !row.identical) || !row.same_verdict) return 1;
  }
  if (!service_row.small_before_large || !service_row.identical) return 1;
  // By-ref submission contract: the store must actually have shared (a
  // zero hit rate means every submit reloaded) and must have cost less
  // memory than clone-on-submit would have.
  if (service_row.model_store_hit_rate <= 0.0 || service_row.submit_clone_bytes_saved <= 0.0) {
    return 1;
  }
  // Overload contract: every faulted scan must retry to success, and the
  // shed path must actually have shed (a zero p50 means it never fired).
  if (overload_row.retry_success_rate != 1.0 || overload_row.shed_p50_latency <= 0.0) return 1;
  // Fleet contract: every killed-worker scan must re-dispatch to a
  // byte-identical kDone, and a respawn must actually have been timed (a
  // zero p50 means no kill ever landed or the worker binary was missing).
  if (service_row.fleet_redispatch_success_rate != 1.0 || service_row.fleet_respawn_p50 <= 0.0) {
    return 1;
  }
  return 0;
}
