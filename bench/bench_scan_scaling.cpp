// Multi-class scan scaling: wall clock of a full K-class detect() as a
// function of scan-pool size, with a bit-identity check between the runs.
//
// This is the ClassScanScheduler's contract made measurable: per-class
// reverse engineering fans out over the pool, so a K-class scan should
// approach a num_threads-fold speedup while producing the same
// DetectionReport bit for bit. Emits BENCH_scan_scaling.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/usb.h"
#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "nn/models.h"
#include "utils/thread_pool.h"
#include "utils/timer.h"

namespace {

using namespace usb;

bool reports_identical(const DetectionReport& a, const DetectionReport& b) {
  if (a.per_class.size() != b.per_class.size()) return false;
  for (std::size_t t = 0; t < a.per_class.size(); ++t) {
    const TriggerEstimate& x = a.per_class[t];
    const TriggerEstimate& y = b.per_class[t];
    if (x.target_class != y.target_class || x.mask_l1 != y.mask_l1 ||
        x.final_loss != y.final_loss || x.fooling_rate != y.fooling_rate ||
        !x.pattern.equals(y.pattern) || !x.mask.equals(y.mask)) {
      return false;
    }
  }
  return a.verdict.backdoored == b.verdict.backdoored &&
         a.verdict.flagged_classes == b.verdict.flagged_classes &&
         a.verdict.norms == b.verdict.norms;
}

struct ScalingRow {
  std::string method;
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_scan_scaling.json";

  // K = 10 candidate classes on a CIFAR-like synthetic probe.
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset probe = generate_dataset(spec, 128, 301);
  Network model = make_network(Architecture::kBasicCnn, spec.channels, spec.image_size,
                               spec.num_classes, 302);

  UsbConfig usb_config;
  usb_config.uap.max_passes = 1;
  usb_config.uap.craft_size = 64;
  usb_config.refine_steps = 12;

  ReverseOptConfig nc_config;
  nc_config.steps = 30;

  std::vector<ScalingRow> rows;
  std::printf("%-6s %8s %12s %10s %10s\n", "method", "threads", "seconds", "speedup",
              "identical");
  for (const std::string& method : {std::string("USB"), std::string("NC")}) {
    DetectionReport baseline;
    double baseline_seconds = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      Timer timer;
      DetectionReport report;
      if (method == "USB") {
        UsbConfig config = usb_config;
        config.scan_pool = &pool;
        report = UsbDetector(config).detect(model, probe);
      } else {
        ReverseOptConfig config = nc_config;
        config.scan_pool = &pool;
        report = NeuralCleanse(config).detect(model, probe);
      }
      ScalingRow row;
      row.method = method;
      row.threads = threads;
      row.seconds = timer.seconds();
      if (threads == 1) {
        baseline = report;
        baseline_seconds = row.seconds;
      } else {
        row.speedup = baseline_seconds / row.seconds;
        row.identical = reports_identical(baseline, report);
      }
      std::printf("%-6s %8d %12.3f %9.2fx %10s\n", row.method.c_str(), row.threads,
                  row.seconds, row.speedup, row.identical ? "yes" : "NO");
      rows.push_back(row);
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_scan_scaling: cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  {
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  {\"method\": \"%s\", \"threads\": %d, \"seconds\": %.4f, "
                    "\"speedup\": %.3f, \"identical\": %s}%s\n",
                    rows[i].method.c_str(), rows[i].threads, rows[i].seconds, rows[i].speedup,
                    rows[i].identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
      out << line;
    }
    out << "]\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  for (const ScalingRow& row : rows) {
    if (!row.identical) return 1;  // determinism is part of the contract
  }
  return 0;
}
