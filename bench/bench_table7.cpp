// Table 7 — Running time of backdoor detection per class (EfficientNet on
// the ImageNet substitute).
//
// The paper reports GPU minutes per class: NC ~23m, TABOR ~35-48m, USB
// ~4.5m, with USB's targeted-UAP cost excluded because one UAP serves all
// models of an architecture (Section 4.4). We report the same accounting on
// CPU seconds: NC total, TABOR total, USB refine-only (UAP amortized), and
// additionally USB's one-off UAP cost so the amortization claim is
// auditable. Two time columns close the table: "total" sums the per-class
// wall clocks (the paper's accounting — work performed), while "wall" is
// DetectionReport::wall_seconds, the end-to-end scan time a caller actually
// waits; under the parallel scan the per-class sum double-counts concurrent
// classes, so the two diverge by up to the pool width.
#include <cstdio>

#include "core/usb.h"
#include "fig_common.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "exp/experiment.h"
#include "utils/table.h"
#include "utils/timer.h"

int main(int argc, char** argv) {
  using namespace usb;
  figbench::BenchArgs(argc, argv).finish();  // no arguments; typos abort
  const ExperimentScale scale = ExperimentScale::from_env();
  const MethodBudget budget = MethodBudget::from_scale(scale);
  const DatasetSpec spec = DatasetSpec::imagenet_like();

  ModelCaseSpec model_spec;
  model_spec.dataset = spec;
  model_spec.arch = Architecture::kMiniEffNet;
  model_spec.attack.kind = AttackKind::kBadNet;
  model_spec.attack.trigger_size = 4;
  model_spec.attack.poison_rate = 0.10;
  model_spec.scale = scale;
  TrainedModel model = train_or_load(model_spec);
  const Dataset probe = make_probe(spec, 500);

  std::printf("Table 7: per-class detection time, MiniEffNet on ImageNet-like 48x48\n");
  std::printf("victim: BadNet 4x4 (scaled 20x20), acc=%.2f%%, ASR=%.2f%%\n\n",
              100.0F * model.clean_accuracy, 100.0F * model.asr);

  Table table(
      {"Method", "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "total", "wall"});

  auto add_row = [&table](const std::string& method, const std::vector<double>& seconds,
                          double wall_seconds) {
    std::vector<std::string> row{method};
    double total = 0.0;
    for (const double s : seconds) {
      row.push_back(format_minutes_seconds(s));
      total += s;
    }
    row.push_back(format_minutes_seconds(total));
    row.push_back(format_minutes_seconds(wall_seconds));
    table.add_row(row);
  };

  {
    NeuralCleanse nc{[&] {
      ReverseOptConfig config;
      config.steps = budget.nc_steps;
      return config;
    }()};
    const DetectionReport report = nc.detect(model.network, probe);
    add_row("NC", report.per_class_seconds, report.wall_seconds);
  }
  {
    Tabor tabor{[&] {
      TaborConfig config;
      config.base.steps = budget.tabor_steps;
      return config;
    }()};
    const DetectionReport report = tabor.detect(model.network, probe);
    add_row("TABOR", report.per_class_seconds, report.wall_seconds);
  }

  // USB with the paper's amortized accounting: craft the UAPs once (timed
  // separately), then per-class time covers only the Alg. 2 refinement.
  UsbConfig usb_config;
  usb_config.refine_steps = budget.usb_refine_steps;
  usb_config.uap.max_passes = budget.uap_max_passes;
  UsbDetector usb{usb_config};

  std::vector<Tensor> uaps;
  double uap_total = 0.0;
  for (std::int64_t t = 0; t < spec.num_classes; ++t) {
    const Timer timer;
    uaps.push_back(targeted_uap(model.network, probe, t, usb_config.uap).perturbation);
    uap_total += timer.seconds();
  }
  {
    std::vector<double> seconds;
    const Timer usb_wall;  // sequential loop: wall == per-class sum here
    for (std::int64_t t = 0; t < spec.num_classes; ++t) {
      const Timer timer;
      (void)usb.reverse_engineer_class(model.network, probe, t,
                                       uaps[static_cast<std::size_t>(t)]);
      seconds.push_back(timer.seconds());
    }
    add_row("USB", seconds, usb_wall.seconds());
  }
  table.print();
  std::printf(
      "\nUSB one-off targeted-UAP generation (amortized across models of the same\n"
      "architecture, Section 4.4): %s total for all 10 classes.\n",
      format_minutes_seconds(uap_total).c_str());
  return 0;
}
