// Figure 4 — Original vs reversed triggers for the 2x2 and 3x3 cases
// (paper appendix visualization). One strip per trigger size:
// [original | NC | TABOR | USB].
#include <cstdio>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "fig_common.h"
#include "utils/table.h"

namespace {

using namespace usb;
using namespace usb::figbench;

Tensor trigger_of(const TriggerEstimate& est) {
  Tensor image(est.pattern.shape());
  const std::int64_t spatial = est.pattern.dim(1) * est.pattern.dim(2);
  for (std::int64_t c = 0; c < est.pattern.dim(0); ++c) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      image[c * spatial + s] = est.pattern[c * spatial + s] * est.mask[s];
    }
  }
  return image;
}

void run_case(std::int64_t trigger_size, const ExperimentScale& scale) {
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  TrainedModel victim =
      badnet_victim(spec, Architecture::kMiniResNet, trigger_size, /*target=*/0, scale);
  const Dataset probe = make_probe(spec, 300);

  NeuralCleanse nc{ReverseOptConfig{}};
  Tabor tabor{TaborConfig{}};
  UsbDetector usb{UsbConfig{}};
  const TriggerEstimate nc_est = nc.reverse_engineer_class(victim.network, probe, 0);
  const TriggerEstimate tb_est = tabor.reverse_engineer_class(victim.network, probe, 0);
  const TriggerEstimate us_est = usb.reverse_engineer_class(victim.network, probe, 0);

  std::printf("%lldx%lld trigger: mask L1 -> NC %.2f, TABOR %.2f, USB %.2f\n",
              static_cast<long long>(trigger_size), static_cast<long long>(trigger_size),
              nc_est.mask_l1, tb_est.mask_l1, us_est.mask_l1);
  dump_strip({true_trigger_image(victim), trigger_of(nc_est), trigger_of(tb_est),
              trigger_of(us_est)},
             "fig4_trigger" + std::to_string(trigger_size) + ".ppm");
}

}  // namespace

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  const ExperimentScale scale = ExperimentScale::from_env();
  std::printf("Figure 4: original vs reversed triggers, 2x2 and 3x3 "
              "(panels: original, NC, TABOR, USB)\n\n");
  run_case(2, scale);
  run_case(3, scale);
  return 0;
}
