// Ablation 2 (DESIGN.md) — composition of the Alg. 2 loss
//   L = CE - SSIM + w*|mask|_1.
//
// Variants: full loss, no SSIM term, no L1 term (the appendix A.6 setting).
// Expectation: dropping L1 inflates all masks (norm statistic loses
// contrast), dropping SSIM lets the blend drift from the clean image.
#include <cstdio>

#include "core/usb.h"
#include "fig_common.h"
#include "metrics/ssim.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  const ExperimentScale scale = ExperimentScale::from_env();
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const Dataset probe = make_probe(spec, 300);

  TrainedModel victim =
      badnet_victim(spec, Architecture::kMiniResNet, /*trigger=*/3, /*target=*/0, scale);
  std::printf("Ablation: Alg. 2 loss terms on a 3x3 BadNet MiniResNet victim "
              "(acc=%.1f%%, ASR=%.1f%%)\n\n",
              100.0F * victim.clean_accuracy, 100.0F * victim.asr);

  struct Variant {
    const char* name;
    float ssim_weight;
    bool use_l1;
  };
  const Variant variants[] = {{"full (CE - SSIM + L1)", 1.0F, true},
                              {"no SSIM (CE + L1)", 0.0F, true},
                              {"no L1 (CE - SSIM)", 1.0F, false}};

  Table table({"variant", "verdict", "target L1", "median L1", "mean SSIM(x, x') @ target"});
  for (const Variant& variant : variants) {
    UsbConfig config;
    config.ssim_weight = variant.ssim_weight;
    config.use_l1_term = variant.use_l1;
    UsbDetector usb{config};
    const DetectionReport report = usb.detect(victim.network, probe);

    // Structural similarity of the blended probe under the target trigger.
    const TriggerEstimate& est = report.per_class[0];
    const Dataset sample = probe.take(32);
    Tensor blended = sample.images();
    const std::int64_t spatial = spec.image_size * spec.image_size;
    for (std::int64_t n = 0; n < sample.size(); ++n) {
      for (std::int64_t c = 0; c < spec.channels; ++c) {
        float* row = blended.raw() + (n * spec.channels + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          row[s] = row[s] * (1.0F - est.mask[s]) + est.pattern[c * spatial + s] * est.mask[s];
        }
      }
    }
    table.add_row({variant.name, report.verdict.backdoored ? "BACKDOORED" : "clean",
                   format_double(report.verdict.norms[0]),
                   format_double(median(report.verdict.norms)),
                   format_double(ssim(sample.images(), blended))});
  }
  table.print();
  return 0;
}
