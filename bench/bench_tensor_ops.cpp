// Micro-benchmarks (google-benchmark) for the kernels everything else sits
// on: matmul, conv2d forward/backward, SSIM with gradient, and a full
// MiniResNet forward/backward step.
#include <benchmark/benchmark.h>

#include "metrics/ssim.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace {

using namespace usb;

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = 0.0F, float hi = 1.0F) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor(Shape{n, n}, 1, -1.0F, 1.0F);
  const Tensor b = random_tensor(Shape{n, n}, 2, -1.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  const Tensor x = random_tensor(Shape{batch, 8, 32, 32}, 3);
  const Tensor w = random_tensor(spec.weight_shape(), 4, -0.2F, 0.2F);
  const Tensor bias = random_tensor(Shape{16}, 5, -0.1F, 0.1F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_forward(x, w, bias, spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  const Tensor x = random_tensor(Shape{batch, 8, 32, 32}, 6);
  const Tensor w = random_tensor(spec.weight_shape(), 7, -0.2F, 0.2F);
  const Tensor dy = random_tensor(Shape{batch, 16, 32, 32}, 8, -1.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_backward(x, w, dy, spec));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(64);

void BM_SsimWithGradient(benchmark::State& state) {
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 9);
  const Tensor y = random_tensor(Shape{16, 3, 32, 32}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssim_with_gradient(x, y));
  }
}
BENCHMARK(BM_SsimWithGradient);

void BM_MiniResNetTrainStep(benchmark::State& state) {
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 11);
  net.set_training(true);
  const Tensor x = random_tensor(Shape{32, 3, 32, 32}, 12);
  std::vector<std::int64_t> labels(32);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<std::int64_t>(i % 10);
  SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    const Tensor logits = net.forward(x);
    benchmark::DoNotOptimize(loss.forward(logits, labels));
    benchmark::DoNotOptimize(net.backward(loss.backward()));
    net.zero_grad();
  }
}
BENCHMARK(BM_MiniResNetTrainStep);

void BM_MiniResNetInputGradOnly(benchmark::State& state) {
  // The detection configuration: eval mode, parameter gradients off.
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 13);
  net.set_training(false);
  net.set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 14);
  TargetedCrossEntropy loss;
  for (auto _ : state) {
    const Tensor logits = net.forward(x);
    benchmark::DoNotOptimize(loss.forward(logits, 0));
    benchmark::DoNotOptimize(net.backward(loss.backward()));
  }
}
BENCHMARK(BM_MiniResNetInputGradOnly);

}  // namespace

BENCHMARK_MAIN();
