// Micro-benchmarks for the kernels everything else sits on: the blocked
// GEMM core behind the matmul family, conv2d forward/backward (shapes
// matched to the CNN architectures in src/nn/models.cpp), the elementwise
// kernel suite (dispatched vs portable variants, GB/s), SSIM with gradient,
// a full MiniResNet forward/backward step, and the steady-state
// alloc-pressure of a real refinement step (Tensor heap allocations per
// step after warm-up — the zero-allocation contract).
//
// Results go to stdout as a table AND to BENCH_tensor_ops.json (op, shape,
// ns/iter, items/s, GFLOP/s, plus gb_per_s / speedup_vs_portable on the
// ew_* entries and allocs_per_step on the alloc-pressure entry) so
// successive PRs can diff the perf trajectory mechanically;
// bench/check_regression.py gates CI on it against
// bench/baseline/BENCH_tensor_ops.json — the ew_* and refine_step_allocs
// entries (and their extra fields) are hard-required there. Pass a path
// argument to redirect the JSON.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "defenses/neural_cleanse.h"
#include "defenses/scan_plan.h"
#include "fig_common.h"
#include "metrics/ssim.h"
#include "nn/checkpoint.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "tensor/elementwise.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace {

using namespace usb;

struct BenchResult {
  std::string op;
  std::string shape;
  std::int64_t iterations = 0;
  double ns_per_iter = 0.0;
  double items_per_second = 0.0;  // 0 when the op has no item count
  double gflops = 0.0;            // 0 when the op has no flop count
  double gb_per_s = 0.0;          // >0 only on elementwise entries
  double speedup_vs_portable = 0.0;  // >0 only on elementwise entries
  double allocs_per_step = -1.0;     // >=0 only on the alloc-pressure entry
};

// Prevents the optimizer from deleting a benchmarked expression's result.
template <typename T>
void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Runs `body` until ~min_seconds of wall clock is spent (at least min_iters
/// iterations), after one untimed warmup call. `items_per_iter` doubles as
/// the flop count per iteration when `is_flops` is set.
BenchResult run_benchmark(const std::string& op, const std::string& shape,
                          const std::function<void()>& body, double items_per_iter = 0.0,
                          bool is_flops = false, double min_seconds = 0.25,
                          std::int64_t min_iters = 3) {
  body();  // warmup
  std::int64_t iters = 0;
  const Timer timer;
  while (iters < min_iters || timer.seconds() < min_seconds) {
    body();
    ++iters;
  }
  const double elapsed = timer.seconds();
  BenchResult result;
  result.op = op;
  result.shape = shape;
  result.iterations = iters;
  result.ns_per_iter = elapsed * 1e9 / static_cast<double>(iters);
  if (items_per_iter > 0.0) {
    result.items_per_second = items_per_iter * static_cast<double>(iters) / elapsed;
    if (is_flops) result.gflops = result.items_per_second / 1e9;
  }
  return result;
}

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = 0.0F, float hi = 1.0F) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
  return t;
}

BenchResult bench_matmul(std::int64_t n) {
  const Tensor a = random_tensor(Shape{n, n}, 1, -1.0F, 1.0F);
  const Tensor b = random_tensor(Shape{n, n}, 2, -1.0F, 1.0F);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  return run_benchmark("matmul", std::to_string(n) + "x" + std::to_string(n),
                       [&] { do_not_optimize(matmul(a, b)); }, flops, /*is_flops=*/true);
}

BenchResult bench_matmul_transpose_b(std::int64_t n) {
  // The Linear-forward orientation: A (N,K) x B^T with B stored (N,K).
  const Tensor a = random_tensor(Shape{n, n}, 21, -1.0F, 1.0F);
  const Tensor b = random_tensor(Shape{n, n}, 22, -1.0F, 1.0F);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  return run_benchmark("matmul_transpose_b", std::to_string(n) + "x" + std::to_string(n),
                       [&] { do_not_optimize(matmul_transpose_b(a, b)); }, flops,
                       /*is_flops=*/true);
}

double conv_flops(const Conv2dSpec& spec, std::int64_t batch, std::int64_t image) {
  const std::int64_t out = spec.out_size(image);
  return 2.0 * static_cast<double>(batch) * static_cast<double>(spec.out_channels) *
         static_cast<double>(out * out) *
         static_cast<double>((spec.in_channels / spec.groups) * spec.kernel * spec.kernel);
}

Conv2dSpec make_spec(std::int64_t in, std::int64_t out, std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding;
  return spec;
}

std::string conv_shape_label(const Conv2dSpec& spec, std::int64_t batch, std::int64_t image) {
  char label[128];
  std::snprintf(label, sizeof(label), "b%lldx%lldx%lldx%lld", static_cast<long long>(batch),
                static_cast<long long>(spec.in_channels), static_cast<long long>(image),
                static_cast<long long>(image));
  return label;
}

BenchResult bench_conv_forward(const std::string& name, const Conv2dSpec& spec,
                               std::int64_t batch, std::int64_t image, std::uint64_t seed) {
  const Tensor x = random_tensor(Shape{batch, spec.in_channels, image, image}, seed);
  const Tensor w = random_tensor(spec.weight_shape(), seed + 1, -0.2F, 0.2F);
  const Tensor bias = random_tensor(Shape{spec.out_channels}, seed + 2, -0.1F, 0.1F);
  return run_benchmark(name, conv_shape_label(spec, batch, image),
                       [&] { do_not_optimize(conv2d_forward(x, w, bias, spec)); },
                       conv_flops(spec, batch, image), /*is_flops=*/true);
}

BenchResult bench_conv_backward(const std::string& name, const Conv2dSpec& spec,
                                std::int64_t batch, std::int64_t image, std::uint64_t seed) {
  const Tensor x = random_tensor(Shape{batch, spec.in_channels, image, image}, seed);
  const Tensor w = random_tensor(spec.weight_shape(), seed + 1, -0.2F, 0.2F);
  const std::int64_t out = spec.out_size(image);
  const Tensor dy =
      random_tensor(Shape{batch, spec.out_channels, out, out}, seed + 2, -1.0F, 1.0F);
  // dX and dW each cost roughly one forward; count both.
  return run_benchmark(name, conv_shape_label(spec, batch, image),
                       [&] { do_not_optimize(conv2d_backward(x, w, dy, spec)); },
                       2.0 * conv_flops(spec, batch, image), /*is_flops=*/true);
}

// ---- Elementwise kernel suite -------------------------------------------
//
// Each entry runs the dispatched kernel (AVX2 where the CPU has it) and the
// forced-portable variant on the same L2-resident buffers, reporting GB/s
// of the dispatched form and its speedup over portable. The repetition
// count keeps one iteration well above the regression gate's noise floor.

constexpr std::int64_t kEwElems = 16384;  // 64 KiB per buffer: L2-resident
constexpr std::int64_t kEwReps = 256;     // kernel calls per timed iteration

struct EwBuffers {
  Tensor a, b, c, d;
  EwBuffers()
      : a(Shape{kEwElems}), b(Shape{kEwElems}), c(Shape{kEwElems}), d(Shape{kEwElems}) {
    Rng rng(1234);
    for (std::int64_t i = 0; i < kEwElems; ++i) {
      a[i] = rng.uniform_float(-1.0F, 1.0F);
      b[i] = rng.uniform_float(0.001F, 0.999F);
      c[i] = rng.uniform_float(0.0F, 1.0F);
      d[i] = rng.uniform_float(0.0F, 0.1F);
    }
  }
};

BenchResult bench_elementwise(const std::string& name, double bytes_per_element,
                              const std::function<void()>& body) {
  char shape[32];
  std::snprintf(shape, sizeof(shape), "%lldx%lld", static_cast<long long>(kEwReps),
                static_cast<long long>(kEwElems));
  const double elements = static_cast<double>(kEwElems) * static_cast<double>(kEwReps);
  BenchResult dispatched = run_benchmark(name, shape, body, elements);
  dispatched.gb_per_s = dispatched.items_per_second * bytes_per_element / 1e9;
  if (ew::variant_available(ew::Variant::kAvx2) &&
      ew::active_variant() == ew::Variant::kAvx2) {
    ew::force_variant(ew::Variant::kPortable);
    const BenchResult portable = run_benchmark(name, shape, body, elements);
    ew::force_variant(std::nullopt);
    dispatched.speedup_vs_portable = portable.ns_per_iter / dispatched.ns_per_iter;
  } else {
    dispatched.speedup_vs_portable = 1.0;  // portable IS the dispatched kernel
  }
  return dispatched;
}

std::vector<BenchResult> bench_elementwise_suite() {
  static EwBuffers buffers;  // static: keep alive across the timed lambdas
  Tensor out(Shape{kEwElems});
  Tensor out2(Shape{kEwElems});
  std::vector<BenchResult> results;

  // relu_fwd: read x, write y -> 8 bytes/element.
  results.push_back(bench_elementwise("ew_relu_fwd", 8.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::relu_fwd(buffers.a.raw(), out.raw(), kEwElems);
    }
    do_not_optimize(out.raw());
  }));
  // sigmoid_bwd: read s + dy, write dx -> 12 bytes/element.
  results.push_back(bench_elementwise("ew_sigmoid_bwd", 12.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::sigmoid_bwd(buffers.b.raw(), buffers.a.raw(), out.raw(), kEwElems);
    }
    do_not_optimize(out.raw());
  }));
  // axpy: read src, read+write dst -> 12 bytes/element.
  results.push_back(bench_elementwise("ew_axpy", 12.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::axpy(out.raw(), buffers.a.raw(), 0.001F, kEwElems);
    }
    do_not_optimize(out.raw());
  }));
  // blend: read x + m + p, write out -> 16 bytes/element.
  results.push_back(bench_elementwise("ew_blend", 16.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::blend(buffers.a.raw(), buffers.b.raw(), buffers.c.raw(), out.raw(), kEwElems);
    }
    do_not_optimize(out.raw());
  }));
  // clamp: read+write dst -> 8 bytes/element.
  results.push_back(bench_elementwise("ew_clamp", 8.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::clamp(out.raw(), -0.5F, 0.5F, kEwElems);
    }
    do_not_optimize(out.raw());
  }));
  // adam: read grad, read+write m/v/value -> 28 bytes/element. The moment
  // buffers evolve across reps; that only changes values, not cost.
  const ew::AdamParams adam{0.001F, 0.5F, 0.9F, 1e-8F, 0.5F, 0.19F};
  results.push_back(bench_elementwise("ew_adam_update", 28.0, [&] {
    for (std::int64_t r = 0; r < kEwReps; ++r) {
      ew::adam_update(out.raw(), buffers.a.raw(), out2.raw(), buffers.d.raw(), kEwElems, adam);
    }
    do_not_optimize(out.raw());
  }));
  return results;
}

// ---- Steady-state alloc pressure ----------------------------------------
//
// Runs the REAL per-class NC refinement task (plan()->make_task) and counts
// Tensor heap allocations per steady-state step after warm-up. The contract
// is exactly zero; check_regression.py fails CI on anything else. ns/iter
// is the per-step wall clock, gated like any kernel.
BenchResult bench_refine_step_alloc_pressure() {
  DatasetSpec spec;
  spec.name = "bench-alloc";
  spec.channels = 1;
  spec.image_size = 16;
  spec.num_classes = 6;
  const Dataset probe = generate_dataset(spec, 64, 7);
  Network model = make_network(Architecture::kBasicCnn, 1, 16, spec.num_classes, 3);

  ReverseOptConfig config;
  config.steps = 1 << 20;  // never exhausts during the bench
  config.batch_size = 16;
  const NeuralCleanse detector(config);
  const ScanPlan plan = detector.plan();
  const ClassScanScheduler scheduler(plan.options);
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  const ClassScanJob job = scheduler.make_job(0, cache, nullptr);
  Network clone = clone_network(model);
  const auto task = plan.make_task(clone, probe, job);
  (void)task->run_steps(8);  // warm-up: arena slots, loader batch, caches

  const std::uint64_t allocs_before = tensor_heap_allocations();
  std::int64_t steps = 0;
  const Timer timer;
  while (steps < 32 || timer.seconds() < 0.25) steps += task->run_steps(8);
  const double elapsed = timer.seconds();
  const std::uint64_t allocs = tensor_heap_allocations() - allocs_before;

  BenchResult result;
  result.op = "refine_step_allocs";
  result.shape = "nc_basiccnn_16x1x16x16";
  result.iterations = steps;
  result.ns_per_iter = elapsed * 1e9 / static_cast<double>(steps);
  result.items_per_second = static_cast<double>(steps) / elapsed;
  result.allocs_per_step = static_cast<double>(allocs) / static_cast<double>(steps);
  return result;
}

BenchResult bench_ssim_with_gradient() {
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 9);
  const Tensor y = random_tensor(Shape{16, 3, 32, 32}, 10);
  return run_benchmark("ssim_with_gradient", "16x3x32x32",
                       [&] { do_not_optimize(ssim_with_gradient(x, y)); });
}

BenchResult bench_miniresnet_train_step() {
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 11);
  net.set_training(true);
  const Tensor x = random_tensor(Shape{32, 3, 32, 32}, 12);
  std::vector<std::int64_t> labels(32);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<std::int64_t>(i % 10);
  SoftmaxCrossEntropy loss;
  return run_benchmark("miniresnet_train_step", "32x3x32x32", [&] {
    const Tensor logits = net.forward(x);
    do_not_optimize(loss.forward(logits, labels));
    do_not_optimize(net.backward(loss.backward()));
    net.zero_grad();
  });
}

BenchResult bench_miniresnet_input_grad_only() {
  // The detection configuration: eval mode, parameter gradients off.
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 13);
  net.set_training(false);
  net.set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 14);
  TargetedCrossEntropy loss;
  return run_benchmark("miniresnet_input_grad_only", "16x3x32x32", [&] {
    const Tensor logits = net.forward(x);
    do_not_optimize(loss.forward(logits, 0));
    do_not_optimize(net.backward(loss.backward()));
  });
}

bool write_json(const std::vector<BenchResult>& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_tensor_ops: cannot open " << path << " for writing\n";
    return false;
  }
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    // std::string assembly (not a fixed buffer): snprintf returns would-be
    // lengths on truncation, so offset arithmetic over a char array would
    // overflow the moment an op/shape name outgrows it.
    char number[256];
    std::string line = "  {\"op\": \"" + r.op + "\", \"shape\": \"" + r.shape + "\"";
    std::snprintf(number, sizeof(number),
                  ", \"iterations\": %lld, \"ns_per_iter\": %.1f, "
                  "\"items_per_second\": %.1f, \"gflops\": %.3f",
                  static_cast<long long>(r.iterations), r.ns_per_iter, r.items_per_second,
                  r.gflops);
    line += number;
    if (r.gb_per_s > 0.0) {
      std::snprintf(number, sizeof(number),
                    ", \"gb_per_s\": %.3f, \"speedup_vs_portable\": %.3f", r.gb_per_s,
                    r.speedup_vs_portable);
      line += number;
    }
    if (r.allocs_per_step >= 0.0) {
      std::snprintf(number, sizeof(number), ", \"allocs_per_step\": %.3f", r.allocs_per_step);
      line += number;
    }
    line += i + 1 < results.size() ? "},\n" : "}\n";
    out << line;
  }
  out << "]\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  usb::figbench::BenchArgs args(argc, argv);
  const std::string json_path = args.take_positional().value_or("BENCH_tensor_ops.json");
  args.finish();

  std::vector<BenchResult> results;
  for (const std::int64_t n : {64, 128, 256, 512}) results.push_back(bench_matmul(n));
  results.push_back(bench_matmul_transpose_b(256));

  // Legacy shapes (kept for cross-PR trajectory continuity).
  const Conv2dSpec legacy = make_spec(8, 16, 3, 1, 1);
  for (const std::int64_t b : {16, 64}) {
    results.push_back(bench_conv_forward("conv2d_forward", legacy, b, 32, 3));
  }
  for (const std::int64_t b : {16, 64}) {
    results.push_back(bench_conv_backward("conv2d_backward", legacy, b, 32, 6));
  }

  // Shapes matched to the CNN architectures in src/nn/models.cpp.
  results.push_back(
      bench_conv_forward("conv_basiccnn_conv1", make_spec(3, 16, 5, 1, 0), 32, 32, 100));
  results.push_back(
      bench_conv_forward("conv_basiccnn_conv2", make_spec(16, 32, 5, 1, 0), 32, 14, 110));
  results.push_back(
      bench_conv_forward("conv_resnet_stem", make_spec(3, 8, 3, 1, 1), 32, 32, 120));
  results.push_back(
      bench_conv_forward("conv_vgg_stack2", make_spec(8, 16, 3, 1, 1), 32, 16, 130));

  for (BenchResult& r : bench_elementwise_suite()) results.push_back(std::move(r));
  results.push_back(bench_refine_step_alloc_pressure());

  results.push_back(bench_ssim_with_gradient());
  results.push_back(bench_miniresnet_train_step());
  results.push_back(bench_miniresnet_input_grad_only());

  std::printf("%-28s %-22s %10s %14s %16s %10s %8s %8s %8s\n", "op", "shape", "iters", "ns/iter",
              "items/s", "GFLOP/s", "GB/s", "spdup", "allocs");
  for (const BenchResult& r : results) {
    std::printf("%-28s %-22s %10lld %14.1f %16.1f %10.2f %8.2f %8.2f %8.2f\n", r.op.c_str(),
                r.shape.c_str(), static_cast<long long>(r.iterations), r.ns_per_iter,
                r.items_per_second, r.gflops, r.gb_per_s, r.speedup_vs_portable,
                r.allocs_per_step);
  }
  if (!write_json(results, json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
