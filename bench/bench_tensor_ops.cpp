// Micro-benchmarks for the kernels everything else sits on: matmul, conv2d
// forward/backward, SSIM with gradient, and a full MiniResNet
// forward/backward step.
//
// Results go to stdout as a table AND to BENCH_tensor_ops.json (op, shape,
// ns/iter, items/s) so successive PRs can diff the perf trajectory
// mechanically. Pass a path argument to redirect the JSON.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/ssim.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace {

using namespace usb;

struct BenchResult {
  std::string op;
  std::string shape;
  std::int64_t iterations = 0;
  double ns_per_iter = 0.0;
  double items_per_second = 0.0;  // 0 when the op has no item count
};

// Prevents the optimizer from deleting a benchmarked expression's result.
template <typename T>
void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Runs `body` until ~min_seconds of wall clock is spent (at least min_iters
/// iterations), after one untimed warmup call.
BenchResult run_benchmark(const std::string& op, const std::string& shape,
                          const std::function<void()>& body, double items_per_iter = 0.0,
                          double min_seconds = 0.25, std::int64_t min_iters = 3) {
  body();  // warmup
  std::int64_t iters = 0;
  const Timer timer;
  while (iters < min_iters || timer.seconds() < min_seconds) {
    body();
    ++iters;
  }
  const double elapsed = timer.seconds();
  BenchResult result;
  result.op = op;
  result.shape = shape;
  result.iterations = iters;
  result.ns_per_iter = elapsed * 1e9 / static_cast<double>(iters);
  if (items_per_iter > 0.0) {
    result.items_per_second = items_per_iter * static_cast<double>(iters) / elapsed;
  }
  return result;
}

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = 0.0F, float hi = 1.0F) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_float(lo, hi);
  return t;
}

BenchResult bench_matmul(std::int64_t n) {
  const Tensor a = random_tensor(Shape{n, n}, 1, -1.0F, 1.0F);
  const Tensor b = random_tensor(Shape{n, n}, 2, -1.0F, 1.0F);
  return run_benchmark("matmul", std::to_string(n) + "x" + std::to_string(n),
                       [&] { do_not_optimize(matmul(a, b)); },
                       /*items_per_iter=*/2.0 * static_cast<double>(n) * static_cast<double>(n) *
                           static_cast<double>(n));
}

Conv2dSpec bench_conv_spec() {
  Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  return spec;
}

BenchResult bench_conv2d_forward(std::int64_t batch) {
  const Conv2dSpec spec = bench_conv_spec();
  const Tensor x = random_tensor(Shape{batch, 8, 32, 32}, 3);
  const Tensor w = random_tensor(spec.weight_shape(), 4, -0.2F, 0.2F);
  const Tensor bias = random_tensor(Shape{16}, 5, -0.1F, 0.1F);
  return run_benchmark("conv2d_forward", "b" + std::to_string(batch) + "x8x32x32",
                       [&] { do_not_optimize(conv2d_forward(x, w, bias, spec)); });
}

BenchResult bench_conv2d_backward(std::int64_t batch) {
  const Conv2dSpec spec = bench_conv_spec();
  const Tensor x = random_tensor(Shape{batch, 8, 32, 32}, 6);
  const Tensor w = random_tensor(spec.weight_shape(), 7, -0.2F, 0.2F);
  const Tensor dy = random_tensor(Shape{batch, 16, 32, 32}, 8, -1.0F, 1.0F);
  return run_benchmark("conv2d_backward", "b" + std::to_string(batch) + "x8x32x32",
                       [&] { do_not_optimize(conv2d_backward(x, w, dy, spec)); });
}

BenchResult bench_ssim_with_gradient() {
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 9);
  const Tensor y = random_tensor(Shape{16, 3, 32, 32}, 10);
  return run_benchmark("ssim_with_gradient", "16x3x32x32",
                       [&] { do_not_optimize(ssim_with_gradient(x, y)); });
}

BenchResult bench_miniresnet_train_step() {
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 11);
  net.set_training(true);
  const Tensor x = random_tensor(Shape{32, 3, 32, 32}, 12);
  std::vector<std::int64_t> labels(32);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<std::int64_t>(i % 10);
  SoftmaxCrossEntropy loss;
  return run_benchmark("miniresnet_train_step", "32x3x32x32", [&] {
    const Tensor logits = net.forward(x);
    do_not_optimize(loss.forward(logits, labels));
    do_not_optimize(net.backward(loss.backward()));
    net.zero_grad();
  });
}

BenchResult bench_miniresnet_input_grad_only() {
  // The detection configuration: eval mode, parameter gradients off.
  Network net = make_network(Architecture::kMiniResNet, 3, 32, 10, 13);
  net.set_training(false);
  net.set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{16, 3, 32, 32}, 14);
  TargetedCrossEntropy loss;
  return run_benchmark("miniresnet_input_grad_only", "16x3x32x32", [&] {
    const Tensor logits = net.forward(x);
    do_not_optimize(loss.forward(logits, 0));
    do_not_optimize(net.backward(loss.backward()));
  });
}

bool write_json(const std::vector<BenchResult>& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_tensor_ops: cannot open " << path << " for writing\n";
    return false;
  }
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "  {\"op\": \"%s\", \"shape\": \"%s\", \"iterations\": %lld, "
                  "\"ns_per_iter\": %.1f, \"items_per_second\": %.1f}%s\n",
                  r.op.c_str(), r.shape.c_str(), static_cast<long long>(r.iterations),
                  r.ns_per_iter, r.items_per_second, i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "]\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_tensor_ops.json";

  std::vector<BenchResult> results;
  for (const std::int64_t n : {64, 128, 256}) results.push_back(bench_matmul(n));
  for (const std::int64_t b : {16, 64}) results.push_back(bench_conv2d_forward(b));
  for (const std::int64_t b : {16, 64}) results.push_back(bench_conv2d_backward(b));
  results.push_back(bench_ssim_with_gradient());
  results.push_back(bench_miniresnet_train_step());
  results.push_back(bench_miniresnet_input_grad_only());

  std::printf("%-28s %-14s %10s %14s %16s\n", "op", "shape", "iters", "ns/iter", "items/s");
  for (const BenchResult& r : results) {
    std::printf("%-28s %-14s %10lld %14.1f %16.1f\n", r.op.c_str(), r.shape.c_str(),
                static_cast<long long>(r.iterations), r.ns_per_iter, r.items_per_second);
  }
  if (!write_json(results, json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
