// Figure 3 — The 2x2 trigger case where NC/TABOR capture a class feature
// instead of the backdoor trigger, while USB localizes the true patch.
//
// Quantified as the fraction of reversed-mask mass inside the true trigger
// box, for each method, on a CIFAR-10 MiniResNet victim with a 2x2 trigger.
#include <cstdio>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "fig_common.h"
#include "utils/table.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  using namespace usb::figbench;
  const ExperimentScale scale = ExperimentScale::from_env();
  const DatasetSpec spec = DatasetSpec::cifar10_like();
  const std::int64_t trigger_size = 2;

  TrainedModel victim =
      badnet_victim(spec, Architecture::kMiniResNet, trigger_size, /*target=*/0, scale);
  const auto& badnet = dynamic_cast<const BadNet&>(*victim.attack);
  const Dataset probe = make_probe(spec, 300);

  std::printf("Figure 3: 2x2 trigger at (%lld,%lld); acc=%.1f%% ASR=%.1f%%\n\n",
              static_cast<long long>(badnet.position_y()),
              static_cast<long long>(badnet.position_x()), 100.0F * victim.clean_accuracy,
              100.0F * victim.asr);

  NeuralCleanse nc{ReverseOptConfig{}};
  Tabor tabor{TaborConfig{}};
  UsbDetector usb{UsbConfig{}};

  struct Entry {
    const char* name;
    TriggerEstimate estimate;
  };
  Entry entries[] = {{"NC", nc.reverse_engineer_class(victim.network, probe, 0)},
                     {"TABOR", tabor.reverse_engineer_class(victim.network, probe, 0)},
                     {"USB", usb.reverse_engineer_class(victim.network, probe, 0)}};

  Table table({"method", "mask L1", "in-trigger mass", "peak inside box?"});
  std::vector<Tensor> panels{true_trigger_image(victim)};
  for (const Entry& entry : entries) {
    const Tensor& mask = entry.estimate.mask;
    const std::int64_t size = mask.dim(0);
    double inside = 0.0;
    double total = 0.0;
    std::int64_t peak_y = 0;
    std::int64_t peak_x = 0;
    float peak = -1.0F;
    for (std::int64_t y = 0; y < size; ++y) {
      for (std::int64_t x = 0; x < size; ++x) {
        const float value = mask[y * size + x];
        total += value;
        if (value > peak) {
          peak = value;
          peak_y = y;
          peak_x = x;
        }
        if (y >= badnet.position_y() && y < badnet.position_y() + trigger_size &&
            x >= badnet.position_x() && x < badnet.position_x() + trigger_size) {
          inside += value;
        }
      }
    }
    const bool peak_inside = peak_y >= badnet.position_y() &&
                             peak_y < badnet.position_y() + trigger_size &&
                             peak_x >= badnet.position_x() &&
                             peak_x < badnet.position_x() + trigger_size;
    table.add_row({entry.name, format_double(entry.estimate.mask_l1),
                   format_double(total > 0 ? inside / total : 0.0),
                   peak_inside ? "yes" : "no"});

    Tensor panel(Shape{spec.channels, size, size});
    const std::int64_t spatial = size * size;
    for (std::int64_t c = 0; c < spec.channels; ++c) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        panel[c * spatial + s] = entry.estimate.pattern[c * spatial + s] * mask[s];
      }
    }
    panels.push_back(std::move(panel));
  }
  table.print();
  dump_strip(panels, "fig3_reversed_triggers.ppm");
  return 0;
}
