// Table 6 — GTSRB (43 classes, appendix A.5): clean, BadNet 2x2, 3x3.
//
// The paper's observation: with 43 classes and only 300 probe images
// (<10 per class), all methods degrade — USB yields more Wrong/missed
// cases here than on MNIST/CIFAR. bench_ablation_data quantifies the probe
// budget effect directly.
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  ExperimentScale scale = ExperimentScale::from_env();
  // 43 classes need proportionally more data and epochs than the 10-class
  // defaults or the victims never converge (~100 images/class minimum).
  scale.train_size = std::max<std::int64_t>(scale.train_size, 4300);
  scale.epochs = std::max<std::int64_t>(scale.epochs, 6);
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::gtsrb_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kMiniResNet, AttackKind::kNone, 0, 0.0, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (2x2 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 2, 0.20, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3x3 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 3, 0.15, 300},
      scale, methods));

  print_detection_table(
      "Table 6: GTSRB-like (43 classes) + MiniResNet (paper: 15 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
