// Shared plumbing for the figure-reproduction benches: strict command-line
// handling, victim construction through the model zoo (cached across
// benches), PPM dumping, and terminal ASCII previews so figure content is
// visible in bench_output.txt.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "attacks/badnet.h"
#include "exp/model_zoo.h"
#include "utils/image_io.h"
#include "utils/serialize.h"

namespace usb::figbench {

/// Strict bench argument handling, ported from bench_scan_scaling (PR 3)
/// so every fig/table bench shares one rule: flags use --name=value syntax
/// and must be declared via take_flag/take_axis; positionals must be
/// claimed via take_positional; anything left when finish() runs — an
/// unknown flag, a typo, an extra positional — aborts with exit code 2
/// instead of being silently ignored.
///
///   BenchArgs args(argc, argv);
///   const std::string json = args.take_positional().value_or("OUT.json");
///   const std::vector<bool> axis = args.take_axis("early-exit", {false, true});
///   args.finish();
class BenchArgs {
 public:
  BenchArgs(int argc, char** argv) : program_(argc > 0 ? argv[0] : "bench") {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    consumed_.assign(args_.size(), false);
  }

  /// Consumes --name=value; returns the value when the flag is present.
  [[nodiscard]] std::optional<std::string> take_flag(const std::string& name) {
    const std::string prefix = "--" + name + "=";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!consumed_[i] && args_[i].compare(0, prefix.size(), prefix) == 0) {
        consumed_[i] = true;
        return args_[i].substr(prefix.size());
      }
    }
    return std::nullopt;
  }

  /// Consumes an on|off|both matrix-axis flag (the bench_scan_scaling
  /// convention): on -> {true}, off -> {false}, both -> {false, true}.
  [[nodiscard]] std::vector<bool> take_axis(const std::string& name, std::vector<bool> fallback) {
    const std::optional<std::string> value = take_flag(name);
    if (!value.has_value()) return fallback;
    if (*value == "on") return {true};
    if (*value == "off") return {false};
    if (*value == "both") return {false, true};
    std::fprintf(stderr, "%s: bad value in --%s=%s (want on|off|both)\n", program_.c_str(),
                 name.c_str(), value->c_str());
    std::exit(2);
  }

  /// Consumes the next unclaimed positional (non --) argument.
  [[nodiscard]] std::optional<std::string> take_positional() {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!consumed_[i] && args_[i].compare(0, 2, "--") != 0) {
        consumed_[i] = true;
        return args_[i];
      }
    }
    return std::nullopt;
  }

  /// Call after every take_*: rejects whatever was not claimed.
  void finish() const {
    bool bad = false;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (consumed_[i]) continue;
      const bool is_flag = args_[i].compare(0, 2, "--") == 0;
      std::fprintf(stderr, "%s: unknown %s %s\n", program_.c_str(),
                   is_flag ? "flag" : "argument", args_[i].c_str());
      bad = true;
    }
    if (bad) std::exit(2);
  }

 private:
  std::string program_;
  std::vector<std::string> args_;
  std::vector<bool> consumed_;
};

inline const char* kFigureDir = "figures";

/// Saves a CHW tensor in [0,1] as PPM/PGM under figures/ and prints a small
/// ASCII rendering.
inline void dump_image(const Tensor& chw, const std::string& name, bool print_ascii = true) {
  ensure_directory(kFigureDir);
  Image image;
  image.channels = chw.dim(0);
  image.height = chw.dim(1);
  image.width = chw.dim(2);
  image.pixels.assign(chw.data().begin(), chw.data().end());
  const std::string path = std::string(kFigureDir) + "/" + name;
  write_image(image, path);
  std::printf("  wrote %s\n", path.c_str());
  if (print_ascii) {
    for (const std::string& row : ascii_art(image, 32)) std::printf("    %s\n", row.c_str());
  }
}

/// Saves several same-sized CHW tensors as one horizontal strip.
inline void dump_strip(const std::vector<Tensor>& images, const std::string& name) {
  ensure_directory(kFigureDir);
  std::vector<Image> converted;
  converted.reserve(images.size());
  for (const Tensor& chw : images) {
    Image image;
    image.channels = chw.dim(0);
    image.height = chw.dim(1);
    image.width = chw.dim(2);
    image.pixels.assign(chw.data().begin(), chw.data().end());
    converted.push_back(std::move(image));
  }
  const std::string path = std::string(kFigureDir) + "/" + name;
  write_image_strip(converted, path);
  std::printf("  wrote %s (%zu panels)\n", path.c_str(), images.size());
}

/// Trains (or loads) one BadNet victim through the model zoo.
inline TrainedModel badnet_victim(const DatasetSpec& spec, Architecture arch,
                                  std::int64_t trigger_size, std::int64_t target,
                                  const ExperimentScale& scale, std::int64_t model_index = 0) {
  ModelCaseSpec model_spec;
  model_spec.dataset = spec;
  model_spec.arch = arch;
  model_spec.attack.kind = AttackKind::kBadNet;
  model_spec.attack.trigger_size = trigger_size;
  model_spec.attack.target_class = target;
  model_spec.attack.poison_rate = 0.15;
  model_spec.model_index = model_index;
  model_spec.scale = scale;
  return train_or_load(model_spec);
}

/// Ground-truth trigger image of a (re)constructible BadNet attack.
inline Tensor true_trigger_image(const TrainedModel& model) {
  const auto* badnet = dynamic_cast<const BadNet*>(model.attack.get());
  if (badnet == nullptr) {
    throw std::runtime_error("true_trigger_image: victim is not a BadNet attack");
  }
  return badnet->trigger_image();
}

}  // namespace usb::figbench
