// Shared plumbing for the figure-reproduction benches: victim construction
// through the model zoo (cached across benches), PPM dumping, and terminal
// ASCII previews so figure content is visible in bench_output.txt.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/badnet.h"
#include "exp/model_zoo.h"
#include "utils/image_io.h"
#include "utils/serialize.h"

namespace usb::figbench {

inline const char* kFigureDir = "figures";

/// Saves a CHW tensor in [0,1] as PPM/PGM under figures/ and prints a small
/// ASCII rendering.
inline void dump_image(const Tensor& chw, const std::string& name, bool print_ascii = true) {
  ensure_directory(kFigureDir);
  Image image;
  image.channels = chw.dim(0);
  image.height = chw.dim(1);
  image.width = chw.dim(2);
  image.pixels.assign(chw.data().begin(), chw.data().end());
  const std::string path = std::string(kFigureDir) + "/" + name;
  write_image(image, path);
  std::printf("  wrote %s\n", path.c_str());
  if (print_ascii) {
    for (const std::string& row : ascii_art(image, 32)) std::printf("    %s\n", row.c_str());
  }
}

/// Saves several same-sized CHW tensors as one horizontal strip.
inline void dump_strip(const std::vector<Tensor>& images, const std::string& name) {
  ensure_directory(kFigureDir);
  std::vector<Image> converted;
  converted.reserve(images.size());
  for (const Tensor& chw : images) {
    Image image;
    image.channels = chw.dim(0);
    image.height = chw.dim(1);
    image.width = chw.dim(2);
    image.pixels.assign(chw.data().begin(), chw.data().end());
    converted.push_back(std::move(image));
  }
  const std::string path = std::string(kFigureDir) + "/" + name;
  write_image_strip(converted, path);
  std::printf("  wrote %s (%zu panels)\n", path.c_str(), images.size());
}

/// Trains (or loads) one BadNet victim through the model zoo.
inline TrainedModel badnet_victim(const DatasetSpec& spec, Architecture arch,
                                  std::int64_t trigger_size, std::int64_t target,
                                  const ExperimentScale& scale, std::int64_t model_index = 0) {
  ModelCaseSpec model_spec;
  model_spec.dataset = spec;
  model_spec.arch = arch;
  model_spec.attack.kind = AttackKind::kBadNet;
  model_spec.attack.trigger_size = trigger_size;
  model_spec.attack.target_class = target;
  model_spec.attack.poison_rate = 0.15;
  model_spec.model_index = model_index;
  model_spec.scale = scale;
  return train_or_load(model_spec);
}

/// Ground-truth trigger image of a (re)constructible BadNet attack.
inline Tensor true_trigger_image(const TrainedModel& model) {
  const auto* badnet = dynamic_cast<const BadNet*>(model.attack.get());
  if (badnet == nullptr) {
    throw std::runtime_error("true_trigger_image: victim is not a BadNet attack");
  }
  return badnet->trigger_image();
}

}  // namespace usb::figbench
