#!/usr/bin/env python3
"""Gate kernel benchmarks against a committed baseline.

Usage:
    check_regression.py CURRENT.json BASELINE.json [--threshold 1.25]

Compares ns_per_iter for every (op, shape) pair present in both files and
exits non-zero if any op got slower than baseline * threshold. Speedups are
reported but never fail. Ops present in only one file are listed as warnings
(bench sets are allowed to evolve) without failing the gate. Ops whose
baseline iteration is below --min-ns (default 100 us) are reported but not
gated: at that scale the measurement is dominated by scheduler and VM noise,
not kernel changes.

The threshold can also be set via the USB_BENCH_GATE_THRESHOLD environment
variable (the command-line flag wins). The default of 1.25 implements the
ROADMAP rule "fail CI on >25% kernel slowdown"; note the committed baseline
is produced on one machine and CI runs on another, so after a hardware
change the baseline should be refreshed (run bench_tensor_ops and commit the
JSON) rather than the threshold loosened.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    return {(e["op"], e["shape"]): e for e in entries}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_tensor_ops.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("USB_BENCH_GATE_THRESHOLD", "1.25")),
        help="fail when current ns/iter exceeds baseline * threshold (default 1.25)",
    )
    parser.add_argument(
        "--min-ns",
        type=float,
        default=float(os.environ.get("USB_BENCH_GATE_MIN_NS", "100000")),
        help="ignore ops whose baseline ns/iter is below this floor (default 1e5)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    rows = []
    for key in sorted(baseline):
        if key not in current:
            print(f"WARNING: {key[0]} [{key[1]}] in baseline but not in current run", file=sys.stderr)
            continue
        base_ns = baseline[key]["ns_per_iter"]
        cur_ns = current[key]["ns_per_iter"]
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        verdict = "OK"
        if base_ns < args.min_ns:
            verdict = "SKIPPED (below gate floor)"
        elif ratio > args.threshold:
            verdict = "REGRESSION"
            failures.append(key)
        rows.append((key[0], key[1], base_ns, cur_ns, ratio, verdict))
    for key in sorted(set(current) - set(baseline)):
        print(f"NOTE: new op {key[0]} [{key[1]}] has no baseline yet", file=sys.stderr)

    print(f"{'op':<28} {'shape':<14} {'base ns':>14} {'cur ns':>14} {'ratio':>7}  verdict")
    for op, shape, base_ns, cur_ns, ratio, verdict in rows:
        print(f"{op:<28} {shape:<14} {base_ns:>14.1f} {cur_ns:>14.1f} {ratio:>7.2f}  {verdict}")

    if failures:
        names = ", ".join(f"{op} [{shape}]" for op, shape in failures)
        print(
            f"\nFAIL: {len(failures)} kernel(s) regressed past {args.threshold:.2f}x: {names}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no kernel slower than {args.threshold:.2f}x baseline ({len(rows)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
