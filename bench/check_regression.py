#!/usr/bin/env python3
"""Gate benchmarks against a committed baseline.

Usage:
    check_regression.py CURRENT.json BASELINE.json [--threshold 1.25]

Two JSON schemas are understood, selected automatically:

Kernel schema (BENCH_tensor_ops.json): entries keyed by (op, shape) with an
ns_per_iter field. Every pair present in both files is compared and the gate
fails if any op got slower than baseline * threshold. Speedups are reported
but never fail. Ops present in only one file are listed as warnings (bench
sets are allowed to evolve) without failing the gate. Ops whose baseline
iteration is below --min-ns (default 100 us) are reported but not gated: at
that scale the measurement is dominated by scheduler and VM noise, not
kernel changes.

Hard requirements of the CURRENT kernel run (independent of baseline):
  - the elementwise suite (ew_relu_fwd, ew_sigmoid_bwd, ew_axpy, ew_blend,
    ew_clamp, ew_adam_update) must be present, each carrying gb_per_s and
    speedup_vs_portable fields — the dispatch layer exists and was measured
    (their ns_per_iter is gated at the normal threshold like any kernel;
    the speedup itself is hardware-dependent and only warned on);
  - the refine_step_allocs entry must be present with allocs_per_step == 0:
    the steady-state refinement step's zero-allocation contract. Any
    nonzero value is a regression of the arena hot path, not noise, and
    fails the gate outright.

Scan schema (BENCH_scan_scaling.json): entries carry a "section" field.
  - Contract fields are hard requirements of the CURRENT run alone: every
    "identical" and "same_verdict" must be true (bit-identity across thread
    counts and under prefix caching, verdict preservation under early exit).
  - The "service" section (mixed-request fairness: small-scan p50 latency
    under a K=43 background scan on one round dispatcher) is itself a hard
    requirement: the gate fails if the entry is missing from the current
    run, or if its small_before_large / identical booleans are not true.
    The fairness property is load-bearing for the DetectionService's global
    class-job scheduler, so its absence must read as a failure, never as
    "nothing to check". Its latency is gated like any single-thread row.
    The entry must also carry deadline_miss_p50_overhead (solo-scan p50
    latency with an armed-but-never-hit deadline, relative to no deadline,
    minus 1.0) strictly below 0.02: deadline bookkeeping is a few clock
    reads per stage boundary and must stay in the noise. It must further
    carry fleet_redispatch_success_rate == 1.0 (every scan whose fleet
    worker was SIGKILLed mid-flight re-dispatched to a byte-identical
    kDone on a survivor) and fleet_respawn_p50_seconds present and > 0
    (the SIGKILL-to-respawn latency was actually measured).
  - The "overload" section (the robustness layer made measurable) is a hard
    requirement of the current run as well: retry_success_rate must be
    exactly 1.0 (every scan hit by one injected transient fault, given a
    retry budget, resolved kDone byte-identical), shed_p50_latency_seconds
    must be present and positive (the depth-watermark shed path actually
    fired; the value is the submit-to-kShed resolution latency an
    overloaded caller waits), and health_snapshot_overhead (best solo-scan
    latency with a 100 Hz health() poller, relative to unmonitored, minus
    1.0) must stay strictly below 0.02.
  - Wall-clock gating compares "seconds" against baseline * threshold, but
    only for single-thread rows: multi-thread rows measure pool scaling,
    which a differently-sized runner legitimately changes.
  - Speedup floors: the matrix row with prefix cache + early exit both on
    must keep a single-thread wall-clock speedup >= 1.2x over the both-off
    cell of the SAME run (min-of-2 reps in the bench; both cells share the
    run's machine conditions, and the measured value is ~1.55x, so the
    floor has ~30% noise headroom). The 4-thread wall-clock pool-scaling floor of
    1.1x is WARN-ONLY until it has been demonstrated on multi-core
    hardware (a ROADMAP open item — every measurement so far is from a
    1-core container), and is not even evaluated on runners with fewer
    than 4 cores. USB_SCAN_GATE_SKIP_SPEEDUP=1 skips both floors.

The threshold can also be set via the USB_BENCH_GATE_THRESHOLD environment
variable (the command-line flag wins). The default of 1.25 implements the
ROADMAP rule "fail CI on >25% kernel slowdown"; note the committed baseline
is produced on one machine and CI runs on another, so after a hardware
change the baseline should be refreshed (re-run the bench and commit the
JSON) rather than the threshold loosened.
"""

import argparse
import json
import os
import sys


def load_entries(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def is_scan_schema(entries):
    return any("section" in e for e in entries)


REQUIRED_ELEMENTWISE_OPS = (
    "ew_relu_fwd",
    "ew_sigmoid_bwd",
    "ew_axpy",
    "ew_blend",
    "ew_clamp",
    "ew_adam_update",
)
REQUIRED_ALLOC_OP = "refine_step_allocs"


def check_kernel_contract(current_entries, failures):
    """Hard requirements of the current run alone (see module docstring)."""
    by_op = {}
    for entry in current_entries:
        by_op.setdefault(entry["op"], entry)

    for op in REQUIRED_ELEMENTWISE_OPS:
        entry = by_op.get(op)
        if entry is None:
            failures.append(f"required elementwise entry '{op}' missing from current run")
            continue
        for field in ("gb_per_s", "speedup_vs_portable"):
            if field not in entry:
                failures.append(f"{op}: required field '{field}' missing")

    alloc = by_op.get(REQUIRED_ALLOC_OP)
    if alloc is None:
        failures.append(f"required entry '{REQUIRED_ALLOC_OP}' missing from current run")
    elif "allocs_per_step" not in alloc:
        failures.append(f"{REQUIRED_ALLOC_OP}: required field 'allocs_per_step' missing")
    elif alloc["allocs_per_step"] != 0:
        failures.append(
            f"{REQUIRED_ALLOC_OP}: steady-state refinement step performs "
            f"{alloc['allocs_per_step']} Tensor allocations/step (contract: 0)"
        )

    # The >=1.5x speedup demonstration is hardware-dependent (a runner
    # without AVX2 dispatches the portable kernel and reports exactly 1.0
    # for every entry), so it warns rather than fails. "AVX2 ran" is
    # detected by ANY measured speedup differing from 1.0 — including the
    # all-below-1.0 case where dispatch actively pessimizes, which is
    # precisely what the warning exists to surface.
    speedups = [
        by_op[op].get("speedup_vs_portable", 0.0)
        for op in REQUIRED_ELEMENTWISE_OPS
        if op in by_op
    ]
    measured_both_variants = any(abs(s - 1.0) > 1e-9 for s in speedups)
    if measured_both_variants and sum(1 for s in speedups if s >= 1.5) < 2:
        print(
            "WARNING: fewer than two elementwise kernels reach 1.5x over the "
            f"portable variant (speedups: {speedups})",
            file=sys.stderr,
        )


def check_kernels(current_entries, baseline_entries, args):
    current = {(e["op"], e["shape"]): e for e in current_entries}
    baseline = {(e["op"], e["shape"]): e for e in baseline_entries}

    failures = []
    check_kernel_contract(current_entries, failures)
    rows = []
    for key in sorted(baseline):
        if key not in current:
            print(f"WARNING: {key[0]} [{key[1]}] in baseline but not in current run", file=sys.stderr)
            continue
        base_ns = baseline[key]["ns_per_iter"]
        cur_ns = current[key]["ns_per_iter"]
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        verdict = "OK"
        if base_ns < args.min_ns:
            verdict = "SKIPPED (below gate floor)"
        elif ratio > args.threshold:
            verdict = "REGRESSION"
            failures.append(f"{key[0]} [{key[1]}] {ratio:.2f}x slower than baseline")
        rows.append((key[0], key[1], base_ns, cur_ns, ratio, verdict))
    for key in sorted(set(current) - set(baseline)):
        print(f"NOTE: new op {key[0]} [{key[1]}] has no baseline yet", file=sys.stderr)

    print(f"{'op':<28} {'shape':<14} {'base ns':>14} {'cur ns':>14} {'ratio':>7}  verdict")
    for op, shape, base_ns, cur_ns, ratio, verdict in rows:
        print(f"{op:<28} {shape:<14} {base_ns:>14.1f} {cur_ns:>14.1f} {ratio:>7.2f}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel gate violation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: kernel contract holds and no kernel slower than "
          f"{args.threshold:.2f}x baseline ({len(rows)} compared)")
    return 0


def scan_key(entry):
    section = entry.get("section")
    if section == "matrix":
        return ("matrix", entry["method"], entry["prefix_cache"], entry["early_exit"])
    if section == "service":
        return ("service", entry["method"], entry.get("scenario", "mixed"))
    if section == "overload":
        return ("overload", entry["method"], entry.get("scenario", "overload"))
    return ("threads", entry["method"], entry["threads"])


def check_scan(current_entries, baseline_entries, args):
    failures = []

    # Contract fields of the current run (bit-identity, verdict preservation)
    # are not comparisons against baseline: they must simply hold. A null or
    # absent field means the bench did not measure that property for the row
    # (early-exit rows carry no identity claim) and is not a violation.
    for entry in current_entries:
        for field in ("identical", "same_verdict"):
            if entry.get(field) is False:
                failures.append(f"{scan_key(entry)}: {field} is false")

    # The mixed-request fairness entry is a hard requirement of the current
    # run: a bench build that silently dropped the service section must fail
    # the gate, and its contract booleans must be affirmatively true (null
    # or absent is a violation here, unlike the per-row fields above).
    service_rows = [e for e in current_entries if e.get("section") == "service"]
    if not service_rows:
        failures.append(
            "required 'service' section missing from current run: the "
            "mixed-request fairness entry (small-scan latency under K=43 "
            "background load) was not measured"
        )
    for entry in service_rows:
        for field in ("small_before_large", "identical"):
            if entry.get(field) is not True:
                failures.append(
                    f"{scan_key(entry)}: required contract field '{field}' is "
                    f"{entry.get(field)!r} (must be true)"
                )
        # Deadline bookkeeping (the per-stage steady_clock checks an armed
        # deadline adds) must stay in the noise: below 2% of solo-scan p50
        # latency. A missing field means the bench stopped measuring it,
        # which must fail, not silently pass.
        overhead = entry.get("deadline_miss_p50_overhead")
        if overhead is None:
            failures.append(
                f"{scan_key(entry)}: required field 'deadline_miss_p50_overhead' "
                "missing from current run"
            )
        elif overhead >= 0.02:
            failures.append(
                f"{scan_key(entry)}: deadline bookkeeping overhead "
                f"{overhead:.4f} exceeds the 0.02 gate"
            )
        # By-reference submission economics: the ModelStore must actually
        # have shared a resident model across the ref submits (hit rate 0
        # means every submit reloaded) and must have cost less memory than
        # clone-on-submit would have. Missing fields mean the bench stopped
        # measuring the store, which must fail outright.
        hit_rate = entry.get("model_store_hit_rate")
        if hit_rate is None:
            failures.append(
                f"{scan_key(entry)}: required field 'model_store_hit_rate' "
                "missing from current run"
            )
        elif hit_rate <= 0.0:
            failures.append(
                f"{scan_key(entry)}: model_store_hit_rate {hit_rate!r} — ref "
                "submits never shared a resident model"
            )
        bytes_saved = entry.get("submit_clone_bytes_saved")
        if bytes_saved is None:
            failures.append(
                f"{scan_key(entry)}: required field 'submit_clone_bytes_saved' "
                "missing from current run"
            )
        elif bytes_saved <= 0.0:
            failures.append(
                f"{scan_key(entry)}: submit_clone_bytes_saved {bytes_saved!r} — "
                "by-ref submission saved no memory over clone-on-submit"
            )
        # Process-fleet crash resilience: every scan whose worker was
        # SIGKILLed mid-flight must have re-dispatched to a byte-identical
        # kDone on a survivor (rate exactly 1.0 — re-dispatch is only safe
        # because reports are deterministic), and a respawn must actually
        # have been timed (a zero/missing p50 means the kill never landed
        # or the worker binary was absent from the build).
        fleet_rate = entry.get("fleet_redispatch_success_rate")
        if fleet_rate is None:
            failures.append(
                f"{scan_key(entry)}: required field "
                "'fleet_redispatch_success_rate' missing from current run"
            )
        elif fleet_rate != 1.0:
            failures.append(
                f"{scan_key(entry)}: fleet_redispatch_success_rate "
                f"{fleet_rate!r} != 1.0 — a killed worker's scan failed to "
                "re-dispatch to a byte-identical kDone"
            )
        fleet_respawn = entry.get("fleet_respawn_p50_seconds")
        if fleet_respawn is None:
            failures.append(
                f"{scan_key(entry)}: required field "
                "'fleet_respawn_p50_seconds' missing from current run"
            )
        elif fleet_respawn <= 0.0:
            failures.append(
                f"{scan_key(entry)}: fleet_respawn_p50_seconds "
                f"{fleet_respawn!r} — no worker respawn was ever observed"
            )

    # The overload entry (transient-fault retries, shedding, health-snapshot
    # cost) is likewise a hard requirement of the current run: a bench that
    # stopped measuring the robustness layer must fail the gate outright.
    overload_rows = [e for e in current_entries if e.get("section") == "overload"]
    if not overload_rows:
        failures.append(
            "required 'overload' section missing from current run: the "
            "retry / shed / health-snapshot entry was not measured"
        )
    for entry in overload_rows:
        rate = entry.get("retry_success_rate")
        if rate is None:
            failures.append(
                f"{scan_key(entry)}: required field 'retry_success_rate' missing"
            )
        elif rate != 1.0:
            failures.append(
                f"{scan_key(entry)}: retry_success_rate {rate!r} != 1.0 — a "
                "transiently-faulted scan with retry budget failed to resolve kDone"
            )
        shed = entry.get("shed_p50_latency_seconds")
        if shed is None:
            failures.append(
                f"{scan_key(entry)}: required field 'shed_p50_latency_seconds' missing"
            )
        elif shed <= 0:
            failures.append(
                f"{scan_key(entry)}: shed_p50_latency_seconds {shed!r} — the "
                "depth-watermark shed path never fired during the bench"
            )
        # health() is polled from monitoring loops; its cost on scan latency
        # must stay in the noise, same 2% bar as deadline bookkeeping.
        health = entry.get("health_snapshot_overhead")
        if health is None:
            failures.append(
                f"{scan_key(entry)}: required field 'health_snapshot_overhead' missing"
            )
        elif health >= 0.02:
            failures.append(
                f"{scan_key(entry)}: health snapshot overhead "
                f"{health:.4f} exceeds the 0.02 gate"
            )

    current = {scan_key(e): e for e in current_entries}
    baseline = {scan_key(e): e for e in baseline_entries}

    print(f"{'row':<50} {'base s':>9} {'cur s':>9} {'ratio':>7}  verdict")
    for key in sorted(current, key=str):
        entry = current[key]
        base = baseline.get(key)
        if base is None:
            print(f"NOTE: new scan row {key} has no baseline yet", file=sys.stderr)
            continue
        ratio = entry["seconds"] / base["seconds"] if base["seconds"] > 0 else 0.0
        if entry.get("threads", 1) != 1:
            verdict = "SKIPPED (multi-thread wall clock)"
        elif ratio > args.threshold:
            verdict = "REGRESSION"
            failures.append(f"{key}: {ratio:.2f}x slower than baseline")
        else:
            verdict = "OK"
        print(f"{str(key):<50} {base['seconds']:>9.3f} {entry['seconds']:>9.3f} {ratio:>7.2f}  {verdict}")
    for key in sorted(set(baseline) - set(current), key=str):
        print(f"WARNING: scan row {key} in baseline but not in current run", file=sys.stderr)

    if os.environ.get("USB_SCAN_GATE_SKIP_SPEEDUP", "") != "1":
        both_on = current.get(("matrix", "USB", "on", "on"))
        if both_on is not None and both_on["speedup"] < 1.2:
            failures.append(
                f"matrix prefix+early-exit speedup {both_on['speedup']:.2f}x < 1.20x floor"
            )
        cores = os.cpu_count() or 1
        for entry in current_entries:
            if entry.get("section") != "threads" or entry["threads"] != 4:
                continue
            if cores < 4:
                print(
                    f"NOTE: skipping wall-clock speedup assertion for {scan_key(entry)} "
                    f"(runner has {cores} core(s))",
                    file=sys.stderr,
                )
            elif entry["speedup"] < 1.1:
                # Warn-only: no multi-core run has demonstrated this floor
                # yet (ROADMAP open item); promote to a failure once one has.
                print(
                    f"WARNING: {scan_key(entry)}: 4-thread speedup "
                    f"{entry['speedup']:.2f}x < 1.10x floor",
                    file=sys.stderr,
                )

    if failures:
        print(f"\nFAIL: {len(failures)} scan gate violation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: scan contract holds and no single-thread row slower than "
          f"{args.threshold:.2f}x baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated bench JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("USB_BENCH_GATE_THRESHOLD", "1.25")),
        help="fail when current exceeds baseline * threshold (default 1.25)",
    )
    parser.add_argument(
        "--min-ns",
        type=float,
        default=float(os.environ.get("USB_BENCH_GATE_MIN_NS", "100000")),
        help="ignore kernel ops whose baseline ns/iter is below this floor (default 1e5)",
    )
    args = parser.parse_args()

    current = load_entries(args.current)
    baseline = load_entries(args.baseline)

    if is_scan_schema(current) or is_scan_schema(baseline):
        return check_scan(current, baseline, args)
    return check_kernels(current, baseline, args)


if __name__ == "__main__":
    sys.exit(main())
