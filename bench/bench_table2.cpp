// Table 2 — Detection evaluation on the ImageNet subset (EfficientNet
// family).
//
// Paper: Efficientnet-B0 on a 10-class ImageNet subset (224x224), BadNet
// triggers 20x20 and 25x25, 15 models per case, probe |X| = 500. The repo's
// substitute runs 48x48 images, so the triggers scale proportionally
// (20/224 * 48 ~= 4, 25/224 * 48 ~= 5).
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  ExperimentScale scale = ExperimentScale::from_env();
  scale.epochs = std::max<std::int64_t>(scale.epochs, 5);  // EffNet convergence at 48x48
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::imagenet_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (20x20->4x4 trigger)", spec, Architecture::kMiniEffNet,
                        AttackKind::kBadNet, 4, 0.15, 500},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (25x25->5x5 trigger)", spec, Architecture::kMiniEffNet,
                        AttackKind::kBadNet, 5, 0.15, 500},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3rd row, 6x6 trigger)", spec, Architecture::kMiniEffNet,
                        AttackKind::kBadNet, 6, 0.15, 500},
      scale, methods));

  print_detection_table(
      "Table 2: ImageNet-like (48x48) + MiniEffNet (paper: EfficientNet-B0 on 224x224, 15 "
      "models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
