// Table 1 — Detection evaluation on CIFAR-10 (ResNet family).
//
// Paper: 50 models per case, clean / BadNet 2x2 / BadNet 3x3; NC, TABOR and
// USB each classify every model and (for backdoored ones) predict the
// target class. This bench regenerates the same rows on the scaled
// substrate (see DESIGN.md). Scale with USB_MODELS_PER_CASE.
#include "exp/experiment.h"

int main() {
  using namespace usb;
  const ExperimentScale scale = ExperimentScale::from_env();
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::cifar10_like();

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kMiniResNet, AttackKind::kNone, 0, 0.0, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (2x2 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 2, 0.20, 300},
      scale, methods));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3x3 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 3, 0.15, 300},
      scale, methods));

  print_detection_table(
      "Table 1: CIFAR-10-like + MiniResNet (paper: ResNet-18, 50 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  return 0;
}
