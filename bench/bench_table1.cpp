// Table 1 — Detection evaluation on CIFAR-10 (ResNet family).
//
// Paper: 50 models per case, clean / BadNet 2x2 / BadNet 3x3; NC, TABOR and
// USB each classify every model and (for backdoored ones) predict the
// target class. This bench regenerates the same rows on the scaled
// substrate (see DESIGN.md). Scale with USB_MODELS_PER_CASE.
#include "fig_common.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  // Strict shared arg handling (fig_common.h): this bench takes no
  // arguments, so anything passed is a typo and aborts instead of being
  // silently ignored.
  usb::figbench::BenchArgs(argc, argv).finish();
  using namespace usb;
  const ExperimentScale scale = ExperimentScale::from_env();
  const std::vector<MethodKind> methods{MethodKind::kNc, MethodKind::kTabor, MethodKind::kUsb};
  const DatasetSpec spec = DatasetSpec::cifar10_like();

  // One service session for all three cases: the probe for model index i is
  // content-addressed by (spec, 300, hash(0x9e0be, i)), identical across
  // cases, so the clean and both BadNet populations share the SAME probe
  // materializations instead of regenerating 3 x models_per_case of them.
  DetectionService service;

  std::vector<DetectionCaseResult> results;
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Clean", spec, Architecture::kMiniResNet, AttackKind::kNone, 0, 0.0, 300},
      scale, methods, &service));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (2x2 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 2, 0.20, 300},
      scale, methods, &service));
  results.push_back(run_detection_case(
      DetectionCaseSpec{"Backdoored (3x3 trigger)", spec, Architecture::kMiniResNet,
                        AttackKind::kBadNet, 3, 0.15, 300},
      scale, methods, &service));

  print_detection_table(
      "Table 1: CIFAR-10-like + MiniResNet (paper: ResNet-18, 50 models/case; here " +
          std::to_string(scale.models_per_case) + "/case)",
      results);
  std::printf("probe store: %lld entries, %lld hits, %lld misses (shared across cases)\n",
              static_cast<long long>(service.probe_store().size()),
              static_cast<long long>(service.probe_store().hits()),
              static_cast<long long>(service.probe_store().misses()));
  return 0;
}
