#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace usb {

DatasetSpec DatasetSpec::mnist_like() { return DatasetSpec{"mnist_like", 1, 28, 10}; }
DatasetSpec DatasetSpec::cifar10_like() { return DatasetSpec{"cifar10_like", 3, 32, 10}; }
DatasetSpec DatasetSpec::gtsrb_like() { return DatasetSpec{"gtsrb_like", 3, 32, 43}; }
DatasetSpec DatasetSpec::imagenet_like() { return DatasetSpec{"imagenet_like", 3, 48, 10}; }

Dataset::Dataset(DatasetSpec spec, Tensor images, std::vector<std::int64_t> labels)
    : spec_(std::move(spec)), images_(std::move(images)), labels_(std::move(labels)) {
  if (images_.rank() != 4 || images_.dim(0) != static_cast<std::int64_t>(labels_.size()) ||
      images_.dim(1) != spec_.channels || images_.dim(2) != spec_.image_size ||
      images_.dim(3) != spec_.image_size) {
    throw std::invalid_argument("Dataset: images shape " + images_.shape().to_string() +
                                " inconsistent with spec " + spec_.name);
  }
  for (const std::int64_t label : labels_) {
    if (label < 0 || label >= spec_.num_classes) {
      throw std::invalid_argument("Dataset: label out of range for " + spec_.name);
    }
  }
}

Tensor Dataset::image(std::int64_t index) const {
  const std::int64_t numel = spec_.image_numel();
  Tensor out(Shape{1, spec_.channels, spec_.image_size, spec_.image_size});
  std::memcpy(out.raw(), images_.raw() + index * numel,
              static_cast<std::size_t>(numel) * sizeof(float));
  return out;
}

void Dataset::gather_images_into(std::span<const std::int64_t> indices, Tensor& out) const {
  const std::int64_t numel = spec_.image_numel();
  out.ensure_shape(Shape{static_cast<std::int64_t>(indices.size()), spec_.channels,
                         spec_.image_size, spec_.image_size});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    std::memcpy(out.raw() + static_cast<std::int64_t>(i) * numel,
                images_.raw() + indices[i] * numel,
                static_cast<std::size_t>(numel) * sizeof(float));
  }
}

Tensor Dataset::gather_images(std::span<const std::int64_t> indices) const {
  Tensor out;
  gather_images_into(indices, out);
  return out;
}

void Dataset::gather_labels_into(std::span<const std::int64_t> indices,
                                 std::vector<std::int64_t>& out) const {
  out.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = labels_[static_cast<std::size_t>(indices[i])];
  }
}

std::vector<std::int64_t> Dataset::gather_labels(std::span<const std::int64_t> indices) const {
  std::vector<std::int64_t> out;
  gather_labels_into(indices, out);
  return out;
}

Dataset Dataset::subset(std::span<const std::int64_t> indices) const {
  return Dataset(spec_, gather_images(indices), gather_labels(indices));
}

Dataset Dataset::take(std::int64_t count) const {
  count = std::min(count, size());
  std::vector<std::int64_t> indices(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) indices[static_cast<std::size_t>(i)] = i;
  return subset(indices);
}

}  // namespace usb
