// Mini-batch iteration with deterministic per-epoch shuffling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "utils/rng.h"

namespace usb {

/// One training batch.
struct Batch {
  Tensor images;  // (B,C,H,W)
  std::vector<std::int64_t> labels;
  std::vector<std::int64_t> indices;  // source rows in the dataset
};

class DataLoader {
 public:
  /// `shuffle` reshuffles at every new_epoch() with the loader's own stream.
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle, std::uint64_t seed);

  /// Resets the cursor and (if enabled) reshuffles.
  void new_epoch();

  /// Fetches the next batch; returns false at epoch end. The final batch may
  /// be smaller than batch_size.
  [[nodiscard]] bool next(Batch& out);

  [[nodiscard]] std::int64_t batches_per_epoch() const noexcept {
    return (dataset_->size() + batch_size_ - 1) / batch_size_;
  }

 private:
  const Dataset* dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace usb
