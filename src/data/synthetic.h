// Procedural image datasets standing in for MNIST / CIFAR-10 / GTSRB /
// ImageNet (the substitution table in DESIGN.md).
//
// Construction: each dataset owns a pool of smooth "feature components"
// (Gaussian blobs + sinusoidal gratings). Every class blends a few SHARED
// components with one class-UNIQUE component into a prototype image; samples
// are the prototype under translation jitter, brightness shift, and pixel
// noise. The shared components are deliberate: they give classes overlapping
// features ("cat" and "dog" share limbs, per the paper's Section 4.2), which
// is precisely what makes Neural-Cleanse-style reverse engineering sometimes
// latch onto a class feature instead of the backdoor trigger.
//
// Prototypes depend only on the dataset spec name, not on the sampling seed,
// so every model in an experiment population trains on the same underlying
// distribution while drawing different sample noise.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "utils/rng.h"

namespace usb {

struct SyntheticConfig {
  std::int64_t shared_components = 6;  // pool size of cross-class features
  std::int64_t blend_per_class = 2;    // shared components blended per class
  float noise_stddev = 0.10F;          // per-pixel Gaussian noise
  std::int64_t max_jitter = 2;         // +/- translation in pixels
  float brightness_jitter = 0.12F;     // +/- uniform brightness shift
};

/// Deterministic per-class prototype images for a spec. Exposed for tests
/// and for the Latent Backdoor attack (class centroids).
[[nodiscard]] Tensor class_prototypes(const DatasetSpec& spec,
                                      const SyntheticConfig& config = {});

/// Draws `count` labeled samples (balanced round-robin over classes) using
/// `seed` for jitter/noise. Images are in [0,1].
[[nodiscard]] Dataset generate_dataset(const DatasetSpec& spec, std::int64_t count,
                                       std::uint64_t seed, const SyntheticConfig& config = {});

}  // namespace usb
