// Read-only mini-batches of a probe set, materialized once and shared by
// every consumer of a scan: the K per-class fooling-rate evaluations, the
// Alg. 1 craft loop, and (through the experiment harness) every detector run
// against the same model. Batching matches the historical evaluation loaders
// (sequential order, fixed batch size), so cached results are bit-identical
// to a fresh DataLoader pass.
//
// Lives in data/ (not defenses/) because both the core algorithms (Alg. 1
// UAP crafting) and the defense schedulers consume it; defenses re-export it
// through class_scan_scheduler.h for existing call sites.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataloader.h"

namespace usb {

class ProbeBatchCache {
 public:
  ProbeBatchCache() = default;
  explicit ProbeBatchCache(const Dataset& probe, std::int64_t batch_size = 128);

  [[nodiscard]] const std::vector<Batch>& batches() const noexcept { return batches_; }
  [[nodiscard]] std::int64_t total_samples() const noexcept { return total_samples_; }
  [[nodiscard]] std::int64_t batch_size() const noexcept { return batch_size_; }

 private:
  std::vector<Batch> batches_;
  std::int64_t total_samples_ = 0;
  std::int64_t batch_size_ = 0;
};

}  // namespace usb
