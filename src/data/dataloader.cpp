#include "data/dataloader.h"

#include <span>

namespace usb {

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
                       std::uint64_t seed)
    : dataset_(&dataset), batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
  order_.resize(static_cast<std::size_t>(dataset.size()));
  for (std::int64_t i = 0; i < dataset.size(); ++i) order_[static_cast<std::size_t>(i)] = i;
  new_epoch();
}

void DataLoader::new_epoch() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(std::span<std::int64_t>(order_));
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= dataset_->size()) return false;
  const std::int64_t end = std::min(cursor_ + batch_size_, dataset_->size());
  const std::span<const std::int64_t> slice(order_.data() + cursor_,
                                            static_cast<std::size_t>(end - cursor_));
  // Fill the caller's batch in place: a Batch reused across steps recycles
  // its image buffer and label/index capacity, so the steady-state loader
  // loop allocates nothing.
  dataset_->gather_images_into(slice, out.images);
  dataset_->gather_labels_into(slice, out.labels);
  out.indices.assign(slice.begin(), slice.end());
  cursor_ = end;
  return true;
}

}  // namespace usb
