#include "data/probe_store.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "data/synthetic.h"
#include "utils/fault_injection.h"
#include "utils/memory_budget.h"

namespace usb {

ProbeStore::~ProbeStore() {
  if (resident_bytes_ > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kProbeData, resident_bytes_);
  }
}

std::string ProbeKey::address() const {
  // String concatenation, not a fixed buffer: the address is the store's
  // map key, so truncating a long spec name would silently collapse
  // distinct keys onto one entry (and serve the wrong probe).
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "_c%lld_s%lld_k%lld_n%lld_seed%016" PRIx64,
                static_cast<long long>(spec.channels), static_cast<long long>(spec.image_size),
                static_cast<long long>(spec.num_classes), static_cast<long long>(probe_size),
                seed);
  return spec.name + suffix;
}

std::int64_t ProbeData::bytes() const noexcept {
  auto dataset_bytes = [](const Dataset& data) {
    return data.images().numel() * static_cast<std::int64_t>(sizeof(float)) +
           static_cast<std::int64_t>(data.labels().size() * sizeof(std::int64_t));
  };
  std::int64_t total = dataset_bytes(probe);
  for (const Batch& batch : cache.batches()) {
    total += batch.images.numel() * static_cast<std::int64_t>(sizeof(float)) +
             static_cast<std::int64_t>((batch.labels.size() + batch.indices.size()) *
                                       sizeof(std::int64_t));
  }
  return total;
}

void ProbeStore::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_position);
  entry.lru_position = lru_.begin();
}

void ProbeStore::evict_over_cap_locked() {
  if (options_.max_bytes <= 0) return;
  // Walk from the LRU tail, skipping pinned entries (use_count > 1 means a
  // consumer outside the store still holds the materialization). If every
  // resident entry is pinned the cap is transiently exceeded — correctness
  // over strictness: evicting a pinned entry would only hide the memory,
  // not reclaim it.
  auto it = lru_.end();
  while (resident_bytes_ > options_.max_bytes && it != lru_.begin()) {
    --it;
    const auto found = entries_.find(*it);
    if (found == entries_.end()) continue;  // defensive; lru_ and map stay in sync
    if (found->second.data.use_count() > 1) continue;  // pinned by a consumer
    resident_bytes_ -= found->second.bytes;
    MemoryBudget::process().release(MemoryBudget::Category::kProbeData, found->second.bytes);
    ++evictions_;
    it = lru_.erase(it);
    entries_.erase(found);
  }
}

std::shared_ptr<const ProbeData> ProbeStore::resolve_pending(
    const std::string& address, const std::shared_ptr<Materialization>& cell,
    std::shared_ptr<const ProbeData> data) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(address);
    if (it != entries_.end() && it->second.pending == cell) {
      it->second.pending.reset();
      it->second.data = data;
      it->second.bytes = data->bytes();
      lru_.push_front(address);
      it->second.lru_position = lru_.begin();
      resident_bytes_ += it->second.bytes;
      MemoryBudget::process().add(MemoryBudget::Category::kProbeData, it->second.bytes);
      evict_over_cap_locked();
    }
    // else: clear() dropped the pending entry mid-build — hand the data to
    // the waiters without re-inserting it.
  }
  cell->promise.set_value(data);
  return data;
}

void ProbeStore::abandon_pending(const std::string& address,
                                 const std::shared_ptr<Materialization>& cell) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(address);
    if (it != entries_.end() && it->second.pending == cell) entries_.erase(it);
  }
  cell->promise.set_exception(std::current_exception());
}

std::shared_ptr<const ProbeData> ProbeStore::get_or_create(const ProbeKey& key) {
  const std::string address = key.address();
  std::shared_ptr<Materialization> cell;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(address);
    if (it != entries_.end()) {
      ++hits_;  // the map resolved the key — no second generation happens
      if (it->second.data != nullptr) {
        touch_locked(it->second);
        return it->second.data;
      }
      // Another thread is materializing this key right now: wait on its
      // cell OUTSIDE the lock so unrelated keys keep flowing.
      const auto pending = it->second.pending;
      lock.unlock();
      return pending->future.get();  // rethrows the builder's failure
    }
    ++misses_;
    cell = std::make_shared<Materialization>();
    cell->future = cell->promise.get_future().share();
    Entry entry;
    entry.pending = cell;
    entries_.emplace(address, std::move(entry));
  }

  // Generation runs unlocked: one cold key no longer convoys every
  // concurrent lookup (and stat getter) behind dataset materialization.
  try {
    USB_FAULT_POINT("probe_store.materialize");
    auto data = std::make_shared<ProbeData>();
    data->key = key;
    // Identical to exp/model_zoo's make_probe(spec, probe_size, seed), which
    // data/ cannot call (layering); both are generate_dataset verbatim.
    data->probe = generate_dataset(key.spec, key.probe_size, key.seed);
    data->cache = ProbeBatchCache(data->probe, options_.eval_batch_size);
    return resolve_pending(address, cell, std::move(data));
  } catch (...) {
    abandon_pending(address, cell);
    throw;
  }
}

std::shared_ptr<const ProbeData> ProbeStore::put(const ProbeKey& key, Dataset probe) {
  const std::string address = key.address();
  std::shared_ptr<Materialization> cell;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(address);
    if (it != entries_.end()) {
      if (it->second.data != nullptr) {
        touch_locked(it->second);
        return it->second.data;
      }
      // First writer wins — and a concurrent get_or_create of the same key
      // counts as that writer (equal keys mean equal data).
      const auto pending = it->second.pending;
      lock.unlock();
      return pending->future.get();
    }
    cell = std::make_shared<Materialization>();
    cell->future = cell->promise.get_future().share();
    Entry entry;
    entry.pending = cell;
    entries_.emplace(address, std::move(entry));
  }

  // Batch-cache construction (the copy-heavy part) runs unlocked, same as
  // get_or_create's generation.
  try {
    auto data = std::make_shared<ProbeData>();
    data->key = key;
    data->probe = std::move(probe);
    data->cache = ProbeBatchCache(data->probe, options_.eval_batch_size);
    return resolve_pending(address, cell, std::move(data));
  } catch (...) {
    abandon_pending(address, cell);
    throw;
  }
}

void ProbeStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  if (resident_bytes_ > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kProbeData, resident_bytes_);
  }
  resident_bytes_ = 0;
}

std::int64_t ProbeStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t ProbeStore::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t ProbeStore::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t ProbeStore::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::int64_t ProbeStore::bytes_resident() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

}  // namespace usb
