#include "data/probe_store.h"

#include <cinttypes>
#include <cstdio>

#include "data/synthetic.h"

namespace usb {

std::string ProbeKey::address() const {
  // String concatenation, not a fixed buffer: the address is the store's
  // map key, so truncating a long spec name would silently collapse
  // distinct keys onto one entry (and serve the wrong probe).
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "_c%lld_s%lld_k%lld_n%lld_seed%016" PRIx64,
                static_cast<long long>(spec.channels), static_cast<long long>(spec.image_size),
                static_cast<long long>(spec.num_classes), static_cast<long long>(probe_size),
                seed);
  return spec.name + suffix;
}

std::shared_ptr<const ProbeData> ProbeStore::get_or_create(const ProbeKey& key) {
  const std::string address = key.address();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(address);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto data = std::make_shared<ProbeData>();
  data->key = key;
  // Identical to exp/model_zoo's make_probe(spec, probe_size, seed), which
  // data/ cannot call (layering); both are generate_dataset verbatim.
  data->probe = generate_dataset(key.spec, key.probe_size, key.seed);
  data->cache = ProbeBatchCache(data->probe, eval_batch_size_);
  auto entry = std::shared_ptr<const ProbeData>(std::move(data));
  entries_.emplace(address, entry);
  return entry;
}

std::shared_ptr<const ProbeData> ProbeStore::put(const ProbeKey& key, Dataset probe) {
  const std::string address = key.address();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(address);
  if (it != entries_.end()) return it->second;
  auto data = std::make_shared<ProbeData>();
  data->key = key;
  data->probe = std::move(probe);
  data->cache = ProbeBatchCache(data->probe, eval_batch_size_);
  auto entry = std::shared_ptr<const ProbeData>(std::move(data));
  entries_.emplace(address, entry);
  return entry;
}

void ProbeStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::int64_t ProbeStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t ProbeStore::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t ProbeStore::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace usb
