// Content-addressed store of probe datasets and their batch caches.
//
// Every probe set in this repository is a pure function of
// (DatasetSpec, probe_size, seed) — generate_dataset() is deterministic —
// so that triple IS the content address: two scans that name the same key
// are guaranteed the same bytes, and the store can hand both the same
// immutable materialization instead of regenerating and re-batching per
// case. This resolves the ROADMAP item "probe datasets are regenerated per
// case and could be content-addressed and cached across cases/scales": the
// experiment harness previously built one ProbeBatchCache per model and
// shared it across the three detectors, but rebuilt the probe for every
// (case, model) pair even when the coordinates matched.
//
// Entries are shared_ptr<const ProbeData>; consumers hold the pointer for
// as long as they need the batches (a scan in flight keeps its probe alive
// even if the store is cleared concurrently). All methods are thread-safe.
//
// Eviction: long-lived services accumulate probe materializations forever
// by default. ProbeStoreOptions::max_bytes caps the RESIDENT bytes
// (dataset + batch cache) with least-recently-used eviction; an entry whose
// shared_ptr is still held outside the store (a scan in flight) is pinned
// and skipped, so the cap can be transiently exceeded while every resident
// entry is in use. Evicted keys regenerate on their next get_or_create
// (counted as a miss).
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "data/dataset.h"
#include "data/probe_cache.h"

namespace usb {

/// The content address of a probe set: the full generation coordinates.
/// Keys compare by value (not by hash) — equal keys are equal datasets.
struct ProbeKey {
  DatasetSpec spec;
  std::int64_t probe_size = 0;
  std::uint64_t seed = 0;

  /// Canonical string form, e.g. "cifar10_c3_s32_k10_n300_seed000000000009e0be";
  /// the store's map key and a stable cache-file-style identifier.
  [[nodiscard]] std::string address() const;

  [[nodiscard]] bool operator==(const ProbeKey& other) const noexcept {
    return spec.name == other.spec.name && spec.channels == other.spec.channels &&
           spec.image_size == other.spec.image_size &&
           spec.num_classes == other.spec.num_classes && probe_size == other.probe_size &&
           seed == other.seed;
  }
};

/// One materialized probe: the dataset plus its evaluation batches, built
/// once and shared read-only by every scan that names the key.
struct ProbeData {
  ProbeKey key;
  Dataset probe;
  ProbeBatchCache cache;

  /// Resident footprint (image/label storage of the dataset and every
  /// cached batch); the unit of the store's max_bytes accounting.
  [[nodiscard]] std::int64_t bytes() const noexcept;
};

struct ProbeStoreOptions {
  /// Batching of every entry's ProbeBatchCache; matches
  /// ClassScanOptions::eval_batch_size (128) by default so the scheduler
  /// adopts the shared cache instead of rebuilding its own.
  std::int64_t eval_batch_size = 128;
  /// LRU-by-bytes cap on resident materializations; 0 (default) disables
  /// eviction. Entries held by in-flight consumers are pinned.
  std::int64_t max_bytes = 0;
};

class ProbeStore {
 public:
  explicit ProbeStore(ProbeStoreOptions options) : options_(options) {}
  explicit ProbeStore(std::int64_t eval_batch_size = 128)
      : ProbeStore(ProbeStoreOptions{eval_batch_size, 0}) {}
  /// Releases the store's resident bytes from the process MemoryBudget
  /// (resident entries register there as MemoryBudget::Category::kProbeData
  /// — see utils/memory_budget.h).
  ~ProbeStore();

  ProbeStore(const ProbeStore&) = delete;
  ProbeStore& operator=(const ProbeStore&) = delete;

  /// Returns the shared materialization for `key`, generating it on first
  /// use; the result is identical to make_probe(spec, probe_size, seed) +
  /// ProbeBatchCache(probe). Generation happens OUTSIDE the store lock: a
  /// cold-key miss publishes a per-entry pending cell under the lock, then
  /// materializes unlocked, so concurrent lookups of other keys (and the
  /// stat getters) never convoy behind dataset generation. Concurrent
  /// requests for the same cold key still share one materialization — the
  /// first caller generates (one miss), later ones wait on the cell's
  /// future (each a hit: the map already resolved their key).
  [[nodiscard]] std::shared_ptr<const ProbeData> get_or_create(const ProbeKey& key);

  /// Registers an externally built probe under its key (e.g. a real-data
  /// probe the synthetic generator cannot reproduce). Returns the stored
  /// entry; a prior entry for the key wins (first writer, matching the
  /// content-addressing contract — equal keys must mean equal data).
  [[nodiscard]] std::shared_ptr<const ProbeData> put(const ProbeKey& key, Dataset probe);

  /// Drops the store's references. In-flight consumers keep their entries
  /// alive through their own shared_ptrs.
  void clear();

  [[nodiscard]] std::int64_t size() const;
  [[nodiscard]] std::int64_t hits() const;       // lookups served from the map
  [[nodiscard]] std::int64_t misses() const;     // lookups that generated
  [[nodiscard]] std::int64_t evictions() const;  // entries dropped by the cap
  [[nodiscard]] std::int64_t bytes_resident() const;
  [[nodiscard]] std::int64_t eval_batch_size() const noexcept {
    return options_.eval_batch_size;
  }
  [[nodiscard]] std::int64_t max_bytes() const noexcept { return options_.max_bytes; }

 private:
  /// One in-flight materialization: the building thread fulfills the
  /// promise (value or exception) after releasing the store lock; every
  /// concurrent same-key caller waits on a copy of the shared_future.
  struct Materialization {
    std::promise<std::shared_ptr<const ProbeData>> promise;
    std::shared_future<std::shared_ptr<const ProbeData>> future;
  };

  struct Entry {
    std::shared_ptr<const ProbeData> data;  // null while materializing
    std::int64_t bytes = 0;
    /// Valid only once `data` is set; pending entries are not in lru_ (and
    /// contribute no resident bytes), so eviction never sees them.
    std::list<std::string>::iterator lru_position;
    std::shared_ptr<Materialization> pending;  // non-null while materializing
  };

  /// Publishes a finished materialization: if the entry still holds `cell`
  /// (clear() may have dropped it mid-build) the entry becomes resident
  /// (LRU front, bytes accounted, over-cap tails evicted); either way every
  /// waiter on the cell receives `data`.
  std::shared_ptr<const ProbeData> resolve_pending(const std::string& address,
                                                   const std::shared_ptr<Materialization>& cell,
                                                   std::shared_ptr<const ProbeData> data);
  /// Drops a pending entry whose build threw and forwards the exception to
  /// the waiters.
  void abandon_pending(const std::string& address, const std::shared_ptr<Materialization>& cell);
  void evict_over_cap_locked();
  void touch_locked(Entry& entry);

  ProbeStoreOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::int64_t resident_bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace usb
