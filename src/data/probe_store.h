// Content-addressed store of probe datasets and their batch caches.
//
// Every probe set in this repository is a pure function of
// (DatasetSpec, probe_size, seed) — generate_dataset() is deterministic —
// so that triple IS the content address: two scans that name the same key
// are guaranteed the same bytes, and the store can hand both the same
// immutable materialization instead of regenerating and re-batching per
// case. This resolves the ROADMAP item "probe datasets are regenerated per
// case and could be content-addressed and cached across cases/scales": the
// experiment harness previously built one ProbeBatchCache per model and
// shared it across the three detectors, but rebuilt the probe for every
// (case, model) pair even when the coordinates matched.
//
// Entries are shared_ptr<const ProbeData>; consumers hold the pointer for
// as long as they need the batches (a scan in flight keeps its probe alive
// even if the store is cleared concurrently). All methods are thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "data/dataset.h"
#include "data/probe_cache.h"

namespace usb {

/// The content address of a probe set: the full generation coordinates.
/// Keys compare by value (not by hash) — equal keys are equal datasets.
struct ProbeKey {
  DatasetSpec spec;
  std::int64_t probe_size = 0;
  std::uint64_t seed = 0;

  /// Canonical string form, e.g. "cifar10_c3_s32_k10_n300_seed000000000009e0be";
  /// the store's map key and a stable cache-file-style identifier.
  [[nodiscard]] std::string address() const;

  [[nodiscard]] bool operator==(const ProbeKey& other) const noexcept {
    return spec.name == other.spec.name && spec.channels == other.spec.channels &&
           spec.image_size == other.spec.image_size &&
           spec.num_classes == other.spec.num_classes && probe_size == other.probe_size &&
           seed == other.seed;
  }
};

/// One materialized probe: the dataset plus its evaluation batches, built
/// once and shared read-only by every scan that names the key.
struct ProbeData {
  ProbeKey key;
  Dataset probe;
  ProbeBatchCache cache;
};

class ProbeStore {
 public:
  /// `eval_batch_size` is the batching of every entry's ProbeBatchCache;
  /// it matches ClassScanOptions::eval_batch_size (128) by default so the
  /// scheduler adopts the shared cache instead of rebuilding its own.
  explicit ProbeStore(std::int64_t eval_batch_size = 128)
      : eval_batch_size_(eval_batch_size) {}

  /// Returns the shared materialization for `key`, generating it on first
  /// use. Generation happens under the store lock: concurrent requests for
  /// the same key never generate twice, and the result is identical to
  /// make_probe(spec, probe_size, seed) + ProbeBatchCache(probe).
  [[nodiscard]] std::shared_ptr<const ProbeData> get_or_create(const ProbeKey& key);

  /// Registers an externally built probe under its key (e.g. a real-data
  /// probe the synthetic generator cannot reproduce). Returns the stored
  /// entry; a prior entry for the key wins (first writer, matching the
  /// content-addressing contract — equal keys must mean equal data).
  [[nodiscard]] std::shared_ptr<const ProbeData> put(const ProbeKey& key, Dataset probe);

  /// Drops the store's references. In-flight consumers keep their entries
  /// alive through their own shared_ptrs.
  void clear();

  [[nodiscard]] std::int64_t size() const;
  [[nodiscard]] std::int64_t hits() const;    // lookups served from the map
  [[nodiscard]] std::int64_t misses() const;  // lookups that generated
  [[nodiscard]] std::int64_t eval_batch_size() const noexcept { return eval_batch_size_; }

 private:
  std::int64_t eval_batch_size_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ProbeData>> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace usb
