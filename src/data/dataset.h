// In-memory labeled image dataset.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace usb {

/// Identity and geometry of a dataset. The four presets mirror the paper's
/// datasets at CPU-tractable scale (see DESIGN.md substitution table).
struct DatasetSpec {
  std::string name;            // stable key; also seeds the class prototypes
  std::int64_t channels = 3;
  std::int64_t image_size = 32;  // square images
  std::int64_t num_classes = 10;

  [[nodiscard]] std::int64_t image_numel() const noexcept {
    return channels * image_size * image_size;
  }

  // The paper's datasets, scaled: MNIST 28x28x1/10, CIFAR-10 32x32x3/10,
  // GTSRB 32x32x3/43, ImageNet subset 224x224x3/10 -> 48x48x3/10.
  [[nodiscard]] static DatasetSpec mnist_like();
  [[nodiscard]] static DatasetSpec cifar10_like();
  [[nodiscard]] static DatasetSpec gtsrb_like();
  [[nodiscard]] static DatasetSpec imagenet_like();
};

/// Dense dataset: one (N,C,H,W) tensor plus labels. Images live in [0,1].
class Dataset {
 public:
  Dataset() = default;
  Dataset(DatasetSpec spec, Tensor images, std::vector<std::int64_t> labels);

  [[nodiscard]] const DatasetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(labels_.size());
  }

  [[nodiscard]] const Tensor& images() const noexcept { return images_; }
  [[nodiscard]] Tensor& mutable_images() noexcept { return images_; }
  [[nodiscard]] const std::vector<std::int64_t>& labels() const noexcept { return labels_; }
  [[nodiscard]] std::vector<std::int64_t>& mutable_labels() noexcept { return labels_; }

  /// Copies one image as a (1,C,H,W) tensor.
  [[nodiscard]] Tensor image(std::int64_t index) const;
  [[nodiscard]] std::int64_t label(std::int64_t index) const noexcept {
    return labels_[static_cast<std::size_t>(index)];
  }

  /// Gathers the given rows into a (B,C,H,W) batch tensor.
  [[nodiscard]] Tensor gather_images(std::span<const std::int64_t> indices) const;
  /// In-place form: `out` is re-shaped via ensure_shape, so a recycled batch
  /// tensor costs zero heap allocations (the DataLoader hot path).
  void gather_images_into(std::span<const std::int64_t> indices, Tensor& out) const;
  [[nodiscard]] std::vector<std::int64_t> gather_labels(
      std::span<const std::int64_t> indices) const;
  void gather_labels_into(std::span<const std::int64_t> indices,
                          std::vector<std::int64_t>& out) const;

  /// Subset by row indices (copies).
  [[nodiscard]] Dataset subset(std::span<const std::int64_t> indices) const;

  /// The first `count` rows (copies); the "small clean set X" of Alg. 1.
  [[nodiscard]] Dataset take(std::int64_t count) const;

 private:
  DatasetSpec spec_;
  Tensor images_;  // (N,C,H,W)
  std::vector<std::int64_t> labels_;
};

}  // namespace usb
