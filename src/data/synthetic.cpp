#include "data/synthetic.h"
#include <algorithm>

#include <cmath>
#include <numbers>
#include <string>

namespace usb {
namespace {

/// One smooth component field over (channels, size, size): a few signed
/// Gaussian bumps plus one oriented sinusoidal grating, channel-tinted.
Tensor make_component(const DatasetSpec& spec, Rng& rng) {
  const std::int64_t size = spec.image_size;
  Tensor field(Shape{1, spec.channels, size, size});

  struct Bump {
    double cx, cy, radius, amplitude;
  };
  const std::int64_t bump_count = rng.uniform_int(2, 4);
  std::vector<Bump> bumps;
  bumps.reserve(static_cast<std::size_t>(bump_count));
  for (std::int64_t b = 0; b < bump_count; ++b) {
    bumps.push_back(Bump{rng.uniform(0.1, 0.9) * static_cast<double>(size),
                         rng.uniform(0.1, 0.9) * static_cast<double>(size),
                         rng.uniform(0.1, 0.3) * static_cast<double>(size),
                         rng.uniform(0.5, 1.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0)});
  }
  const double freq = rng.uniform(1.0, 3.0) * 2.0 * std::numbers::pi / static_cast<double>(size);
  const double orientation = rng.uniform(0.0, std::numbers::pi);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double grating_amp = rng.uniform(0.2, 0.5);

  std::vector<double> tint(static_cast<std::size_t>(spec.channels));
  for (double& t : tint) t = rng.uniform(0.4, 1.0);

  for (std::int64_t c = 0; c < spec.channels; ++c) {
    for (std::int64_t y = 0; y < size; ++y) {
      for (std::int64_t x = 0; x < size; ++x) {
        double value = 0.0;
        for (const Bump& bump : bumps) {
          const double dx = static_cast<double>(x) - bump.cx;
          const double dy = static_cast<double>(y) - bump.cy;
          value += bump.amplitude *
                   std::exp(-(dx * dx + dy * dy) / (2.0 * bump.radius * bump.radius));
        }
        const double u = std::cos(orientation) * static_cast<double>(x) +
                         std::sin(orientation) * static_cast<double>(y);
        value += grating_amp * std::sin(freq * u + phase);
        field.at4(0, c, y, x) = static_cast<float>(value * tint[static_cast<std::size_t>(c)]);
      }
    }
  }
  // Drop the leading batch axis; downstream code treats components as CHW.
  field.reshape_in_place(Shape{spec.channels, size, size});
  return field;
}

std::uint64_t spec_seed(const DatasetSpec& spec) {
  // FNV-1a over the name: prototypes are a pure function of the dataset name.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : spec.name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Tensor class_prototypes(const DatasetSpec& spec, const SyntheticConfig& config) {
  Rng rng(spec_seed(spec));
  const std::int64_t size = spec.image_size;

  std::vector<Tensor> shared;
  shared.reserve(static_cast<std::size_t>(config.shared_components));
  for (std::int64_t i = 0; i < config.shared_components; ++i) {
    shared.push_back(make_component(spec, rng));
  }

  Tensor prototypes(Shape{spec.num_classes, spec.channels, size, size});
  for (std::int64_t k = 0; k < spec.num_classes; ++k) {
    Tensor blend(Shape{spec.channels, size, size});
    for (std::int64_t j = 0; j < config.blend_per_class; ++j) {
      const std::int64_t pick = rng.uniform_int(0, config.shared_components - 1);
      const float weight = rng.uniform_float(0.4F, 0.8F);
      blend.add_scaled(shared[static_cast<std::size_t>(pick)], weight);
    }
    Tensor unique = make_component(spec, rng);
    blend.add_scaled(unique, 1.0F);

    // Normalize the field to zero mean / unit-ish scale, then place in [0,1].
    const float mean = blend.mean();
    blend += -mean;
    const float peak = std::max(blend.abs_max(), 1e-6F);
    const float gain = 0.45F / peak;
    float* proto = prototypes.raw() + k * spec.image_numel();
    for (std::int64_t i = 0; i < blend.numel(); ++i) {
      proto[i] = std::clamp(0.5F + gain * blend[i], 0.0F, 1.0F);
    }
  }
  return prototypes;
}

Dataset generate_dataset(const DatasetSpec& spec, std::int64_t count, std::uint64_t seed,
                         const SyntheticConfig& config) {
  const Tensor prototypes = class_prototypes(spec, config);
  const std::int64_t size = spec.image_size;
  const std::int64_t numel = spec.image_numel();

  Rng rng(hash_combine(seed, spec_seed(spec)));
  Tensor images(Shape{count, spec.channels, size, size});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(count));

  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t label = i % spec.num_classes;  // balanced classes
    labels[static_cast<std::size_t>(i)] = label;
    const float* proto = prototypes.raw() + label * numel;
    float* out = images.raw() + i * numel;

    const std::int64_t dy = rng.uniform_int(-config.max_jitter, config.max_jitter);
    const std::int64_t dx = rng.uniform_int(-config.max_jitter, config.max_jitter);
    const float brightness = rng.uniform_float(-config.brightness_jitter,
                                               config.brightness_jitter);
    for (std::int64_t c = 0; c < spec.channels; ++c) {
      for (std::int64_t y = 0; y < size; ++y) {
        // Edge-clamped translation keeps jittered prototypes in frame.
        const std::int64_t sy = std::clamp<std::int64_t>(y + dy, 0, size - 1);
        for (std::int64_t x = 0; x < size; ++x) {
          const std::int64_t sx = std::clamp<std::int64_t>(x + dx, 0, size - 1);
          const float base = proto[(c * size + sy) * size + sx];
          const float noise = static_cast<float>(rng.normal(0.0, config.noise_stddev));
          out[(c * size + y) * size + x] = std::clamp(base + brightness + noise, 0.0F, 1.0F);
        }
      }
    }
  }
  return Dataset(spec, std::move(images), std::move(labels));
}

}  // namespace usb
