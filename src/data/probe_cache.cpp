#include "data/probe_cache.h"

namespace usb {

ProbeBatchCache::ProbeBatchCache(const Dataset& probe, std::int64_t batch_size)
    : batch_size_(batch_size) {
  // Sequential, unshuffled: the exact batching of the historical evaluation
  // loaders (DataLoader(probe, 128, shuffle=false, seed=0)).
  DataLoader loader(probe, batch_size, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  while (loader.next(batch)) {
    total_samples_ += batch.images.numel() == 0 ? 0 : batch.images.dim(0);
    batches_.push_back(batch);
  }
}

}  // namespace usb
