// Conv2d layer (square kernels, optional groups for depthwise convolution).
#pragma once

#include "nn/module.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {

class Conv2d final : public Module {
 public:
  Conv2d(Conv2dSpec spec, Rng& rng, bool with_bias = true);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

  [[nodiscard]] const Conv2dSpec& spec() const noexcept { return spec_; }

  /// First-layer convs can skip computing dL/dinput during weight training;
  /// detection algorithms re-enable it to reach the image. Defaults to true.
  void set_need_input_grad(bool need) noexcept { need_input_grad_ = need; }

 private:
  Conv2dSpec spec_;
  bool with_bias_;
  bool need_input_grad_ = true;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_own_;
  const Tensor* cached_input_ = nullptr;
};

}  // namespace usb
