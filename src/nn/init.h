// Weight initialization schemes.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace usb {

/// He/Kaiming normal init: N(0, sqrt(2/fan_in)); the standard for
/// ReLU-family networks.
void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Uniform init in [-bound, bound].
void uniform_init(Tensor& weight, float bound, Rng& rng);

}  // namespace usb
