#include "nn/checkpoint.h"

#include <stdexcept>

#include "utils/serialize.h"

namespace usb {
namespace {
constexpr std::uint32_t kMagic = 0x43425355;  // "USBC" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_checkpoint(Network& network, const std::string& path) {
  BinaryWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_string(to_string(network.architecture()));
  writer.write_i64(network.in_channels());
  writer.write_i64(network.input_size());
  writer.write_i64(network.num_classes());

  const std::vector<StateTensor> state = network.state();
  writer.write_i64(static_cast<std::int64_t>(state.size()));
  for (const StateTensor& entry : state) {
    writer.write_string(entry.name);
    writer.write_floats(entry.tensor->data());
  }
  writer.save(path);
}

Network load_checkpoint(const std::string& path) {
  BinaryReader reader = BinaryReader::from_file(path);
  if (reader.read_u32() != kMagic) throw std::runtime_error("checkpoint: bad magic in " + path);
  if (reader.read_u32() != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version in " + path);
  }
  const Architecture arch = architecture_from_string(reader.read_string());
  const std::int64_t in_channels = reader.read_i64();
  const std::int64_t input_size = reader.read_i64();
  const std::int64_t num_classes = reader.read_i64();

  // Seed is irrelevant: every weight is overwritten below.
  Network network = make_network(arch, in_channels, input_size, num_classes, /*seed=*/0);
  const std::vector<StateTensor> state = network.state();
  const std::int64_t count = reader.read_i64();
  if (count != static_cast<std::int64_t>(state.size())) {
    throw std::runtime_error("checkpoint: state count mismatch in " + path);
  }
  for (const StateTensor& entry : state) {
    const std::string name = reader.read_string();
    if (name != entry.name) {
      throw std::runtime_error("checkpoint: state order mismatch (" + name + " vs " + entry.name +
                               ") in " + path);
    }
    std::vector<float> values = reader.read_floats();
    if (static_cast<std::int64_t>(values.size()) != entry.tensor->numel()) {
      throw std::runtime_error("checkpoint: tensor size mismatch for " + name + " in " + path);
    }
    std::copy(values.begin(), values.end(), entry.tensor->data().begin());
  }
  return network;
}

Network clone_network(Network& source) {
  Network copy = make_network(source.architecture(), source.in_channels(), source.input_size(),
                              source.num_classes(), /*seed=*/0);
  const std::vector<StateTensor> src_state = source.state();
  const std::vector<StateTensor> dst_state = copy.state();
  if (src_state.size() != dst_state.size()) {
    throw std::runtime_error("clone_network: state layout mismatch");
  }
  for (std::size_t i = 0; i < src_state.size(); ++i) {
    *dst_state[i].tensor = *src_state[i].tensor;
  }
  copy.set_training(false);
  return copy;
}

std::int64_t network_resident_bytes(Network& network) {
  std::int64_t total = 0;
  for (const StateTensor& entry : network.state()) {
    total += entry.tensor->numel() * static_cast<std::int64_t>(sizeof(float));
  }
  for (const Parameter* parameter : network.parameters()) {
    total += parameter->grad.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return total;
}

}  // namespace usb
