#include "nn/checkpoint.h"

#include <stdexcept>

#include "utils/serialize.h"

namespace usb {
namespace {
constexpr std::uint32_t kMagic = 0x43425355;  // "USBC" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_checkpoint(const Network& network, const std::string& path) {
  BinaryWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_string(to_string(network.architecture()));
  writer.write_i64(network.in_channels());
  writer.write_i64(network.input_size());
  writer.write_i64(network.num_classes());

  const std::vector<ConstStateTensor> state = network.state_view();
  writer.write_i64(static_cast<std::int64_t>(state.size()));
  for (const ConstStateTensor& entry : state) {
    writer.write_string(entry.name);
    writer.write_floats(entry.tensor->data());
  }
  writer.save(path);
}

Network load_checkpoint(const std::string& path) {
  BinaryReader reader = BinaryReader::from_file(path);
  const std::uint32_t magic = reader.read_u32();
  if (magic != kMagic) {
    throw std::runtime_error("checkpoint: bad magic 0x" + std::to_string(magic) + " (want 0x" +
                             std::to_string(kMagic) + ") in " + path);
  }
  const std::uint32_t version = reader.read_u32();
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " + std::to_string(version) +
                             " (want " + std::to_string(kVersion) + ") in " + path);
  }
  // From here every reader throw (truncation, a bogus length, an unknown
  // architecture string) is re-thrown with the path attached: a store
  // loading many refs must be able to say WHICH file was bad.
  try {
    const std::string arch_name = reader.read_string();
    const Architecture arch = architecture_from_string(arch_name);
    const std::int64_t in_channels = reader.read_i64();
    const std::int64_t input_size = reader.read_i64();
    const std::int64_t num_classes = reader.read_i64();

    // Seed is irrelevant: every weight is overwritten below.
    Network network = make_network(arch, in_channels, input_size, num_classes, /*seed=*/0);
    const std::vector<StateTensor> state = network.state();
    const std::int64_t count = reader.read_i64();
    if (count != static_cast<std::int64_t>(state.size())) {
      throw std::runtime_error("state count mismatch: file has " + std::to_string(count) +
                               ", " + arch_name + " needs " + std::to_string(state.size()));
    }
    for (const StateTensor& entry : state) {
      const std::string name = reader.read_string();
      if (name != entry.name) {
        throw std::runtime_error("state order mismatch: file has '" + name + "' where '" +
                                 entry.name + "' belongs");
      }
      std::vector<float> values = reader.read_floats();
      if (static_cast<std::int64_t>(values.size()) != entry.tensor->numel()) {
        throw std::runtime_error("tensor size mismatch for '" + name + "': file has " +
                                 std::to_string(values.size()) + " floats, tensor holds " +
                                 std::to_string(entry.tensor->numel()));
      }
      std::copy(values.begin(), values.end(), entry.tensor->data().begin());
    }
    return network;
  } catch (const std::exception& error) {
    throw std::runtime_error("checkpoint: " + std::string(error.what()) + " in " + path);
  }
}

Network clone_network(const Network& source) {
  Network copy = make_network(source.architecture(), source.in_channels(), source.input_size(),
                              source.num_classes(), /*seed=*/0);
  const std::vector<ConstStateTensor> src_state = source.state_view();
  const std::vector<StateTensor> dst_state = copy.state();
  if (src_state.size() != dst_state.size()) {
    throw std::runtime_error("clone_network: state layout mismatch");
  }
  for (std::size_t i = 0; i < src_state.size(); ++i) {
    *dst_state[i].tensor = *src_state[i].tensor;
  }
  copy.set_training(false);
  return copy;
}

std::int64_t network_resident_bytes(const Network& network) {
  std::int64_t total = 0;
  for (const ConstStateTensor& entry : network.state_view()) {
    total += entry.tensor->numel() * static_cast<std::int64_t>(sizeof(float));
  }
  for (const Parameter* parameter : network.parameters_view()) {
    total += parameter->grad.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return total;
}

}  // namespace usb
