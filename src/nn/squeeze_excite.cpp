#include "nn/squeeze_excite.h"

#include "tensor/elementwise.h"
#include "tensor/tensor_ops.h"

namespace usb {

SqueezeExcite::SqueezeExcite(std::int64_t channels, std::int64_t reduced, Rng& rng)
    : channels_(channels), fc1_(channels, reduced, rng), fc2_(reduced, channels, rng) {}

Tensor SqueezeExcite::forward(const Tensor& x) {
  cached_input_own_ = x;
  cached_input_ = &cached_input_own_;
  const std::int64_t batch = x.dim(0);

  Tensor squeezed = global_avgpool_forward(x).reshaped(Shape{batch, channels_});
  Tensor gates = gate_.forward(fc2_.forward(act_.forward(fc1_.forward(squeezed))));
  cached_gates_own_ = gates;
  cached_gates_ = &cached_gates_own_;

  Tensor y(x.shape());
  gate_input(x, gates, y);
  return y;
}

const Tensor& SqueezeExcite::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_ = &x;
  const std::int64_t batch = x.dim(0);

  Tensor& squeezed = arena.alloc(Shape{batch, channels_, 1, 1});
  global_avgpool_forward_into(x, squeezed);
  squeezed.reshape_in_place(Shape{batch, channels_});
  const Tensor& gates = gate_.forward_into(
      fc2_.forward_into(act_.forward_into(fc1_.forward_into(squeezed, arena), arena), arena),
      arena);
  cached_gates_ = &gates;

  Tensor& y = arena.alloc(x.shape());
  gate_input(x, gates, y);
  return y;
}

void SqueezeExcite::gate_input(const Tensor& x, const Tensor& gates, Tensor& y) const {
  const std::int64_t batch = x.dim(0);
  const std::int64_t spatial = x.dim(2) * x.dim(3);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const std::int64_t offset = (n * channels_ + c) * spatial;
      ew::scale_into(x.raw() + offset, gates.at2(n, c), y.raw() + offset, spatial);
    }
  }
}

void SqueezeExcite::backward_direct(const Tensor& grad_out, Tensor& dx) {
  const std::int64_t batch = grad_out.dim(0);
  const std::int64_t spatial = grad_out.dim(2) * grad_out.dim(3);

  // d/dgates: sum over spatial of dy * x (scalar double reduction, by the
  // bit-identity contract). d/dx (direct path): dy * gate.
  dgates_scratch_.ensure_shape(Shape{batch, channels_});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float g = cached_gates_->at2(n, c);
      const float* dy_p = grad_out.raw() + (n * channels_ + c) * spatial;
      const float* x_p = cached_input_->raw() + (n * channels_ + c) * spatial;
      float* dx_p = dx.raw() + (n * channels_ + c) * spatial;
      double acc = 0.0;
      for (std::int64_t s = 0; s < spatial; ++s) {
        acc += static_cast<double>(dy_p[s]) * x_p[s];
        dx_p[s] = dy_p[s] * g;
      }
      dgates_scratch_.at2(n, c) = static_cast<float>(acc);
    }
  }
}

Tensor SqueezeExcite::backward(const Tensor& grad_out) {
  const std::int64_t batch = grad_out.dim(0);
  Tensor dx(grad_out.shape());
  backward_direct(grad_out, dx);

  // Through the gate MLP back to the squeezed vector, then scatter the
  // squeeze (spatial mean) gradient back over the input.
  Tensor dsqueezed =
      fc1_.backward(act_.backward(fc2_.backward(gate_.backward(dgates_scratch_))));
  Tensor dsq4 = dsqueezed.reshaped(Shape{batch, channels_, 1, 1});
  dx += global_avgpool_backward(dsq4, cached_input_->shape());
  return dx;
}

Tensor& SqueezeExcite::backward_into(const Tensor& grad_out, TensorArena& arena) {
  const std::int64_t batch = grad_out.dim(0);
  Tensor& dx = arena.alloc(grad_out.shape());
  backward_direct(grad_out, dx);

  Tensor& dsqueezed = fc1_.backward_into(
      act_.backward_into(fc2_.backward_into(gate_.backward_into(dgates_scratch_, arena), arena),
                         arena),
      arena);
  dsqueezed.reshape_in_place(Shape{batch, channels_, 1, 1});
  Tensor& scatter = arena.alloc(cached_input_->shape());
  global_avgpool_backward_into(dsqueezed, cached_input_->shape(), scatter);
  dx += scatter;
  return dx;
}

void SqueezeExcite::collect_parameters(std::vector<Parameter*>& out) {
  fc1_.collect_parameters(out);
  fc2_.collect_parameters(out);
}

void SqueezeExcite::collect_state(std::vector<StateTensor>& out) {
  fc1_.collect_state(out);
  fc2_.collect_state(out);
}

void SqueezeExcite::set_training(bool training) {
  Module::set_training(training);
  fc1_.set_training(training);
  act_.set_training(training);
  fc2_.set_training(training);
  gate_.set_training(training);
}

void SqueezeExcite::set_param_grads_enabled(bool enabled) {
  Module::set_param_grads_enabled(enabled);
  fc1_.set_param_grads_enabled(enabled);
  fc2_.set_param_grads_enabled(enabled);
}

namespace {

Conv2dSpec pointwise(std::int64_t in, std::int64_t out) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 1;
  return spec;
}

Conv2dSpec depthwise3x3(std::int64_t channels, std::int64_t stride) {
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  spec.kernel = 3;
  spec.stride = stride;
  spec.padding = 1;
  spec.groups = channels;
  return spec;
}

}  // namespace

MBConvBlock::MBConvBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride,
                         std::int64_t expand_ratio, Rng& rng)
    : has_expand_(expand_ratio > 1),
      has_skip_(stride == 1 && in_channels == out_channels),
      depthwise_(depthwise3x3(in_channels * expand_ratio, stride), rng, /*with_bias=*/false),
      dw_bn_(in_channels * expand_ratio),
      se_(in_channels * expand_ratio, std::max<std::int64_t>(1, in_channels / 4), rng),
      project_(pointwise(in_channels * expand_ratio, out_channels), rng, /*with_bias=*/false),
      project_bn_(out_channels) {
  if (has_expand_) {
    expand_conv_ = std::make_unique<Conv2d>(pointwise(in_channels, in_channels * expand_ratio),
                                            rng, /*with_bias=*/false);
    expand_bn_ = std::make_unique<BatchNorm2d>(in_channels * expand_ratio);
    expand_act_ = std::make_unique<SiLU>();
  }
}

Tensor MBConvBlock::forward(const Tensor& x) {
  Tensor h = x;
  if (has_expand_) {
    h = expand_act_->forward(expand_bn_->forward(expand_conv_->forward(h)));
  }
  h = dw_act_.forward(dw_bn_.forward(depthwise_.forward(h)));
  h = se_.forward(h);
  h = project_bn_.forward(project_.forward(h));
  if (has_skip_) h += x;
  return h;
}

const Tensor& MBConvBlock::forward_into(const Tensor& x, TensorArena& arena) {
  const Tensor* h = &x;
  if (has_expand_) {
    h = &expand_act_->forward_into(
        expand_bn_->forward_into(expand_conv_->forward_into(*h, arena), arena), arena);
  }
  h = &dw_act_.forward_into(dw_bn_.forward_into(depthwise_.forward_into(*h, arena), arena),
                            arena);
  h = &se_.forward_into(*h, arena);
  const Tensor& projected = project_bn_.forward_into(project_.forward_into(*h, arena), arena);
  if (!has_skip_) return projected;
  Tensor& y = arena.alloc(projected.shape());
  ew::add(projected.raw(), x.raw(), y.raw(), projected.numel());
  return y;
}

Tensor MBConvBlock::backward(const Tensor& grad_out) {
  Tensor grad = project_.backward(project_bn_.backward(grad_out));
  grad = se_.backward(grad);
  grad = depthwise_.backward(dw_bn_.backward(dw_act_.backward(grad)));
  if (has_expand_) {
    grad = expand_conv_->backward(expand_bn_->backward(expand_act_->backward(grad)));
  }
  if (has_skip_) grad += grad_out;
  return grad;
}

Tensor& MBConvBlock::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor* grad =
      &project_.backward_into(project_bn_.backward_into(grad_out, arena), arena);
  grad = &se_.backward_into(*grad, arena);
  grad = &depthwise_.backward_into(
      dw_bn_.backward_into(dw_act_.backward_into(*grad, arena), arena), arena);
  if (has_expand_) {
    grad = &expand_conv_->backward_into(
        expand_bn_->backward_into(expand_act_->backward_into(*grad, arena), arena), arena);
  }
  if (has_skip_) *grad += grad_out;
  return *grad;
}

void MBConvBlock::collect_parameters(std::vector<Parameter*>& out) {
  if (has_expand_) {
    expand_conv_->collect_parameters(out);
    expand_bn_->collect_parameters(out);
  }
  depthwise_.collect_parameters(out);
  dw_bn_.collect_parameters(out);
  se_.collect_parameters(out);
  project_.collect_parameters(out);
  project_bn_.collect_parameters(out);
}

void MBConvBlock::collect_state(std::vector<StateTensor>& out) {
  if (has_expand_) {
    expand_conv_->collect_state(out);
    expand_bn_->collect_state(out);
  }
  depthwise_.collect_state(out);
  dw_bn_.collect_state(out);
  se_.collect_state(out);
  project_.collect_state(out);
  project_bn_.collect_state(out);
}

void MBConvBlock::set_training(bool training) {
  Module::set_training(training);
  if (has_expand_) {
    expand_conv_->set_training(training);
    expand_bn_->set_training(training);
    expand_act_->set_training(training);
  }
  depthwise_.set_training(training);
  dw_bn_.set_training(training);
  dw_act_.set_training(training);
  se_.set_training(training);
  project_.set_training(training);
  project_bn_.set_training(training);
}

void MBConvBlock::set_param_grads_enabled(bool enabled) {
  Module::set_param_grads_enabled(enabled);
  if (has_expand_) {
    expand_conv_->set_param_grads_enabled(enabled);
    expand_bn_->set_param_grads_enabled(enabled);
  }
  depthwise_.set_param_grads_enabled(enabled);
  dw_bn_.set_param_grads_enabled(enabled);
  se_.set_param_grads_enabled(enabled);
  project_.set_param_grads_enabled(enabled);
  project_bn_.set_param_grads_enabled(enabled);
}

}  // namespace usb
