// Fully connected layer: y = x W^T + b.
#pragma once

#include "nn/module.h"
#include "utils/rng.h"

namespace usb {

class Linear final : public Module {
 public:
  /// Weight (out_features, in_features) Kaiming-initialized; bias zero.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::int64_t in_features() const noexcept { return in_features_; }
  [[nodiscard]] std::int64_t out_features() const noexcept { return out_features_; }
  [[nodiscard]] Parameter& weight() noexcept { return weight_; }
  [[nodiscard]] Parameter& bias() noexcept { return bias_; }

 private:
  void forward_core(const Tensor& x, Tensor& y);
  void backward_core(const Tensor& grad_out, Tensor& dx);

  std::int64_t in_features_;
  std::int64_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_own_;
  const Tensor* cached_input_ = nullptr;
};

}  // namespace usb
