#include "nn/trainer.h"

#include "data/dataloader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "utils/logging.h"

namespace usb {

TrainResult train_network(Network& network, const Dataset& train_set, const TrainConfig& config) {
  network.set_training(true);
  network.set_param_grads_enabled(true);
  SgdConfig sgd_config;
  sgd_config.lr = config.lr;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  Sgd optimizer(network.parameters(), sgd_config);
  SoftmaxCrossEntropy loss;
  DataLoader loader(train_set, config.batch_size, /*shuffle=*/true, config.seed);

  TrainResult result;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    loader.new_epoch();
    Batch batch;
    double epoch_loss = 0.0;
    std::int64_t epoch_correct = 0;
    std::int64_t epoch_total = 0;
    std::int64_t batches = 0;
    while (loader.next(batch)) {
      optimizer.zero_grad();
      const Tensor logits = network.forward(batch.images);
      const float batch_loss = loss.forward(logits, batch.labels);
      const Tensor grad_input = network.backward(loss.backward());
      (void)grad_input;  // input grads unused during weight training
      optimizer.step();

      const std::vector<std::int64_t> predicted = argmax_rows(logits);
      for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i] == batch.labels[i]) ++epoch_correct;
      }
      epoch_total += static_cast<std::int64_t>(predicted.size());
      epoch_loss += batch_loss;
      ++batches;
      ++result.steps;
    }
    result.final_train_loss = static_cast<float>(epoch_loss / std::max<std::int64_t>(1, batches));
    result.final_train_accuracy =
        static_cast<float>(epoch_correct) / static_cast<float>(std::max<std::int64_t>(1, epoch_total));
    if (config.verbose) {
      USB_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                    << " loss=" << result.final_train_loss
                    << " acc=" << result.final_train_accuracy << " lr=" << optimizer.lr();
    }
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
  }
  network.set_training(false);
  return result;
}

float evaluate_accuracy(Network& network, const Dataset& test_set, std::int64_t batch_size) {
  network.set_training(false);
  DataLoader loader(test_set, batch_size, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::int64_t correct = 0;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    const Tensor logits = network.forward(batch.images);
    const std::vector<std::int64_t> predicted = argmax_rows(logits);
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i] == batch.labels[i]) ++correct;
    }
    total += static_cast<std::int64_t>(predicted.size());
  }
  return total == 0 ? 0.0F : static_cast<float>(correct) / static_cast<float>(total);
}

float targeted_success_rate(
    Network& network, const Dataset& test_set, std::int64_t target_class,
    const std::function<Tensor(const Tensor&, std::span<const std::int64_t>)>& transform,
    std::int64_t batch_size) {
  network.set_training(false);
  DataLoader loader(test_set, batch_size, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    const Tensor stamped = transform(batch.images, batch.indices);
    const Tensor logits = network.forward(stamped);
    const std::vector<std::int64_t> predicted = argmax_rows(logits);
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      if (batch.labels[i] == target_class) continue;  // already the target
      if (predicted[i] == target_class) ++hits;
      ++total;
    }
  }
  return total == 0 ? 0.0F : static_cast<float>(hits) / static_cast<float>(total);
}

}  // namespace usb
