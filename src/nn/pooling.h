// Pooling layers wrapping the tensor kernels.
#pragma once

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace usb {

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(Pool2dSpec spec) : spec_(spec) {}

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  Pool2dSpec spec_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> cached_argmax_;  // capacity recycled across steps
};

class AvgPool2d final : public Module {
 public:
  explicit AvgPool2d(Pool2dSpec spec) : spec_(spec) {}

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

 private:
  Pool2dSpec spec_;
  Shape cached_input_shape_;
};

/// (N,C,H,W) -> (N,C,1,1) spatial mean; the classifier-head pool.
class GlobalAvgPool final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_input_shape_;
};

/// (N,C,H,W) -> (N, C*H*W).
class Flatten final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace usb
