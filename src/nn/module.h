// Layer abstraction with explicit forward/backward.
//
// There is no autograd tape: each Module caches what its own backward needs
// during forward and implements the exact gradient. `backward(grad_out)`
// returns the gradient with respect to the module INPUT and accumulates
// gradients into its Parameters. Input gradients are first-class because
// every algorithm in the paper (DeepFool, targeted UAP, NC/TABOR/USB trigger
// optimization) differentiates with respect to images, not just weights.
//
// Contract: backward must be called after the forward whose activations it
// consumes, with a grad_out shaped like that forward's output. Modules are
// not reentrant across interleaved forwards (the training and detection
// loops in this repo never need that).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace usb {

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)), value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0F); }
};

/// Named view of a tensor that must be serialized with the model: learnable
/// parameters plus non-learnable buffers (e.g. BatchNorm running stats).
struct StateTensor {
  std::string name;
  Tensor* tensor = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the module output, caching whatever backward() needs.
  [[nodiscard]] virtual Tensor forward(const Tensor& x) = 0;

  /// Returns dL/dinput given dL/doutput; accumulates parameter gradients.
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Arena-backed forward: bit-identical to forward(), but the output (and
  /// any intermediate) lives in `arena` slots, so a steady-state loop that
  /// resets the arena between steps performs zero Tensor heap allocations.
  /// Additional contract on top of forward()'s: the input `x` and the
  /// returned reference must stay alive (no arena reset) until the matching
  /// backward/backward_into has consumed this forward's caches — layers on
  /// this path cache borrowed pointers instead of copies. The default is an
  /// adapter for layers without a native arena body.
  [[nodiscard]] virtual const Tensor& forward_into(const Tensor& x, TensorArena& arena) {
    return arena.adopt(forward(x));
  }

  /// Arena-backed backward; same pairing rules as backward(). Returns a
  /// mutable reference so callers can fold extra gradient terms in place
  /// (e.g. the SSIM term of USB's Alg. 2).
  [[nodiscard]] virtual Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) {
    return arena.adopt(backward(grad_out));
  }

  /// Appends pointers to learnable parameters (default: none).
  virtual void collect_parameters(std::vector<Parameter*>& /*out*/) {}

  /// Appends all tensors to serialize: parameters plus buffers.
  virtual void collect_state(std::vector<StateTensor>& out) {
    std::vector<Parameter*> params;
    collect_parameters(params);
    for (Parameter* p : params) out.push_back(StateTensor{p->name, &p->value});
  }

  /// Switches train/eval behaviour (BatchNorm is the only mode-sensitive
  /// layer in this library).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  /// Disables parameter-gradient accumulation. Detection algorithms only
  /// need dL/dinput on a frozen model; skipping the dW/db kernels roughly
  /// halves the cost of every backward pass.
  virtual void set_param_grads_enabled(bool enabled) { param_grads_enabled_ = enabled; }
  [[nodiscard]] bool param_grads_enabled() const noexcept { return param_grads_enabled_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience: gathers parameters into a fresh vector.
  [[nodiscard]] std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  /// Zeroes all parameter gradients in this subtree.
  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

 protected:
  bool training_ = true;
  bool param_grads_enabled_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace usb
