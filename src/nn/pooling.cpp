#include "nn/pooling.h"

#include <algorithm>

namespace usb {

Tensor MaxPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  Tensor y;
  maxpool2d_forward_into(x, spec_, y, cached_argmax_);
  return y;
}

const Tensor& MaxPool2d::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_shape_ = x.shape();
  Tensor& y = arena.alloc(Shape{x.dim(0), x.dim(1), spec_.out_size(x.dim(2)),
                                spec_.out_size(x.dim(3))});
  maxpool2d_forward_into(x, spec_, y, cached_argmax_);
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  return maxpool2d_backward(grad_out, cached_argmax_, cached_input_shape_);
}

Tensor& MaxPool2d::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(cached_input_shape_);
  maxpool2d_backward_into(grad_out, cached_argmax_, cached_input_shape_, dx);
  return dx;
}

Tensor AvgPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return avgpool2d_forward(x, spec_);
}

const Tensor& AvgPool2d::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_shape_ = x.shape();
  Tensor& y = arena.alloc(Shape{x.dim(0), x.dim(1), spec_.out_size(x.dim(2)),
                                spec_.out_size(x.dim(3))});
  avgpool2d_forward_into(x, spec_, y);
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  return avgpool2d_backward(grad_out, cached_input_shape_, spec_);
}

Tensor& AvgPool2d::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(cached_input_shape_);
  avgpool2d_backward_into(grad_out, cached_input_shape_, spec_, dx);
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return global_avgpool_forward(x);
}

const Tensor& GlobalAvgPool::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_shape_ = x.shape();
  Tensor& y = arena.alloc(Shape{x.dim(0), x.dim(1), 1, 1});
  global_avgpool_forward_into(x, y);
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  return global_avgpool_backward(grad_out, cached_input_shape_);
}

Tensor& GlobalAvgPool::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(cached_input_shape_);
  global_avgpool_backward_into(grad_out, cached_input_shape_, dx);
  return dx;
}

Tensor Flatten::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return x.reshaped(Shape{x.dim(0), x.numel() / x.dim(0)});
}

const Tensor& Flatten::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_shape_ = x.shape();
  Tensor& y = arena.alloc(Shape{x.dim(0), x.numel() / x.dim(0)});
  std::copy(x.raw(), x.raw() + x.numel(), y.raw());
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_input_shape_);
}

Tensor& Flatten::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(cached_input_shape_);
  std::copy(grad_out.raw(), grad_out.raw() + grad_out.numel(), dx.raw());
  return dx;
}

}  // namespace usb
