#include "nn/pooling.h"

namespace usb {

Tensor MaxPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  MaxPoolResult result = maxpool2d_forward(x, spec_);
  cached_argmax_ = std::move(result.argmax);
  return std::move(result.y);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  return maxpool2d_backward(grad_out, cached_argmax_, cached_input_shape_);
}

Tensor AvgPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return avgpool2d_forward(x, spec_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  return avgpool2d_backward(grad_out, cached_input_shape_, spec_);
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  return global_avgpool_backward(grad_out, cached_input_shape_);
}

Tensor Flatten::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return x.reshaped(Shape{x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_input_shape_);
}

}  // namespace usb
