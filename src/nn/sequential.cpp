#include "nn/sequential.h"

#include <algorithm>
#include <stdexcept>

namespace usb {

Sequential& Sequential::add(ModulePtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) { return forward_range(x, 0, size()); }

Tensor Sequential::backward(const Tensor& grad_out) { return backward_range(grad_out, 0, size()); }

const Tensor& Sequential::forward_into(const Tensor& x, TensorArena& arena) {
  const Tensor* activation = &x;
  for (const ModulePtr& layer : layers_) {
    activation = &layer->forward_into(*activation, arena);
  }
  return *activation;
}

Tensor& Sequential::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor* grad = nullptr;
  const Tensor* upstream = &grad_out;
  for (std::int64_t i = size() - 1; i >= 0; --i) {
    grad = &layers_[static_cast<std::size_t>(i)]->backward_into(*upstream, arena);
    upstream = grad;
  }
  // An empty Sequential degenerates to identity: park a copy in the arena.
  if (grad == nullptr) {
    Tensor& dx = arena.alloc(grad_out.shape());
    std::copy(grad_out.raw(), grad_out.raw() + grad_out.numel(), dx.raw());
    return dx;
  }
  return *grad;
}

Tensor Sequential::forward_range(const Tensor& x, std::int64_t begin, std::int64_t end) {
  if (begin < 0 || end > size() || begin > end) {
    throw std::out_of_range("Sequential::forward_range: bad range");
  }
  Tensor activation = x;
  for (std::int64_t i = begin; i < end; ++i) {
    activation = layers_[static_cast<std::size_t>(i)]->forward(activation);
  }
  return activation;
}

Tensor Sequential::backward_range(const Tensor& grad_out, std::int64_t begin, std::int64_t end) {
  if (begin < 0 || end > size() || begin > end) {
    throw std::out_of_range("Sequential::backward_range: bad range");
  }
  Tensor grad = grad_out;
  for (std::int64_t i = end - 1; i >= begin; --i) {
    grad = layers_[static_cast<std::size_t>(i)]->backward(grad);
  }
  return grad;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (const ModulePtr& layer : layers_) layer->collect_parameters(out);
}

void Sequential::collect_state(std::vector<StateTensor>& out) {
  for (const ModulePtr& layer : layers_) layer->collect_state(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (const ModulePtr& layer : layers_) layer->set_training(training);
}

void Sequential::set_param_grads_enabled(bool enabled) {
  Module::set_param_grads_enabled(enabled);
  for (const ModulePtr& layer : layers_) layer->set_param_grads_enabled(enabled);
}

}  // namespace usb
