#include "nn/residual.h"

#include "tensor/elementwise.h"

namespace usb {
namespace {

Conv2dSpec conv3x3(std::int64_t in, std::int64_t out, std::int64_t stride) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 3;
  spec.stride = stride;
  spec.padding = 1;
  return spec;
}

Conv2dSpec conv1x1(std::int64_t in, std::int64_t out, std::int64_t stride) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 1;
  spec.stride = stride;
  spec.padding = 0;
  return spec;
}

}  // namespace

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, Rng& rng)
    : conv1_(conv3x3(in_channels, out_channels, stride), rng, /*with_bias=*/false),
      bn1_(out_channels),
      conv2_(conv3x3(out_channels, out_channels, 1), rng, /*with_bias=*/false),
      bn2_(out_channels),
      has_projection_(stride != 1 || in_channels != out_channels) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(conv1x1(in_channels, out_channels, stride), rng,
                                          /*with_bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor main = bn1_.forward(conv1_.forward(x));
  cached_relu1_input_own_ = main;
  cached_relu1_input_ = &cached_relu1_input_own_;
  ew::relu_fwd(cached_relu1_input_own_.raw(), main.raw(), main.numel());
  main = bn2_.forward(conv2_.forward(main));

  Tensor shortcut = has_projection_ ? proj_bn_->forward(proj_conv_->forward(x)) : x;
  main += shortcut;
  cached_sum_own_ = main;
  cached_sum_ = &cached_sum_own_;
  ew::relu_fwd(cached_sum_own_.raw(), main.raw(), main.numel());
  return main;
}

const Tensor& ResidualBlock::forward_into(const Tensor& x, TensorArena& arena) {
  const Tensor& pre1 = bn1_.forward_into(conv1_.forward_into(x, arena), arena);
  cached_relu1_input_ = &pre1;
  Tensor& act1 = arena.alloc(pre1.shape());
  ew::relu_fwd(pre1.raw(), act1.raw(), pre1.numel());

  const Tensor& main = bn2_.forward_into(conv2_.forward_into(act1, arena), arena);
  const Tensor& shortcut =
      has_projection_ ? proj_bn_->forward_into(proj_conv_->forward_into(x, arena), arena) : x;
  Tensor& sum = arena.alloc(main.shape());
  ew::add(main.raw(), shortcut.raw(), sum.raw(), main.numel());
  cached_sum_ = &sum;
  Tensor& y = arena.alloc(sum.shape());
  ew::relu_fwd(sum.raw(), y.raw(), sum.numel());
  return y;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  // Through the output ReLU.
  Tensor grad_sum(grad_out.shape());
  ew::relu_bwd(cached_sum_->raw(), grad_out.raw(), grad_sum.raw(), grad_out.numel());

  // Main path.
  Tensor grad_pre = conv2_.backward(bn2_.backward(grad_sum));
  Tensor grad_main(grad_pre.shape());
  ew::relu_bwd(cached_relu1_input_->raw(), grad_pre.raw(), grad_main.raw(), grad_pre.numel());
  Tensor dx = conv1_.backward(bn1_.backward(grad_main));

  // Shortcut path.
  if (has_projection_) {
    dx += proj_conv_->backward(proj_bn_->backward(grad_sum));
  } else {
    dx += grad_sum;
  }
  return dx;
}

Tensor& ResidualBlock::backward_into(const Tensor& grad_out, TensorArena& arena) {
  // Through the output ReLU.
  Tensor& grad_sum = arena.alloc(grad_out.shape());
  ew::relu_bwd(cached_sum_->raw(), grad_out.raw(), grad_sum.raw(), grad_out.numel());

  // Main path.
  const Tensor& grad_pre = conv2_.backward_into(bn2_.backward_into(grad_sum, arena), arena);
  Tensor& grad_main = arena.alloc(grad_pre.shape());
  ew::relu_bwd(cached_relu1_input_->raw(), grad_pre.raw(), grad_main.raw(), grad_pre.numel());
  Tensor& dx = conv1_.backward_into(bn1_.backward_into(grad_main, arena), arena);

  // Shortcut path.
  if (has_projection_) {
    dx += proj_conv_->backward_into(proj_bn_->backward_into(grad_sum, arena), arena);
  } else {
    dx += grad_sum;
  }
  return dx;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  bn2_.collect_parameters(out);
  if (has_projection_) {
    proj_conv_->collect_parameters(out);
    proj_bn_->collect_parameters(out);
  }
}

void ResidualBlock::collect_state(std::vector<StateTensor>& out) {
  conv1_.collect_state(out);
  bn1_.collect_state(out);
  conv2_.collect_state(out);
  bn2_.collect_state(out);
  if (has_projection_) {
    proj_conv_->collect_state(out);
    proj_bn_->collect_state(out);
  }
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  conv1_.set_training(training);
  bn1_.set_training(training);
  conv2_.set_training(training);
  bn2_.set_training(training);
  if (has_projection_) {
    proj_conv_->set_training(training);
    proj_bn_->set_training(training);
  }
}

void ResidualBlock::set_param_grads_enabled(bool enabled) {
  Module::set_param_grads_enabled(enabled);
  conv1_.set_param_grads_enabled(enabled);
  bn1_.set_param_grads_enabled(enabled);
  conv2_.set_param_grads_enabled(enabled);
  bn2_.set_param_grads_enabled(enabled);
  if (has_projection_) {
    proj_conv_->set_param_grads_enabled(enabled);
    proj_bn_->set_param_grads_enabled(enabled);
  }
}

}  // namespace usb
