#include "nn/residual.h"

namespace usb {
namespace {

Conv2dSpec conv3x3(std::int64_t in, std::int64_t out, std::int64_t stride) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 3;
  spec.stride = stride;
  spec.padding = 1;
  return spec;
}

Conv2dSpec conv1x1(std::int64_t in, std::int64_t out, std::int64_t stride) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 1;
  spec.stride = stride;
  spec.padding = 0;
  return spec;
}

}  // namespace

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, Rng& rng)
    : conv1_(conv3x3(in_channels, out_channels, stride), rng, /*with_bias=*/false),
      bn1_(out_channels),
      conv2_(conv3x3(out_channels, out_channels, 1), rng, /*with_bias=*/false),
      bn2_(out_channels),
      has_projection_(stride != 1 || in_channels != out_channels) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(conv1x1(in_channels, out_channels, stride), rng,
                                          /*with_bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor main = bn1_.forward(conv1_.forward(x));
  cached_relu1_input_ = main;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0F) main[i] = 0.0F;
  }
  main = bn2_.forward(conv2_.forward(main));

  Tensor shortcut = has_projection_ ? proj_bn_->forward(proj_conv_->forward(x)) : x;
  main += shortcut;
  cached_sum_ = main;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0F) main[i] = 0.0F;
  }
  return main;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  // Through the output ReLU.
  Tensor grad_sum = grad_out;
  for (std::int64_t i = 0; i < grad_sum.numel(); ++i) {
    if (cached_sum_[i] <= 0.0F) grad_sum[i] = 0.0F;
  }

  // Main path.
  Tensor grad_main = conv2_.backward(bn2_.backward(grad_sum));
  for (std::int64_t i = 0; i < grad_main.numel(); ++i) {
    if (cached_relu1_input_[i] <= 0.0F) grad_main[i] = 0.0F;
  }
  Tensor dx = conv1_.backward(bn1_.backward(grad_main));

  // Shortcut path.
  if (has_projection_) {
    dx += proj_conv_->backward(proj_bn_->backward(grad_sum));
  } else {
    dx += grad_sum;
  }
  return dx;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  bn2_.collect_parameters(out);
  if (has_projection_) {
    proj_conv_->collect_parameters(out);
    proj_bn_->collect_parameters(out);
  }
}

void ResidualBlock::collect_state(std::vector<StateTensor>& out) {
  conv1_.collect_state(out);
  bn1_.collect_state(out);
  conv2_.collect_state(out);
  bn2_.collect_state(out);
  if (has_projection_) {
    proj_conv_->collect_state(out);
    proj_bn_->collect_state(out);
  }
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  conv1_.set_training(training);
  bn1_.set_training(training);
  conv2_.set_training(training);
  bn2_.set_training(training);
  if (has_projection_) {
    proj_conv_->set_training(training);
    proj_bn_->set_training(training);
  }
}

void ResidualBlock::set_param_grads_enabled(bool enabled) {
  Module::set_param_grads_enabled(enabled);
  conv1_.set_param_grads_enabled(enabled);
  bn1_.set_param_grads_enabled(enabled);
  conv2_.set_param_grads_enabled(enabled);
  bn2_.set_param_grads_enabled(enabled);
  if (has_projection_) {
    proj_conv_->set_param_grads_enabled(enabled);
    proj_bn_->set_param_grads_enabled(enabled);
  }
}

}  // namespace usb
