// Basic residual block (the CIFAR-style ResNet building block):
//   y = ReLU( BN(Conv3x3(BN(Conv3x3(x)) relu)) + shortcut(x) )
// with an optional 1x1 strided projection shortcut when the shape changes.
#pragma once

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/module.h"

namespace usb {

class ResidualBlock final : public Module {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride,
                Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<StateTensor>& out) override;
  void set_training(bool training) override;
  void set_param_grads_enabled(bool enabled) override;
  [[nodiscard]] std::string name() const override { return "ResidualBlock"; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  bool has_projection_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<BatchNorm2d> proj_bn_;

  // Pre-activation caches: owned copies on the allocating path, borrowed
  // arena slots on the forward_into path (Module::forward_into contract).
  Tensor cached_relu1_input_own_;
  Tensor cached_sum_own_;
  const Tensor* cached_relu1_input_ = nullptr;  // pre-activation, inner ReLU
  const Tensor* cached_sum_ = nullptr;          // pre-activation, output ReLU
};

}  // namespace usb
