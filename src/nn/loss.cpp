#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/elementwise.h"
#include "tensor/tensor_ops.h"

namespace usb {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits/labels mismatch");
  }
  softmax_rows_into(logits, cached_probs_);
  cached_labels_ = labels;
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float p = cached_probs_[r * cols + labels[static_cast<std::size_t>(r)]];
    loss -= std::log(std::max(p, 1e-12F));
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

void SoftmaxCrossEntropy::backward_core(Tensor& grad) const {
  const std::int64_t rows = cached_probs_.dim(0);
  const std::int64_t cols = cached_probs_.dim(1);
  grad.ensure_shape(cached_probs_.shape());
  std::copy(cached_probs_.raw(), cached_probs_.raw() + cached_probs_.numel(), grad.raw());
  const float inv_rows = 1.0F / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    grad[r * cols + cached_labels_[static_cast<std::size_t>(r)]] -= 1.0F;
    ew::scale(grad.raw() + r * cols, inv_rows, cols);
  }
}

Tensor SoftmaxCrossEntropy::backward() const {
  Tensor grad;
  backward_core(grad);
  return grad;
}

Tensor& SoftmaxCrossEntropy::backward_into(TensorArena& arena) const {
  Tensor& grad = arena.alloc(cached_probs_.shape());
  backward_core(grad);
  return grad;
}

float TargetedCrossEntropy::forward(const Tensor& logits, std::int64_t target_class) {
  if (logits.rank() != 2 || target_class < 0 || target_class >= logits.dim(1)) {
    throw std::invalid_argument("TargetedCrossEntropy: bad logits or target");
  }
  softmax_rows_into(logits, cached_probs_);
  cached_target_ = target_class;
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    loss -= std::log(std::max(cached_probs_[r * cols + target_class], 1e-12F));
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

void TargetedCrossEntropy::backward_core(Tensor& grad) const {
  const std::int64_t rows = cached_probs_.dim(0);
  const std::int64_t cols = cached_probs_.dim(1);
  grad.ensure_shape(cached_probs_.shape());
  std::copy(cached_probs_.raw(), cached_probs_.raw() + cached_probs_.numel(), grad.raw());
  const float inv_rows = 1.0F / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    grad[r * cols + cached_target_] -= 1.0F;
    ew::scale(grad.raw() + r * cols, inv_rows, cols);
  }
}

Tensor TargetedCrossEntropy::backward() const {
  Tensor grad;
  backward_core(grad);
  return grad;
}

Tensor& TargetedCrossEntropy::backward_into(TensorArena& arena) const {
  Tensor& grad = arena.alloc(cached_probs_.shape());
  backward_core(grad);
  return grad;
}

float MeanSquaredError::forward(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("MeanSquaredError: shape mismatch");
  }
  cached_diff_ = prediction;
  cached_diff_ -= target;
  return cached_diff_.sq_sum() / static_cast<float>(cached_diff_.numel());
}

void MeanSquaredError::backward_core(Tensor& grad) const {
  grad.ensure_shape(cached_diff_.shape());
  ew::scale_into(cached_diff_.raw(), 2.0F / static_cast<float>(cached_diff_.numel()), grad.raw(),
                 cached_diff_.numel());
}

Tensor MeanSquaredError::backward() const {
  Tensor grad;
  backward_core(grad);
  return grad;
}

Tensor& MeanSquaredError::backward_into(TensorArena& arena) const {
  Tensor& grad = arena.alloc(cached_diff_.shape());
  backward_core(grad);
  return grad;
}

}  // namespace usb
