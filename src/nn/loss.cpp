#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace usb {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits/labels mismatch");
  }
  cached_probs_ = softmax_rows(logits);
  cached_labels_ = labels;
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float p = cached_probs_[r * cols + labels[static_cast<std::size_t>(r)]];
    loss -= std::log(std::max(p, 1e-12F));
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

Tensor SoftmaxCrossEntropy::backward() const {
  const std::int64_t rows = cached_probs_.dim(0);
  const std::int64_t cols = cached_probs_.dim(1);
  Tensor grad = cached_probs_;
  const float inv_rows = 1.0F / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    grad[r * cols + cached_labels_[static_cast<std::size_t>(r)]] -= 1.0F;
    float* row = grad.raw() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv_rows;
  }
  return grad;
}

float TargetedCrossEntropy::forward(const Tensor& logits, std::int64_t target_class) {
  if (logits.rank() != 2 || target_class < 0 || target_class >= logits.dim(1)) {
    throw std::invalid_argument("TargetedCrossEntropy: bad logits or target");
  }
  cached_probs_ = softmax_rows(logits);
  cached_target_ = target_class;
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  double loss = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    loss -= std::log(std::max(cached_probs_[r * cols + target_class], 1e-12F));
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

Tensor TargetedCrossEntropy::backward() const {
  const std::int64_t rows = cached_probs_.dim(0);
  const std::int64_t cols = cached_probs_.dim(1);
  Tensor grad = cached_probs_;
  const float inv_rows = 1.0F / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    grad[r * cols + cached_target_] -= 1.0F;
    float* row = grad.raw() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv_rows;
  }
  return grad;
}

float MeanSquaredError::forward(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("MeanSquaredError: shape mismatch");
  }
  cached_diff_ = prediction;
  cached_diff_ -= target;
  return cached_diff_.sq_sum() / static_cast<float>(cached_diff_.numel());
}

Tensor MeanSquaredError::backward() const {
  Tensor grad = cached_diff_;
  grad *= 2.0F / static_cast<float>(grad.numel());
  return grad;
}

}  // namespace usb
