// Network: a classifier with a marked feature/head boundary, plus factories
// for the four architecture families the paper evaluates.
//
// Paper -> repo mapping (scaled for CPU; see DESIGN.md):
//   Basic model (Appendix A.7)  -> BasicCnn   (exact: conv(1,16,5) pool
//                                  conv(16,32,5) pool fc(512,512) fc(512,10))
//   ResNet-18                   -> MiniResNet (CIFAR-style residual stages)
//   VGG-16                      -> MiniVgg    (conv-conv-pool stacks)
//   EfficientNet-B0             -> MiniEffNet (MBConv + SE + SiLU stages)
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.h"
#include "utils/rng.h"

namespace usb {

enum class Architecture { kBasicCnn, kMiniResNet, kMiniVgg, kMiniEffNet };

[[nodiscard]] std::string to_string(Architecture arch);
[[nodiscard]] Architecture architecture_from_string(const std::string& text);

/// Read-only view of one named state tensor (Network::state_view()).
struct ConstStateTensor {
  std::string name;
  const Tensor* tensor = nullptr;
};

/// A trained or trainable classifier. Wraps the layer stack with the
/// metadata needed to reconstruct it from a checkpoint and with
/// feature/head split points for feature-space attacks.
class Network {
 public:
  Network(Architecture arch, std::int64_t in_channels, std::int64_t input_size,
          std::int64_t num_classes, std::unique_ptr<Sequential> layers,
          std::int64_t feature_boundary);

  Network(Network&&) noexcept = default;
  Network& operator=(Network&&) noexcept = default;

  /// Full forward pass: images (N,C,H,W) in [0,1] -> logits (N,classes).
  [[nodiscard]] Tensor forward(const Tensor& x);

  /// Full backward pass: dL/dlogits -> dL/dimages. Parameter gradients
  /// accumulate as a side effect (callers that only need input gradients
  /// zero them or ignore them).
  [[nodiscard]] Tensor backward(const Tensor& grad_logits);

  /// Arena-backed forward/backward: bit-identical to forward()/backward(),
  /// zero heap allocations in a steady-state loop that resets the arena at
  /// step boundaries. `x` and the returned references must outlive the
  /// matching backward (see Module::forward_into).
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena);
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_logits, TensorArena& arena);

  /// Forward through the feature extractor only (layers before the
  /// boundary). Used by the Latent Backdoor attack.
  [[nodiscard]] Tensor forward_features(const Tensor& x);
  /// Head applied on features from forward_features.
  [[nodiscard]] Tensor forward_head(const Tensor& features);
  /// Backward through the head; returns dL/dfeatures.
  [[nodiscard]] Tensor backward_head(const Tensor& grad_logits);
  /// Backward through the feature extractor; returns dL/dimages.
  [[nodiscard]] Tensor backward_features(const Tensor& grad_features);

  void set_training(bool training) { layers_->set_training(training); }
  /// See Module::set_param_grads_enabled: detection on a frozen model turns
  /// this off to halve backward cost.
  void set_param_grads_enabled(bool enabled) { layers_->set_param_grads_enabled(enabled); }
  void zero_grad() { layers_->zero_grad(); }
  [[nodiscard]] std::vector<Parameter*> parameters() { return layers_->parameters(); }
  [[nodiscard]] std::vector<StateTensor> state() {
    std::vector<StateTensor> out;
    layers_->collect_state(out);
    return out;
  }
  /// Read-only counterpart of state(): checkpoint saving, cloning, and
  /// byte accounting only READ through the collected pointers, so a const
  /// Network (e.g. a ModelStore-resident instance shared by concurrent
  /// scans) can serve them. Module::collect_state stays non-const because
  /// checkpoint LOADING writes through the same pointers; collection itself
  /// never mutates, which is what makes the const_cast sound.
  [[nodiscard]] std::vector<ConstStateTensor> state_view() const {
    std::vector<StateTensor> raw;
    const_cast<Sequential*>(layers_.get())->collect_state(raw);
    std::vector<ConstStateTensor> out;
    out.reserve(raw.size());
    for (StateTensor& entry : raw) out.push_back({std::move(entry.name), entry.tensor});
    return out;
  }
  /// Read-only counterpart of parameters(), same soundness argument.
  [[nodiscard]] std::vector<const Parameter*> parameters_view() const {
    const std::vector<Parameter*> raw = const_cast<Sequential*>(layers_.get())->parameters();
    return {raw.begin(), raw.end()};
  }

  [[nodiscard]] Architecture architecture() const noexcept { return arch_; }
  [[nodiscard]] std::int64_t in_channels() const noexcept { return in_channels_; }
  [[nodiscard]] std::int64_t input_size() const noexcept { return input_size_; }
  [[nodiscard]] std::int64_t num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::int64_t parameter_count();

  [[nodiscard]] Sequential& sequential() noexcept { return *layers_; }

 private:
  Architecture arch_;
  std::int64_t in_channels_;
  std::int64_t input_size_;
  std::int64_t num_classes_;
  std::unique_ptr<Sequential> layers_;
  std::int64_t feature_boundary_;
};

/// Builds an untrained network of the given architecture. `input_size` is
/// the square spatial size (28, 32 or 48 in this repo).
[[nodiscard]] Network make_network(Architecture arch, std::int64_t in_channels,
                                   std::int64_t input_size, std::int64_t num_classes,
                                   std::uint64_t seed);

}  // namespace usb
