// Model checkpointing: serializes architecture metadata plus every state
// tensor (weights and BatchNorm running statistics) so trained victim models
// can be cached across bench runs.
#pragma once

#include <string>

#include "nn/models.h"

namespace usb {

/// Writes `network` to `path`. Format: magic "USBC", version, architecture
/// string, dims, then name-tagged float arrays in state order. Read-only
/// (Network::state_view), so const instances — ModelStore residents — can
/// be checkpointed.
void save_checkpoint(const Network& network, const std::string& path);

/// Rebuilds the network described by the checkpoint and loads its weights.
/// Throws std::runtime_error on format/shape mismatch; every message names
/// the offending path and the mismatching field (a store loading many refs
/// must be able to say WHICH file was bad).
[[nodiscard]] Network load_checkpoint(const std::string& path);

/// Deep-copies a network (architecture + every state tensor). Detectors use
/// clones to run per-class reverse engineering on independent threads: each
/// clone owns its forward caches, so classes don't race. The source is only
/// read, so cloning from a shared immutable instance is race-free.
[[nodiscard]] Network clone_network(const Network& source);

/// Bytes a live copy of `network` pins: every state tensor (weights +
/// running statistics) plus parameter gradient buffers. The figure the
/// serving stack registers with MemoryBudget per model clone.
[[nodiscard]] std::int64_t network_resident_bytes(const Network& network);

}  // namespace usb
