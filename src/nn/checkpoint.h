// Model checkpointing: serializes architecture metadata plus every state
// tensor (weights and BatchNorm running statistics) so trained victim models
// can be cached across bench runs.
#pragma once

#include <string>

#include "nn/models.h"

namespace usb {

/// Writes `network` to `path`. Format: magic "USBC", version, architecture
/// string, dims, then name-tagged float arrays in state order.
void save_checkpoint(Network& network, const std::string& path);

/// Rebuilds the network described by the checkpoint and loads its weights.
/// Throws std::runtime_error on format/shape mismatch.
[[nodiscard]] Network load_checkpoint(const std::string& path);

/// Deep-copies a network (architecture + every state tensor). Detectors use
/// clones to run per-class reverse engineering on independent threads: each
/// clone owns its forward caches, so classes don't race.
[[nodiscard]] Network clone_network(Network& source);

/// Bytes a live copy of `network` pins: every state tensor (weights +
/// running statistics) plus parameter gradient buffers. The figure the
/// serving stack registers with MemoryBudget per model clone.
[[nodiscard]] std::int64_t network_resident_bytes(Network& network);

}  // namespace usb
