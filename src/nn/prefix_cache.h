// Shared-prefix forward memoization for multi-class scans.
//
// Every detector in this repository evaluates the SAME clean probe batches
// against the SAME frozen weights once per candidate class, so any forward
// work that does not depend on the class's perturbation is identical across
// the K jobs of a scan. PrefixActivationCache runs those batches through the
// layers below a chosen boundary exactly once (on the scan's reference
// model, before the per-class fan-out) and memoizes the boundary
// activations; per-class work restarts from the cached boundary via
// forward_from() instead of re-entering at the pixels.
//
// Where the boundary sits: the first perturbation-dependent layer. The
// pixel-space triggers of NC/TABOR/USB touch the input itself, so for them
// the perturbation-independent prefix is the whole network only on CLEAN
// inputs — the cache is then built at full depth (boundary == layer count)
// and memoizes clean logits and argmax predictions, which seed Alg. 1's
// v = 0 warm start (core/targeted_uap.h). Feature-space perturbations (cf.
// the Latent Backdoor attack, which perturbs at the feature boundary) get an
// interior boundary, where forward_from() skips the real prefix compute.
//
// Determinism contract: forward_range is a pure function of (weights,
// input) and bit-identical for any thread count (the GEMM core's tile
// decomposition is size-derived), so an activation cached on the reference
// model equals the one any per-class clone would recompute, bit for bit.
// Tests lock in forward_from(cached) == full forward across boundaries.
//
// Storage is grow-never-shrink in the workspace style: rebuild() for a new
// scan reuses the activation buffers whenever shapes match.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataloader.h"
#include "nn/models.h"

namespace usb {

class PrefixActivationCache {
 public:
  PrefixActivationCache() = default;

  /// Runs every batch through layers [0, boundary) of `net` once and caches
  /// the boundary activations. `boundary` in [0, layer count]; pass
  /// kFullDepth for the whole stack (activations are then logits, and argmax
  /// predictions are cached alongside). Forces eval mode, as every scan
  /// consumer does.
  static constexpr std::int64_t kFullDepth = -1;
  PrefixActivationCache(Network& net, const std::vector<Batch>& batches,
                        std::int64_t boundary = kFullDepth);

  /// Re-runs the prefix for a new scan (new batches and/or weights), reusing
  /// the cached tensors' storage when shapes match (grow-never-shrink).
  void rebuild(Network& net, const std::vector<Batch>& batches,
               std::int64_t boundary = kFullDepth);

  [[nodiscard]] std::int64_t boundary() const noexcept { return boundary_; }
  [[nodiscard]] std::size_t size() const noexcept { return activations_.size(); }
  [[nodiscard]] bool full_depth() const noexcept { return full_depth_; }

  /// Cached boundary activation of batch `i` (logits when full depth).
  [[nodiscard]] const Tensor& activation(std::size_t i) const { return activations_[i]; }

  /// Cached argmax rows of batch `i`; only populated at full depth.
  [[nodiscard]] const std::vector<std::int64_t>& predictions(std::size_t i) const {
    return predictions_[i];
  }

  /// Completes the forward of batch `i` through layers [boundary, end) of
  /// `net` — the restart-from-boundary entry point. `net` must share the
  /// reference model's weights (e.g. a per-class clone); at full depth this
  /// returns a copy of the cached logits without touching `net`.
  [[nodiscard]] Tensor forward_from(Network& net, std::size_t i) const;

 private:
  std::vector<Tensor> activations_;
  std::vector<std::vector<std::int64_t>> predictions_;
  std::int64_t boundary_ = 0;
  bool full_depth_ = false;
};

}  // namespace usb
