#include "nn/conv.h"

#include "nn/init.h"

namespace usb {

Conv2d::Conv2d(Conv2dSpec spec, Rng& rng, bool with_bias)
    : spec_(spec),
      with_bias_(with_bias),
      weight_("conv.weight", Tensor(spec.weight_shape())),
      bias_("conv.bias", Tensor(Shape{with_bias ? spec.out_channels : 0})) {
  const std::int64_t fan_in = (spec.in_channels / spec.groups) * spec.kernel * spec.kernel;
  kaiming_normal(weight_.value, fan_in, rng);
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_input_own_ = x;
  cached_input_ = &cached_input_own_;
  return conv2d_forward(x, weight_.value, bias_.value, spec_);
}

const Tensor& Conv2d::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_ = &x;
  Tensor& y = arena.alloc(Shape{x.dim(0), spec_.out_channels, spec_.out_size(x.dim(2)),
                                spec_.out_size(x.dim(3))});
  conv2d_forward_into(x, weight_.value, bias_.value, spec_, y);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const bool need_dweight = param_grads_enabled();
  // Frozen weights AND no input gradient wanted (a first-layer conv on a
  // frozen model): there is nothing to compute, so skip the kernel dispatch.
  if (!need_dweight && !need_input_grad_) return Tensor(cached_input_->shape());
  Conv2dGrads grads = conv2d_backward(*cached_input_, weight_.value, grad_out, spec_,
                                      need_input_grad_, need_dweight);
  if (need_dweight) {
    weight_.grad += grads.dweight;
    if (with_bias_) bias_.grad += grads.dbias;
  }
  if (!need_input_grad_) return Tensor(cached_input_->shape());
  return std::move(grads.dx);
}

Tensor& Conv2d::backward_into(const Tensor& grad_out, TensorArena& arena) {
  const bool need_dweight = param_grads_enabled();
  if (!need_dweight && !need_input_grad_) return arena.zeros(cached_input_->shape());
  if (!need_dweight) {
    // The frozen-model hot path: only dx, written straight into an arena
    // slot — no gradient-struct allocations at all.
    Tensor& dx = arena.alloc(cached_input_->shape());
    conv2d_backward_into(*cached_input_, weight_.value, grad_out, spec_, /*need_dx=*/true,
                         /*need_dweight=*/false, &dx, nullptr, nullptr);
    return dx;
  }
  // Training path: keep the historical accumulate-into-Parameter structure.
  Conv2dGrads grads = conv2d_backward(*cached_input_, weight_.value, grad_out, spec_,
                                      need_input_grad_, /*need_dweight=*/true);
  weight_.grad += grads.dweight;
  if (with_bias_) bias_.grad += grads.dbias;
  if (!need_input_grad_) return arena.zeros(cached_input_->shape());
  return arena.adopt(std::move(grads.dx));
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (with_bias_) out.push_back(&bias_);
}

}  // namespace usb
