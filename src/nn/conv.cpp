#include "nn/conv.h"

#include "nn/init.h"

namespace usb {

Conv2d::Conv2d(Conv2dSpec spec, Rng& rng, bool with_bias)
    : spec_(spec),
      with_bias_(with_bias),
      weight_("conv.weight", Tensor(spec.weight_shape())),
      bias_("conv.bias", Tensor(Shape{with_bias ? spec.out_channels : 0})) {
  const std::int64_t fan_in = (spec.in_channels / spec.groups) * spec.kernel * spec.kernel;
  kaiming_normal(weight_.value, fan_in, rng);
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_input_ = x;
  return conv2d_forward(x, weight_.value, bias_.value, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const bool need_dweight = param_grads_enabled();
  // Frozen weights AND no input gradient wanted (a first-layer conv on a
  // frozen model): there is nothing to compute, so skip the kernel dispatch.
  if (!need_dweight && !need_input_grad_) return Tensor(cached_input_.shape());
  Conv2dGrads grads = conv2d_backward(cached_input_, weight_.value, grad_out, spec_,
                                      need_input_grad_, need_dweight);
  if (need_dweight) {
    weight_.grad += grads.dweight;
    if (with_bias_) bias_.grad += grads.dbias;
  }
  if (!need_input_grad_) return Tensor(cached_input_.shape());
  return std::move(grads.dx);
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (with_bias_) out.push_back(&bias_);
}

}  // namespace usb
