// Sequential container with ranged forward/backward.
//
// The ranged variants let callers split a network into a feature extractor
// and a classifier head without restructuring it — the Latent Backdoor
// attack trains against intermediate features, and model factories mark the
// feature/head boundary by layer index.
#pragma once

#include "nn/module.h"

namespace usb {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(ModulePtr layer);

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(layers_.size());
  }
  [[nodiscard]] Module& layer(std::int64_t index) noexcept {
    return *layers_[static_cast<std::size_t>(index)];
  }

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;

  /// Forward through layers [begin, end).
  [[nodiscard]] Tensor forward_range(const Tensor& x, std::int64_t begin, std::int64_t end);

  /// Backward through layers [begin, end) in reverse; must follow the
  /// matching forward_range.
  [[nodiscard]] Tensor backward_range(const Tensor& grad_out, std::int64_t begin,
                                      std::int64_t end);

  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<StateTensor>& out) override;
  void set_training(bool training) override;
  void set_param_grads_enabled(bool enabled) override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace usb
