#include "nn/linear.h"

#include <algorithm>
#include <stdexcept>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace usb {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor(Shape{out_features, in_features})),
      bias_("linear.bias", Tensor(Shape{out_features})) {
  kaiming_normal(weight_.value, in_features, rng);
}

void Linear::forward_core(const Tensor& x, Tensor& y) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_features_) +
                                "), got " + x.shape().to_string());
  }
  // Broadcast the bias into y, then let the GEMM accumulate on top: one
  // fused output pass instead of a separate bias sweep after the matmul.
  const std::int64_t batch = x.dim(0);
  y.ensure_shape(Shape{batch, out_features_});
  for (std::int64_t n = 0; n < batch; ++n) {
    std::copy(bias_.value.raw(), bias_.value.raw() + out_features_, y.raw() + n * out_features_);
  }
  gemm(/*transpose_a=*/false, /*transpose_b=*/true, batch, out_features_, in_features_, x.raw(),
       in_features_, weight_.value.raw(), in_features_, y.raw(), out_features_,
       /*accumulate=*/true);
}

Tensor Linear::forward(const Tensor& x) {
  Tensor y;
  forward_core(x, y);
  cached_input_own_ = x;
  cached_input_ = &cached_input_own_;
  return y;
}

const Tensor& Linear::forward_into(const Tensor& x, TensorArena& arena) {
  Tensor& y = arena.alloc(Shape{x.dim(0), out_features_});
  forward_core(x, y);
  cached_input_ = &x;
  return y;
}

void Linear::backward_core(const Tensor& grad_out, Tensor& dx) {
  if (param_grads_enabled()) {
    // dW (out,in) = dy^T (out,N) x X (N,in)
    weight_.grad += matmul_transpose_a(grad_out, *cached_input_);
    const std::int64_t batch = grad_out.dim(0);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* row = grad_out.raw() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dX (N,in) = dy (N,out) x W (out,in)
  matmul_into(grad_out, weight_.value, dx);
}

Tensor Linear::backward(const Tensor& grad_out) {
  Tensor dx;
  backward_core(grad_out, dx);
  return dx;
}

Tensor& Linear::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(Shape{grad_out.dim(0), in_features_});
  backward_core(grad_out, dx);
  return dx;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace usb
