#include "nn/linear.h"

#include <algorithm>
#include <stdexcept>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace usb {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor(Shape{out_features, in_features})),
      bias_("linear.bias", Tensor(Shape{out_features})) {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_features_) +
                                "), got " + x.shape().to_string());
  }
  cached_input_ = x;
  // Broadcast the bias into y, then let the GEMM accumulate on top: one
  // fused output pass instead of a separate bias sweep after the matmul.
  const std::int64_t batch = x.dim(0);
  Tensor y(Shape{batch, out_features_});
  for (std::int64_t n = 0; n < batch; ++n) {
    std::copy(bias_.value.raw(), bias_.value.raw() + out_features_, y.raw() + n * out_features_);
  }
  gemm(/*transpose_a=*/false, /*transpose_b=*/true, batch, out_features_, in_features_, x.raw(),
       in_features_, weight_.value.raw(), in_features_, y.raw(), out_features_,
       /*accumulate=*/true);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (param_grads_enabled()) {
    // dW (out,in) = dy^T (out,N) x X (N,in)
    weight_.grad += matmul_transpose_a(grad_out, cached_input_);
    const std::int64_t batch = grad_out.dim(0);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* row = grad_out.raw() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dX (N,in) = dy (N,out) x W (out,in)
  return matmul(grad_out, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace usb
