#include "nn/linear.h"

#include <stdexcept>

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace usb {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor(Shape{out_features, in_features})),
      bias_("linear.bias", Tensor(Shape{out_features})) {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_features_) +
                                "), got " + x.shape().to_string());
  }
  cached_input_ = x;
  Tensor y = matmul_transpose_b(x, weight_.value);
  const std::int64_t batch = y.dim(0);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = y.raw() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (param_grads_enabled()) {
    // dW (out,in) = dy^T (out,N) x X (N,in)
    weight_.grad += matmul_transpose_a(grad_out, cached_input_);
    const std::int64_t batch = grad_out.dim(0);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* row = grad_out.raw() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dX (N,in) = dy (N,out) x W (out,in)
  return matmul(grad_out, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace usb
