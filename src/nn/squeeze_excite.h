// Squeeze-and-Excitation channel attention + the MBConv block used by the
// scaled EfficientNet substitute (MiniEffNet).
#pragma once

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace usb {

/// SE block: per-channel gates z = sigmoid(W2 silu(W1 GAP(x))); y = x * z.
class SqueezeExcite final : public Module {
 public:
  SqueezeExcite(std::int64_t channels, std::int64_t reduced, Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<StateTensor>& out) override;
  void set_training(bool training) override;
  void set_param_grads_enabled(bool enabled) override;
  [[nodiscard]] std::string name() const override { return "SqueezeExcite"; }

 private:
  void gate_input(const Tensor& x, const Tensor& gates, Tensor& y) const;
  void backward_direct(const Tensor& grad_out, Tensor& dx);

  std::int64_t channels_;
  Linear fc1_;
  SiLU act_;
  Linear fc2_;
  Sigmoid gate_;

  Tensor cached_input_own_;
  Tensor cached_gates_own_;
  const Tensor* cached_input_ = nullptr;
  const Tensor* cached_gates_ = nullptr;  // (N, C)
  Tensor dgates_scratch_;                 // backward scratch, recycled
};

/// EfficientNet MBConv: 1x1 expand -> depthwise 3x3 -> SE -> 1x1 project,
/// BN+SiLU between stages, residual skip when the shape is preserved.
class MBConvBlock final : public Module {
 public:
  MBConvBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride,
              std::int64_t expand_ratio, Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<StateTensor>& out) override;
  void set_training(bool training) override;
  void set_param_grads_enabled(bool enabled) override;
  [[nodiscard]] std::string name() const override { return "MBConvBlock"; }

 private:
  bool has_expand_;
  bool has_skip_;
  std::unique_ptr<Conv2d> expand_conv_;
  std::unique_ptr<BatchNorm2d> expand_bn_;
  std::unique_ptr<SiLU> expand_act_;
  Conv2d depthwise_;
  BatchNorm2d dw_bn_;
  SiLU dw_act_;
  SqueezeExcite se_;
  Conv2d project_;
  BatchNorm2d project_bn_;
};

}  // namespace usb
