#include "nn/models.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/squeeze_excite.h"

namespace usb {

std::string to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kBasicCnn: return "basic_cnn";
    case Architecture::kMiniResNet: return "mini_resnet";
    case Architecture::kMiniVgg: return "mini_vgg";
    case Architecture::kMiniEffNet: return "mini_effnet";
  }
  throw std::invalid_argument("unknown architecture");
}

Architecture architecture_from_string(const std::string& text) {
  if (text == "basic_cnn") return Architecture::kBasicCnn;
  if (text == "mini_resnet") return Architecture::kMiniResNet;
  if (text == "mini_vgg") return Architecture::kMiniVgg;
  if (text == "mini_effnet") return Architecture::kMiniEffNet;
  throw std::invalid_argument("unknown architecture: " + text);
}

Network::Network(Architecture arch, std::int64_t in_channels, std::int64_t input_size,
                 std::int64_t num_classes, std::unique_ptr<Sequential> layers,
                 std::int64_t feature_boundary)
    : arch_(arch),
      in_channels_(in_channels),
      input_size_(input_size),
      num_classes_(num_classes),
      layers_(std::move(layers)),
      feature_boundary_(feature_boundary) {}

Tensor Network::forward(const Tensor& x) { return layers_->forward(x); }
Tensor Network::backward(const Tensor& grad_logits) { return layers_->backward(grad_logits); }

const Tensor& Network::forward_into(const Tensor& x, TensorArena& arena) {
  return layers_->forward_into(x, arena);
}
Tensor& Network::backward_into(const Tensor& grad_logits, TensorArena& arena) {
  return layers_->backward_into(grad_logits, arena);
}

Tensor Network::forward_features(const Tensor& x) {
  return layers_->forward_range(x, 0, feature_boundary_);
}
Tensor Network::forward_head(const Tensor& features) {
  return layers_->forward_range(features, feature_boundary_, layers_->size());
}
Tensor Network::backward_head(const Tensor& grad_logits) {
  return layers_->backward_range(grad_logits, feature_boundary_, layers_->size());
}
Tensor Network::backward_features(const Tensor& grad_features) {
  return layers_->backward_range(grad_features, 0, feature_boundary_);
}

std::int64_t Network::parameter_count() {
  std::int64_t total = 0;
  for (const Parameter* p : parameters()) total += p->value.numel();
  return total;
}

namespace {

Conv2dSpec conv_spec(std::int64_t in, std::int64_t out, std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding;
  return spec;
}

/// The exact Appendix A.7 basic model: two conv(k=5)+ReLU+AvgPool stages and
/// two fully connected layers. For 28x28x1 inputs the flattened feature size
/// is 32*4*4 = 512, matching the paper's fc(512,512).
Network build_basic_cnn(std::int64_t in_channels, std::int64_t input_size,
                        std::int64_t num_classes, Rng& rng) {
  auto layers = std::make_unique<Sequential>();
  layers->add(std::make_unique<Conv2d>(conv_spec(in_channels, 16, 5, 1, 0), rng));
  layers->add(std::make_unique<ReLU>());
  layers->add(std::make_unique<AvgPool2d>(Pool2dSpec{2, 2}));
  layers->add(std::make_unique<Conv2d>(conv_spec(16, 32, 5, 1, 0), rng));
  layers->add(std::make_unique<ReLU>());
  layers->add(std::make_unique<AvgPool2d>(Pool2dSpec{2, 2}));
  layers->add(std::make_unique<Flatten>());
  const std::int64_t spatial = (((input_size - 4) / 2) - 4) / 2;
  const std::int64_t flat = 32 * spatial * spatial;
  const std::int64_t feature_boundary = layers->size();
  layers->add(std::make_unique<Linear>(flat, 512, rng));
  layers->add(std::make_unique<ReLU>());
  layers->add(std::make_unique<Linear>(512, num_classes, rng));
  return Network(Architecture::kBasicCnn, in_channels, input_size, num_classes,
                 std::move(layers), feature_boundary);
}

/// CIFAR-style residual network: stem conv + three residual stages with
/// channel doubling and stride-2 downsampling, global average pool head.
/// Channel widths are scaled to 8/16/32 for CPU (DESIGN.md substitutions);
/// the topology — skip connections, BN placement, strided projections — is
/// the ResNet-18 family's.
Network build_mini_resnet(std::int64_t in_channels, std::int64_t input_size,
                          std::int64_t num_classes, Rng& rng) {
  auto layers = std::make_unique<Sequential>();
  layers->add(std::make_unique<Conv2d>(conv_spec(in_channels, 8, 3, 1, 1), rng,
                                       /*with_bias=*/false));
  layers->add(std::make_unique<BatchNorm2d>(8));
  layers->add(std::make_unique<ReLU>());
  layers->add(std::make_unique<ResidualBlock>(8, 8, 1, rng));
  layers->add(std::make_unique<ResidualBlock>(8, 16, 2, rng));
  layers->add(std::make_unique<ResidualBlock>(16, 32, 2, rng));
  layers->add(std::make_unique<GlobalAvgPool>());
  layers->add(std::make_unique<Flatten>());
  const std::int64_t feature_boundary = layers->size();
  layers->add(std::make_unique<Linear>(32, num_classes, rng));
  return Network(Architecture::kMiniResNet, in_channels, input_size, num_classes,
                 std::move(layers), feature_boundary);
}

/// VGG-style plain conv stacks with BatchNorm and max pooling.
Network build_mini_vgg(std::int64_t in_channels, std::int64_t input_size,
                       std::int64_t num_classes, Rng& rng) {
  auto layers = std::make_unique<Sequential>();
  auto stack = [&](std::int64_t in, std::int64_t out) {
    layers->add(std::make_unique<Conv2d>(conv_spec(in, out, 3, 1, 1), rng, /*with_bias=*/false));
    layers->add(std::make_unique<BatchNorm2d>(out));
    layers->add(std::make_unique<ReLU>());
    layers->add(std::make_unique<Conv2d>(conv_spec(out, out, 3, 1, 1), rng, /*with_bias=*/false));
    layers->add(std::make_unique<BatchNorm2d>(out));
    layers->add(std::make_unique<ReLU>());
    layers->add(std::make_unique<MaxPool2d>(Pool2dSpec{2, 2}));
  };
  stack(in_channels, 8);
  stack(8, 16);
  stack(16, 32);
  layers->add(std::make_unique<Flatten>());
  const std::int64_t spatial = input_size / 8;
  const std::int64_t flat = 32 * spatial * spatial;
  const std::int64_t feature_boundary = layers->size();
  layers->add(std::make_unique<Linear>(flat, 96, rng));
  layers->add(std::make_unique<ReLU>());
  layers->add(std::make_unique<Linear>(96, num_classes, rng));
  return Network(Architecture::kMiniVgg, in_channels, input_size, num_classes, std::move(layers),
                 feature_boundary);
}

/// EfficientNet-flavoured: SiLU stem, three MBConv stages with SE attention,
/// global average pool head.
Network build_mini_effnet(std::int64_t in_channels, std::int64_t input_size,
                          std::int64_t num_classes, Rng& rng) {
  auto layers = std::make_unique<Sequential>();
  layers->add(std::make_unique<Conv2d>(conv_spec(in_channels, 12, 3, 1, 1), rng,
                                       /*with_bias=*/false));
  layers->add(std::make_unique<BatchNorm2d>(12));
  layers->add(std::make_unique<SiLU>());
  layers->add(std::make_unique<MBConvBlock>(12, 12, 1, 1, rng));
  layers->add(std::make_unique<MBConvBlock>(12, 24, 2, 2, rng));
  layers->add(std::make_unique<MBConvBlock>(24, 24, 1, 2, rng));
  layers->add(std::make_unique<MBConvBlock>(24, 48, 2, 2, rng));
  layers->add(std::make_unique<GlobalAvgPool>());
  layers->add(std::make_unique<Flatten>());
  const std::int64_t feature_boundary = layers->size();
  layers->add(std::make_unique<Linear>(48, num_classes, rng));
  return Network(Architecture::kMiniEffNet, in_channels, input_size, num_classes,
                 std::move(layers), feature_boundary);
}

}  // namespace

Network make_network(Architecture arch, std::int64_t in_channels, std::int64_t input_size,
                     std::int64_t num_classes, std::uint64_t seed) {
  Rng rng(seed);
  switch (arch) {
    case Architecture::kBasicCnn:
      return build_basic_cnn(in_channels, input_size, num_classes, rng);
    case Architecture::kMiniResNet:
      return build_mini_resnet(in_channels, input_size, num_classes, rng);
    case Architecture::kMiniVgg:
      return build_mini_vgg(in_channels, input_size, num_classes, rng);
    case Architecture::kMiniEffNet:
      return build_mini_effnet(in_channels, input_size, num_classes, rng);
  }
  throw std::invalid_argument("make_network: unknown architecture");
}

}  // namespace usb
