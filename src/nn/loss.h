// Loss functions with exact gradients.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace usb {

/// Fused softmax + cross-entropy over hard labels, mean-reduced.
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean CE loss of logits (N,C) against labels.
  [[nodiscard]] float forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// Returns dL/dlogits = (softmax - onehot) / N for the last forward.
  [[nodiscard]] Tensor backward() const;

 private:
  Tensor cached_probs_;
  std::vector<std::int64_t> cached_labels_;
};

/// Cross-entropy toward a single target class for every row — the loss used
/// by all trigger reverse-engineering optimizations (Alg. 2, NC, TABOR).
class TargetedCrossEntropy {
 public:
  [[nodiscard]] float forward(const Tensor& logits, std::int64_t target_class);
  [[nodiscard]] Tensor backward() const;

 private:
  Tensor cached_probs_;
  std::int64_t cached_target_ = 0;
};

/// Mean squared error; used for the Latent Backdoor feature alignment.
class MeanSquaredError {
 public:
  [[nodiscard]] float forward(const Tensor& prediction, const Tensor& target);
  [[nodiscard]] Tensor backward() const;

 private:
  Tensor cached_diff_;
};

}  // namespace usb
