// Loss functions with exact gradients.
//
// All three losses cache into recycled member scratch and offer an
// arena-backed backward_into alongside the value-returning backward(), so a
// steady-state loss forward+backward pair performs zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace usb {

/// Fused softmax + cross-entropy over hard labels, mean-reduced.
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean CE loss of logits (N,C) against labels.
  [[nodiscard]] float forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// Returns dL/dlogits = (softmax - onehot) / N for the last forward.
  [[nodiscard]] Tensor backward() const;
  [[nodiscard]] Tensor& backward_into(TensorArena& arena) const;

 private:
  void backward_core(Tensor& grad) const;

  Tensor cached_probs_;
  std::vector<std::int64_t> cached_labels_;
};

/// Cross-entropy toward a single target class for every row — the loss used
/// by all trigger reverse-engineering optimizations (Alg. 2, NC, TABOR).
class TargetedCrossEntropy {
 public:
  [[nodiscard]] float forward(const Tensor& logits, std::int64_t target_class);
  [[nodiscard]] Tensor backward() const;
  [[nodiscard]] Tensor& backward_into(TensorArena& arena) const;

 private:
  void backward_core(Tensor& grad) const;

  Tensor cached_probs_;
  std::int64_t cached_target_ = 0;
};

/// Mean squared error; used for the Latent Backdoor feature alignment.
class MeanSquaredError {
 public:
  [[nodiscard]] float forward(const Tensor& prediction, const Tensor& target);
  [[nodiscard]] Tensor backward() const;
  [[nodiscard]] Tensor& backward_into(TensorArena& arena) const;

 private:
  void backward_core(Tensor& grad) const;

  Tensor cached_diff_;
};

}  // namespace usb
