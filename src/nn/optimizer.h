// Parameter optimizers: SGD with momentum and Adam.
//
// The paper trains victim models with SGD-style settings from TrojanZoo and
// runs trigger reverse engineering with Adam(beta = (0.5, 0.9)); both are
// provided here. Optimizers can also drive free tensors (trigger, mask, UAP)
// via the AdamState helper, which the detection code uses for image-space
// variables that are not module Parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace usb {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Parameter*> params_;
};

struct SgdConfig {
  float lr = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);
  void step() override;
  void set_lr(float lr) noexcept { config_.lr = lr; }
  [[nodiscard]] float lr() const noexcept { return config_.lr; }

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

struct AdamConfig {
  float lr = 0.1F;
  float beta1 = 0.5F;  // paper's detection optimizer: Adam(beta=(0.5, 0.9))
  float beta2 = 0.9F;
  float eps = 1e-8F;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config);
  void step() override;

 private:
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

/// Standalone Adam state for a single free tensor (e.g. a trigger or mask
/// image optimized outside any Module).
class AdamState {
 public:
  AdamState(Shape shape, AdamConfig config)
      : config_(config), m_(shape), v_(shape) {}

  /// Applies one Adam update to `value` in place given its gradient.
  void step(Tensor& value, const Tensor& grad);

 private:
  AdamConfig config_;
  Tensor m_;
  Tensor v_;
  std::int64_t t_ = 0;
};

}  // namespace usb
