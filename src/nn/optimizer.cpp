#include "nn/optimizer.h"

#include <cmath>

#include "tensor/elementwise.h"

namespace usb {
namespace {

ew::AdamParams adam_params(const AdamConfig& config, std::int64_t t) {
  ew::AdamParams params;
  params.lr = config.lr;
  params.beta1 = config.beta1;
  params.beta2 = config.beta2;
  params.eps = config.eps;
  params.bias1 = 1.0F - std::pow(config.beta1, static_cast<float>(t));
  params.bias2 = 1.0F - std::pow(config.beta2, static_cast<float>(t));
  return params;
}

}  // namespace

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : Optimizer(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& param = *params_[i];
    Tensor& vel = velocity_[i];
    const std::int64_t n = param.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      float g = param.grad[j];
      if (config_.weight_decay != 0.0F) g += config_.weight_decay * param.value[j];
      vel[j] = config_.momentum * vel[j] + g;
      param.value[j] -= config_.lr * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const ew::AdamParams params = adam_params(config_, t_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& param = *params_[i];
    ew::adam_update(param.value.raw(), param.grad.raw(), m_[i].raw(), v_[i].raw(),
                    param.value.numel(), params);
  }
}

void AdamState::step(Tensor& value, const Tensor& grad) {
  ++t_;
  ew::adam_update(value.raw(), grad.raw(), m_.raw(), v_.raw(), value.numel(),
                  adam_params(config_, t_));
}

}  // namespace usb
