#include "nn/optimizer.h"

#include <cmath>

namespace usb {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : Optimizer(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& param = *params_[i];
    Tensor& vel = velocity_[i];
    const std::int64_t n = param.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      float g = param.grad[j];
      if (config_.weight_decay != 0.0F) g += config_.weight_decay * param.value[j];
      vel[j] = config_.momentum * vel[j] + g;
      param.value[j] -= config_.lr * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& param = *params_[i];
    const std::int64_t n = param.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float g = param.grad[j];
      m_[i][j] = config_.beta1 * m_[i][j] + (1.0F - config_.beta1) * g;
      v_[i][j] = config_.beta2 * v_[i][j] + (1.0F - config_.beta2) * g * g;
      const float m_hat = m_[i][j] / bias1;
      const float v_hat = v_[i][j] / bias2;
      param.value[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

void AdamState::step(Tensor& value, const Tensor& grad) {
  ++t_;
  const float bias1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  const std::int64_t n = value.numel();
  for (std::int64_t j = 0; j < n; ++j) {
    const float g = grad[j];
    m_[j] = config_.beta1 * m_[j] + (1.0F - config_.beta1) * g;
    v_[j] = config_.beta2 * v_[j] + (1.0F - config_.beta2) * g * g;
    const float m_hat = m_[j] / bias1;
    const float v_hat = v_[j] / bias2;
    value[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
  }
}

}  // namespace usb
