// Pointwise activation layers: ReLU, Sigmoid, Tanh, SiLU (swish).
//
// Each layer has two forward entry points sharing one kernel (see
// tensor/elementwise.h): the value-returning forward() caches by copying
// into a member, the arena forward_into() caches a borrowed pointer into
// the caller's arena-lived activation (valid until the arena resets — the
// Module::forward_into contract). backward/backward_into read through the
// pointer, so either forward pairs with either backward.
#pragma once

#include "nn/module.h"

namespace usb {

class ReLU final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_own_;
  const Tensor* cached_input_ = nullptr;
};

class Sigmoid final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_own_;
  const Tensor* cached_output_ = nullptr;
};

class Tanh final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_own_;
  const Tensor* cached_output_ = nullptr;
};

/// SiLU(x) = x * sigmoid(x); the EfficientNet activation.
class SiLU final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  [[nodiscard]] std::string name() const override { return "SiLU"; }

 private:
  Tensor cached_input_own_;
  const Tensor* cached_input_ = nullptr;
  Tensor cached_sigmoid_;  // always module-owned (computed, not borrowed)
};

}  // namespace usb
