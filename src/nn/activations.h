// Pointwise activation layers: ReLU, Sigmoid, Tanh, SiLU (swish).
#pragma once

#include "nn/module.h"

namespace usb {

class ReLU final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class Sigmoid final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

class Tanh final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// SiLU(x) = x * sigmoid(x); the EfficientNet activation.
class SiLU final : public Module {
 public:
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "SiLU"; }

 private:
  Tensor cached_input_;
  Tensor cached_sigmoid_;
};

}  // namespace usb
