// BatchNorm2d with exact backward in both training and eval mode.
//
// Eval-mode backward matters here: backdoor detection differentiates the
// frozen (eval) victim model with respect to its input, so the layer must
// propagate dL/dx through the running-statistics normalization as well as
// through batch statistics during training.
#pragma once

#include "nn/module.h"

namespace usb {

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5F, float momentum = 0.1F);

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const Tensor& forward_into(const Tensor& x, TensorArena& arena) override;
  [[nodiscard]] Tensor& backward_into(const Tensor& grad_out, TensorArena& arena) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<StateTensor>& out) override;
  [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

  [[nodiscard]] const Tensor& running_mean() const noexcept { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const noexcept { return running_var_; }

 private:
  void forward_core(const Tensor& x, Tensor& y);
  void backward_core(const Tensor& grad_out, Tensor& dx);

  std::int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward cache (module-owned scratch, recycled via ensure_shape — the
  // steady-state forward/backward pair allocates nothing).
  bool forward_was_training_ = true;
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // per-channel 1/sqrt(var+eps) used by that forward
};

}  // namespace usb
