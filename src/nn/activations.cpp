#include "nn/activations.h"

#include "tensor/elementwise.h"

namespace usb {

Tensor ReLU::forward(const Tensor& x) {
  cached_input_own_ = x;
  cached_input_ = &cached_input_own_;
  Tensor y(x.shape());
  ew::relu_fwd(x.raw(), y.raw(), x.numel());
  return y;
}

const Tensor& ReLU::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_ = &x;
  Tensor& y = arena.alloc(x.shape());
  ew::relu_fwd(x.raw(), y.raw(), x.numel());
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  ew::relu_bwd(cached_input_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor& ReLU::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(grad_out.shape());
  ew::relu_bwd(cached_input_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y(x.shape());
  ew::sigmoid_fwd(x.raw(), y.raw(), x.numel());
  cached_output_own_ = y;
  cached_output_ = &cached_output_own_;
  return y;
}

const Tensor& Sigmoid::forward_into(const Tensor& x, TensorArena& arena) {
  Tensor& y = arena.alloc(x.shape());
  ew::sigmoid_fwd(x.raw(), y.raw(), x.numel());
  cached_output_ = &y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  ew::sigmoid_bwd(cached_output_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor& Sigmoid::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(grad_out.shape());
  ew::sigmoid_bwd(cached_output_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y(x.shape());
  ew::tanh_fwd(x.raw(), y.raw(), x.numel());
  cached_output_own_ = y;
  cached_output_ = &cached_output_own_;
  return y;
}

const Tensor& Tanh::forward_into(const Tensor& x, TensorArena& arena) {
  Tensor& y = arena.alloc(x.shape());
  ew::tanh_fwd(x.raw(), y.raw(), x.numel());
  cached_output_ = &y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  ew::tanh_bwd(cached_output_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor& Tanh::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(grad_out.shape());
  ew::tanh_bwd(cached_output_->raw(), grad_out.raw(), dx.raw(), grad_out.numel());
  return dx;
}

Tensor SiLU::forward(const Tensor& x) {
  cached_input_own_ = x;
  cached_input_ = &cached_input_own_;
  cached_sigmoid_.ensure_shape(x.shape());
  Tensor y(x.shape());
  ew::silu_fwd(x.raw(), cached_sigmoid_.raw(), y.raw(), x.numel());
  return y;
}

const Tensor& SiLU::forward_into(const Tensor& x, TensorArena& arena) {
  cached_input_ = &x;
  cached_sigmoid_.ensure_shape(x.shape());
  Tensor& y = arena.alloc(x.shape());
  ew::silu_fwd(x.raw(), cached_sigmoid_.raw(), y.raw(), x.numel());
  return y;
}

Tensor SiLU::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  ew::silu_bwd(cached_sigmoid_.raw(), cached_input_->raw(), grad_out.raw(), dx.raw(),
               grad_out.numel());
  return dx;
}

Tensor& SiLU::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(grad_out.shape());
  ew::silu_bwd(cached_sigmoid_.raw(), cached_input_->raw(), grad_out.raw(), dx.raw(),
               grad_out.numel());
  return dx;
}

}  // namespace usb
