#include "nn/activations.h"

#include <cmath>

namespace usb {

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] < 0.0F) y[i] = 0.0F;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    if (cached_input_[i] <= 0.0F) dx[i] = 0.0F;
  }
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = 1.0F / (1.0F + std::exp(-y[i]));
  }
  cached_output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    const float s = cached_output_[i];
    dx[i] *= s * (1.0F - s);
  }
  return dx;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    const float t = cached_output_[i];
    dx[i] *= 1.0F - t * t;
  }
  return dx;
}

Tensor SiLU::forward(const Tensor& x) {
  cached_input_ = x;
  cached_sigmoid_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float s = 1.0F / (1.0F + std::exp(-x[i]));
    cached_sigmoid_[i] = s;
    y[i] = x[i] * s;
  }
  return y;
}

Tensor SiLU::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    const float s = cached_sigmoid_[i];
    dx[i] *= s * (1.0F + cached_input_[i] * (1.0F - s));
  }
  return dx;
}

}  // namespace usb
