#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "tensor/elementwise.h"

namespace usb {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("bn.gamma", Tensor::ones(Shape{channels})),
      beta_("bn.beta", Tensor(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {}

void BatchNorm2d::forward_core(const Tensor& x, Tensor& y) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected NCHW with C=" + std::to_string(channels_));
  }
  const std::int64_t batch = x.dim(0);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t spatial = height * width;
  const std::int64_t count = batch * spatial;

  forward_was_training_ = training();
  cached_inv_std_.ensure_shape(Shape{channels_});
  y.ensure_shape(x.shape());
  cached_xhat_.ensure_shape(x.shape());

  for (std::int64_t c = 0; c < channels_; ++c) {
    float mean = 0.0F;
    float var = 0.0F;
    if (forward_was_training_) {
      // Batch statistics stay a scalar double reduction: the ascending
      // accumulation order is part of the bit-identity contract.
      double sum = 0.0;
      double sq_sum = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* x_p = x.raw() + (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          sum += x_p[s];
          sq_sum += static_cast<double>(x_p[s]) * x_p[s];
        }
      }
      mean = static_cast<float>(sum / static_cast<double>(count));
      var = static_cast<float>(sq_sum / static_cast<double>(count) -
                               static_cast<double>(mean) * mean);
      if (var < 0.0F) var = 0.0F;  // numerical floor
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0F - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0F / std::sqrt(var + eps_);
    cached_inv_std_[c] = inv_std;
    for (std::int64_t n = 0; n < batch; ++n) {
      const std::int64_t offset = (n * channels_ + c) * spatial;
      ew::bn_fwd(x.raw() + offset, cached_xhat_.raw() + offset, y.raw() + offset, mean, inv_std,
                 gamma_.value[c], beta_.value[c], spatial);
    }
  }
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  Tensor y;
  forward_core(x, y);
  return y;
}

const Tensor& BatchNorm2d::forward_into(const Tensor& x, TensorArena& arena) {
  Tensor& y = arena.alloc(x.shape());
  forward_core(x, y);
  return y;
}

void BatchNorm2d::backward_core(const Tensor& grad_out, Tensor& dx) {
  const std::int64_t batch = grad_out.dim(0);
  const std::int64_t spatial = grad_out.dim(2) * grad_out.dim(3);
  const std::int64_t count = batch * spatial;
  dx.ensure_shape(grad_out.shape());

  for (std::int64_t c = 0; c < channels_; ++c) {
    const float inv_std = cached_inv_std_[c];
    const float g = gamma_.value[c];
    // The reductions feed both the parameter gradients and (in training
    // mode) the dx correction terms; eval-mode detection with parameter
    // gradients disabled needs neither. Scalar double accumulation by the
    // bit-identity contract.
    const bool need_sums = param_grads_enabled() || forward_was_training_;
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    if (need_sums) {
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* dy_p = grad_out.raw() + (n * channels_ + c) * spatial;
        const float* xhat_p = cached_xhat_.raw() + (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          sum_dy += dy_p[s];
          sum_dy_xhat += static_cast<double>(dy_p[s]) * xhat_p[s];
        }
      }
    }
    if (param_grads_enabled()) {
      gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
      beta_.grad[c] += static_cast<float>(sum_dy);
    }

    if (forward_was_training_) {
      // Batch statistics participated in the forward, so their dependence on
      // x contributes the two correction terms.
      const auto mean_dy = static_cast<float>(sum_dy / static_cast<double>(count));
      const auto mean_dy_xhat = static_cast<float>(sum_dy_xhat / static_cast<double>(count));
      for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t offset = (n * channels_ + c) * spatial;
        ew::bn_bwd_train(grad_out.raw() + offset, cached_xhat_.raw() + offset, dx.raw() + offset,
                         g * inv_std, mean_dy, mean_dy_xhat, spatial);
      }
    } else {
      // Running stats are constants: dx = dy * gamma / sqrt(var+eps).
      const float scale = g * inv_std;
      for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t offset = (n * channels_ + c) * spatial;
        ew::scale_into(grad_out.raw() + offset, scale, dx.raw() + offset, spatial);
      }
    }
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  Tensor dx;
  backward_core(grad_out, dx);
  return dx;
}

Tensor& BatchNorm2d::backward_into(const Tensor& grad_out, TensorArena& arena) {
  Tensor& dx = arena.alloc(grad_out.shape());
  backward_core(grad_out, dx);
  return dx;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_state(std::vector<StateTensor>& out) {
  Module::collect_state(out);
  out.push_back(StateTensor{"bn.running_mean", &running_mean_});
  out.push_back(StateTensor{"bn.running_var", &running_var_});
}

}  // namespace usb
