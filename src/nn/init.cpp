#include "nn/init.h"

#include <cmath>

namespace usb {

void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < weight.numel(); ++i) {
    weight[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < weight.numel(); ++i) {
    weight[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void uniform_init(Tensor& weight, float bound, Rng& rng) {
  for (std::int64_t i = 0; i < weight.numel(); ++i) {
    weight[i] = rng.uniform_float(-bound, bound);
  }
}

}  // namespace usb
