#include "nn/prefix_cache.h"

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace usb {

PrefixActivationCache::PrefixActivationCache(Network& net, const std::vector<Batch>& batches,
                                             std::int64_t boundary) {
  rebuild(net, batches, boundary);
}

void PrefixActivationCache::rebuild(Network& net, const std::vector<Batch>& batches,
                                    std::int64_t boundary) {
  const std::int64_t depth = net.sequential().size();
  boundary_ = boundary == kFullDepth ? depth : boundary;
  if (boundary_ < 0 || boundary_ > depth) {
    throw std::out_of_range("PrefixActivationCache: boundary outside the layer stack");
  }
  full_depth_ = boundary_ == depth;
  net.set_training(false);

  // Grow-never-shrink: keep existing slots (and their heap buffers, via
  // Tensor's vector storage) alive across rebuilds; assignment reuses
  // capacity when the new activation is no larger.
  activations_.resize(batches.size());
  predictions_.resize(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    activations_[i] = net.sequential().forward_range(batches[i].images, 0, boundary_);
    predictions_[i] = full_depth_ ? argmax_rows(activations_[i]) : std::vector<std::int64_t>{};
  }
}

Tensor PrefixActivationCache::forward_from(Network& net, std::size_t i) const {
  if (full_depth_) return activations_[i];
  return net.sequential().forward_range(activations_[i], boundary_, net.sequential().size());
}

}  // namespace usb
