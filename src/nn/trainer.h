// Supervised training and evaluation loops.
//
// The victim models of every experiment (clean or poisoned) are trained
// through this path; attacks with bespoke objectives (IAD, Latent) build on
// the same primitives but own their loops in src/attacks.
#pragma once

#include <cstdint>
#include <functional>

#include "data/dataset.h"
#include "nn/models.h"

namespace usb {

struct TrainConfig {
  std::int64_t epochs = 4;
  std::int64_t batch_size = 64;
  float lr = 0.03F;  // stable across all four architectures (no-BN BasicCnn included)
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  /// Multiplies lr by this factor after each epoch (1.0 = constant).
  float lr_decay = 0.7F;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct TrainResult {
  float final_train_loss = 0.0F;
  float final_train_accuracy = 0.0F;
  std::int64_t steps = 0;
};

/// Trains `network` on `train_set` with SGD + momentum. Leaves the network
/// in eval mode.
TrainResult train_network(Network& network, const Dataset& train_set, const TrainConfig& config);

/// Top-1 accuracy on `test_set` (network must be in eval mode; this function
/// enforces it).
[[nodiscard]] float evaluate_accuracy(Network& network, const Dataset& test_set,
                                      std::int64_t batch_size = 128);

/// Accuracy of mapping transformed inputs to `target_class`, excluding rows
/// whose true label already equals the target — i.e. the attack success
/// rate when `transform` stamps a backdoor trigger.
[[nodiscard]] float targeted_success_rate(
    Network& network, const Dataset& test_set, std::int64_t target_class,
    const std::function<Tensor(const Tensor&, std::span<const std::int64_t>)>& transform,
    std::int64_t batch_size = 128);

}  // namespace usb
