// Detection experiments: one function call per paper-table row.
//
// A "case" is a population of models (clean or backdoored with one attack
// configuration) evaluated by a set of detectors. The output reproduces the
// paper's table layout: accuracy, ASR, per-method reversed-trigger L1 norm,
// model-detection counts and target-class-detection counts.
#pragma once

#include <string>
#include <vector>

#include "data/probe_cache.h"
#include "defenses/detector.h"
#include "exp/model_zoo.h"
#include "metrics/detection.h"
#include "service/detection_service.h"

namespace usb {

enum class MethodKind { kNc, kTabor, kUsb };

[[nodiscard]] std::string to_string(MethodKind method);

/// Per-method optimization budget, pre-scaled for USB_FAST runs.
struct MethodBudget {
  std::int64_t nc_steps = 150;
  std::int64_t tabor_steps = 150;
  std::int64_t usb_refine_steps = 150;
  std::int64_t uap_max_passes = 3;

  [[nodiscard]] static MethodBudget from_scale(const ExperimentScale& scale);
};

struct DetectionCaseSpec {
  std::string label;  // e.g. "Backdoored (2x2 trigger)"
  DatasetSpec dataset;
  Architecture arch = Architecture::kMiniResNet;
  AttackKind attack = AttackKind::kNone;
  std::int64_t trigger_size = 0;
  double poison_rate = 0.08;
  /// |X| of Alg. 1; also the probe budget given to NC/TABOR (the paper gives
  /// them the full training set — see DESIGN.md).
  std::int64_t probe_size = 300;
};

struct MethodRow {
  std::string method;
  CaseCounts counts;
  /// Mean end-to-end scan wall clock per model (DetectionReport::
  /// wall_seconds — what a caller waits, not the per-class work sum).
  double mean_detect_seconds = 0.0;
};

struct DetectionCaseResult {
  DetectionCaseSpec spec;
  double mean_accuracy = 0.0;
  double mean_asr = 0.0;
  std::vector<MethodRow> methods;
};

/// Builds a detector of the given kind under the given budget. When
/// `shared_probe` is given it is injected as the detector's prebuilt
/// full-probe evaluation cache (ClassScanOptions::external_probe_cache); it
/// must outlive the detector and be batched at the scan's eval batch size
/// (128). The harness itself no longer passes one — scans submitted through
/// DetectionService get their cache from the service's ProbeStore — but
/// direct detect() callers still can.
[[nodiscard]] DetectorPtr make_detector(MethodKind method, const MethodBudget& budget,
                                        const ProbeBatchCache* shared_probe = nullptr);

/// Trains/loads `scale.models_per_case` models for the case, then submits
/// every (model x method) scan to a DetectionService at once — scans of one
/// case overlap on the service pool instead of running back to back, and
/// each model's probe is resolved through the service's content-addressed
/// ProbeStore (shared across the methods scanning it, and across cases when
/// `service` is passed in). Backdoor target class rotates with the model
/// index (the paper varies triggers per trained model). Results are
/// bit-identical to the historical sequential detect() loop.
///
/// `service` is optional: null runs the case on a private service; passing
/// one shares its ProbeStore and pool across cases (bench_table1 does).
[[nodiscard]] DetectionCaseResult run_detection_case(const DetectionCaseSpec& spec,
                                                     const ExperimentScale& scale,
                                                     const std::vector<MethodKind>& methods,
                                                     DetectionService* service = nullptr);

/// Prints results in the paper's table layout.
void print_detection_table(const std::string& title,
                           const std::vector<DetectionCaseResult>& results);

}  // namespace usb
