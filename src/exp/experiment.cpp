#include "exp/experiment.h"

#include <cstdio>
#include <optional>
#include <stdexcept>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "utils/logging.h"
#include "utils/table.h"

namespace usb {

std::string to_string(MethodKind method) {
  switch (method) {
    case MethodKind::kNc: return "NC";
    case MethodKind::kTabor: return "TABOR";
    case MethodKind::kUsb: return "USB";
  }
  throw std::invalid_argument("unknown method");
}

MethodBudget MethodBudget::from_scale(const ExperimentScale& scale) {
  MethodBudget budget;
  if (scale.fast) {
    budget.nc_steps = 60;
    budget.tabor_steps = 60;
    budget.usb_refine_steps = 60;
    budget.uap_max_passes = 2;
  }
  // Fine-grained overrides for time-boxed runs.
  budget.nc_steps = env_int("USB_NC_STEPS", budget.nc_steps);
  budget.tabor_steps = env_int("USB_TABOR_STEPS", budget.tabor_steps);
  budget.usb_refine_steps = env_int("USB_USB_STEPS", budget.usb_refine_steps);
  budget.uap_max_passes = env_int("USB_UAP_PASSES", budget.uap_max_passes);
  return budget;
}

DetectorPtr make_detector(MethodKind method, const MethodBudget& budget,
                          const ProbeBatchCache* shared_probe) {
  switch (method) {
    case MethodKind::kNc: {
      ReverseOptConfig config;
      config.steps = budget.nc_steps;
      config.shared_probe_cache = shared_probe;
      return std::make_unique<NeuralCleanse>(config);
    }
    case MethodKind::kTabor: {
      TaborConfig config;
      config.base.steps = budget.tabor_steps;
      config.base.shared_probe_cache = shared_probe;
      return std::make_unique<Tabor>(config);
    }
    case MethodKind::kUsb: {
      UsbConfig config;
      config.refine_steps = budget.usb_refine_steps;
      config.uap.max_passes = budget.uap_max_passes;
      config.shared_probe_cache = shared_probe;
      return std::make_unique<UsbDetector>(config);
    }
  }
  throw std::invalid_argument("unknown method");
}

DetectionCaseResult run_detection_case(const DetectionCaseSpec& spec,
                                       const ExperimentScale& scale,
                                       const std::vector<MethodKind>& methods,
                                       DetectionService* service) {
  DetectionCaseResult result;
  result.spec = spec;
  for (const MethodKind method : methods) {
    result.methods.push_back(MethodRow{to_string(method), CaseCounts{to_string(method)}, 0.0});
  }

  // Case-private service when the caller shares none across cases.
  std::optional<DetectionService> local_service;
  if (service == nullptr) service = &local_service.emplace();

  const MethodBudget budget = MethodBudget::from_scale(scale);

  // Phase 1 — train or load the whole population (zoo-cached; the models
  // must outlive submit(), which is where the service clones them).
  std::vector<TrainedModel> models;
  std::vector<std::int64_t> true_targets;
  models.reserve(static_cast<std::size_t>(scale.models_per_case));
  for (std::int64_t index = 0; index < scale.models_per_case; ++index) {
    ModelCaseSpec model_spec;
    model_spec.dataset = spec.dataset;
    model_spec.arch = spec.arch;
    model_spec.model_index = index;
    model_spec.scale = scale;
    model_spec.attack.kind = spec.attack;
    model_spec.attack.trigger_size = spec.trigger_size;
    model_spec.attack.poison_rate = spec.poison_rate;
    // The paper trains each model with its own randomly placed/coloured
    // trigger and target; rotate the target with the model index.
    model_spec.attack.target_class = index % spec.dataset.num_classes;

    models.push_back(train_or_load(model_spec));
    result.mean_accuracy += models.back().clean_accuracy;
    result.mean_asr += models.back().asr;
    true_targets.push_back(spec.attack == AttackKind::kNone ? -1
                                                           : model_spec.attack.target_class);
  }

  // Phase 2 — submit every (model x method) scan at once. The probe is
  // named by content address, so the service materializes each model's
  // probe once for all methods (and reuses it across cases sharing the
  // same coordinates when the caller passed a shared service). Memory
  // trade-off, accepted at this repo's model scale (mini networks, <MB
  // each): submit() deep-copies the model per request — the safety
  // contract that lets concurrent methods scan one model — so a queue of
  // models_per_case x methods requests holds that many clones until the
  // executors drain it. A queue-depth/admission limit is a ROADMAP item.
  std::vector<ScanHandle> handles;
  handles.reserve(models.size() * methods.size());
  for (std::int64_t index = 0; index < scale.models_per_case; ++index) {
    for (const MethodKind method : methods) {
      ScanRequest request;
      request.model = &models[static_cast<std::size_t>(index)].network;
      request.detector = make_detector(method, budget);
      request.probe_key = ProbeKey{spec.dataset, spec.probe_size,
                                   hash_combine(0x9e0beULL, static_cast<std::uint64_t>(index))};
      handles.push_back(service->submit(std::move(request)));
    }
  }

  // Phase 3 — ordered reduction, as if the legacy loop had run.
  std::size_t handle_index = 0;
  for (std::int64_t index = 0; index < scale.models_per_case; ++index) {
    for (std::size_t m = 0; m < methods.size(); ++m, ++handle_index) {
      const ScanOutcome& outcome = handles[handle_index].wait();
      if (outcome.status != ScanStatus::kDone) {
        throw std::runtime_error("run_detection_case: scan " + to_string(outcome.status) +
                                 (outcome.error.empty() ? "" : ": " + outcome.error));
      }
      const DetectionReport& report = outcome.report;
      const std::int64_t true_target = true_targets[static_cast<std::size_t>(index)];
      result.methods[m].mean_detect_seconds += report.wall_seconds;
      result.methods[m].counts.record(report.verdict, true_target);
      USB_LOG(Info) << spec.label << " model " << index << " " << report.method
                    << (report.verdict.backdoored ? " -> backdoored" : " -> clean")
                    << " (true target " << true_target << ")";
    }
  }

  const double n = static_cast<double>(scale.models_per_case);
  result.mean_accuracy /= n;
  result.mean_asr /= n;
  for (MethodRow& row : result.methods) row.mean_detect_seconds /= n;
  return result;
}

void print_detection_table(const std::string& title,
                           const std::vector<DetectionCaseResult>& results) {
  std::printf("\n=== %s ===\n", title.c_str());
  Table table({"Model", "Accuracy", "ASR", "Method", "L1 norm", "Clean", "Backdoored", "Correct",
               "Correct Set", "Wrong"});
  for (const DetectionCaseResult& result : results) {
    const bool is_clean = result.spec.attack == AttackKind::kNone;
    bool first = true;
    for (const MethodRow& row : result.methods) {
      table.add_row({first ? result.spec.label : "",
                     first ? format_percent(result.mean_accuracy) : "",
                     first ? (is_clean ? "N/A" : format_percent(result.mean_asr)) : "",
                     row.method, format_double(row.counts.mean_l1()),
                     std::to_string(row.counts.detected_clean),
                     std::to_string(row.counts.detected_backdoored),
                     is_clean ? "N/A" : std::to_string(row.counts.correct),
                     is_clean ? "N/A" : std::to_string(row.counts.correct_set),
                     is_clean ? "N/A" : std::to_string(row.counts.wrong)});
      first = false;
    }
  }
  table.print();
}

}  // namespace usb
