#include "exp/experiment.h"

#include <cstdio>
#include <stdexcept>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "utils/logging.h"
#include "utils/table.h"
#include "utils/timer.h"

namespace usb {

std::string to_string(MethodKind method) {
  switch (method) {
    case MethodKind::kNc: return "NC";
    case MethodKind::kTabor: return "TABOR";
    case MethodKind::kUsb: return "USB";
  }
  throw std::invalid_argument("unknown method");
}

MethodBudget MethodBudget::from_scale(const ExperimentScale& scale) {
  MethodBudget budget;
  if (scale.fast) {
    budget.nc_steps = 60;
    budget.tabor_steps = 60;
    budget.usb_refine_steps = 60;
    budget.uap_max_passes = 2;
  }
  // Fine-grained overrides for time-boxed runs.
  budget.nc_steps = env_int("USB_NC_STEPS", budget.nc_steps);
  budget.tabor_steps = env_int("USB_TABOR_STEPS", budget.tabor_steps);
  budget.usb_refine_steps = env_int("USB_USB_STEPS", budget.usb_refine_steps);
  budget.uap_max_passes = env_int("USB_UAP_PASSES", budget.uap_max_passes);
  return budget;
}

DetectorPtr make_detector(MethodKind method, const MethodBudget& budget,
                          const ProbeBatchCache* shared_probe) {
  switch (method) {
    case MethodKind::kNc: {
      ReverseOptConfig config;
      config.steps = budget.nc_steps;
      config.shared_probe_cache = shared_probe;
      return std::make_unique<NeuralCleanse>(config);
    }
    case MethodKind::kTabor: {
      TaborConfig config;
      config.base.steps = budget.tabor_steps;
      config.base.shared_probe_cache = shared_probe;
      return std::make_unique<Tabor>(config);
    }
    case MethodKind::kUsb: {
      UsbConfig config;
      config.refine_steps = budget.usb_refine_steps;
      config.uap.max_passes = budget.uap_max_passes;
      config.shared_probe_cache = shared_probe;
      return std::make_unique<UsbDetector>(config);
    }
  }
  throw std::invalid_argument("unknown method");
}

DetectionCaseResult run_detection_case(const DetectionCaseSpec& spec,
                                       const ExperimentScale& scale,
                                       const std::vector<MethodKind>& methods) {
  DetectionCaseResult result;
  result.spec = spec;
  for (const MethodKind method : methods) {
    result.methods.push_back(MethodRow{to_string(method), CaseCounts{to_string(method)}, 0.0});
  }

  const MethodBudget budget = MethodBudget::from_scale(scale);
  for (std::int64_t index = 0; index < scale.models_per_case; ++index) {
    ModelCaseSpec model_spec;
    model_spec.dataset = spec.dataset;
    model_spec.arch = spec.arch;
    model_spec.model_index = index;
    model_spec.scale = scale;
    model_spec.attack.kind = spec.attack;
    model_spec.attack.trigger_size = spec.trigger_size;
    model_spec.attack.poison_rate = spec.poison_rate;
    // The paper trains each model with its own randomly placed/coloured
    // trigger and target; rotate the target with the model index.
    model_spec.attack.target_class = index % spec.dataset.num_classes;

    TrainedModel model = train_or_load(model_spec);
    result.mean_accuracy += model.clean_accuracy;
    result.mean_asr += model.asr;

    const Dataset probe = make_probe(spec.dataset, spec.probe_size,
                                     hash_combine(0x9e0beULL, static_cast<std::uint64_t>(index)));
    // One probe materialization per model, shared read-only by every
    // detector run against it (each detect() previously re-batched it).
    const ProbeBatchCache shared_probe(probe);
    const std::int64_t true_target =
        spec.attack == AttackKind::kNone ? -1 : model_spec.attack.target_class;

    for (std::size_t m = 0; m < methods.size(); ++m) {
      DetectorPtr detector = make_detector(methods[m], budget, &shared_probe);
      const Timer timer;
      const DetectionReport report = detector->detect(model.network, probe);
      result.methods[m].mean_detect_seconds += timer.seconds();
      result.methods[m].counts.record(report.verdict, true_target);
      USB_LOG(Info) << spec.label << " model " << index << " " << report.method
                    << (report.verdict.backdoored ? " -> backdoored" : " -> clean")
                    << " (true target " << true_target << ")";
    }
  }

  const double n = static_cast<double>(scale.models_per_case);
  result.mean_accuracy /= n;
  result.mean_asr /= n;
  for (MethodRow& row : result.methods) row.mean_detect_seconds /= n;
  return result;
}

void print_detection_table(const std::string& title,
                           const std::vector<DetectionCaseResult>& results) {
  std::printf("\n=== %s ===\n", title.c_str());
  Table table({"Model", "Accuracy", "ASR", "Method", "L1 norm", "Clean", "Backdoored", "Correct",
               "Correct Set", "Wrong"});
  for (const DetectionCaseResult& result : results) {
    const bool is_clean = result.spec.attack == AttackKind::kNone;
    bool first = true;
    for (const MethodRow& row : result.methods) {
      table.add_row({first ? result.spec.label : "",
                     first ? format_percent(result.mean_accuracy) : "",
                     first ? (is_clean ? "N/A" : format_percent(result.mean_asr)) : "",
                     row.method, format_double(row.counts.mean_l1()),
                     std::to_string(row.counts.detected_clean),
                     std::to_string(row.counts.detected_backdoored),
                     is_clean ? "N/A" : std::to_string(row.counts.correct),
                     is_clean ? "N/A" : std::to_string(row.counts.correct_set),
                     is_clean ? "N/A" : std::to_string(row.counts.wrong)});
      first = false;
    }
  }
  table.print();
}

}  // namespace usb
