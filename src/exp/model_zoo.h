// Model zoo: trains (or loads from the on-disk cache) the victim-model
// populations that every table row evaluates.
//
// A population member is identified by (dataset, architecture, attack,
// model_index); all seeds — weight init, data shuffling, trigger placement,
// poison selection — derive from that identity, so a cached checkpoint is
// bit-equivalent to retraining. The cache makes the bench suite cheap to
// re-run: Table 1, Fig. 2, Fig. 3 and Fig. 4 all share the same CIFAR-10
// MiniResNet population.
#pragma once

#include <optional>
#include <string>

#include "attacks/factory.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "utils/config.h"

namespace usb {

struct ModelCaseSpec {
  DatasetSpec dataset;
  Architecture arch = Architecture::kMiniResNet;
  AttackParams attack;  // attack.kind == kNone for clean populations
  std::int64_t model_index = 0;
  ExperimentScale scale;

  /// Stable cache key (also the checkpoint file stem).
  [[nodiscard]] std::string cache_key() const;
};

struct TrainedModel {
  Network network;
  /// The attack instance used in training. Null for clean models and for
  /// dynamic attacks restored from cache (their generator state is not
  /// checkpointed; ASR comes from the cached metadata instead).
  AttackPtr attack;
  float clean_accuracy = 0.0F;
  float asr = 0.0F;
  bool from_cache = false;
};

/// Trains the described model or loads it from `scale.model_cache_dir`.
/// Evaluation numbers (accuracy, ASR) are computed on a held-out synthetic
/// test set at train time and persisted alongside the checkpoint.
[[nodiscard]] TrainedModel train_or_load(const ModelCaseSpec& spec);

/// The defender's clean probe set for a dataset (drawn from the same
/// distribution as training, disjoint seed). The paper uses 300 samples for
/// 32x32 datasets and 500 for the ImageNet subset.
[[nodiscard]] Dataset make_probe(const DatasetSpec& dataset, std::int64_t probe_size,
                                 std::uint64_t seed = 0x9e0beULL);

}  // namespace usb
