#include "exp/model_zoo.h"

#include <cinttypes>
#include <cstdio>

#include "utils/logging.h"
#include "utils/serialize.h"

namespace usb {
namespace {

std::uint64_t spec_hash(const ModelCaseSpec& spec) {
  std::uint64_t h = 0x05b0feedULL;
  for (const char ch : spec.dataset.name) h = hash_combine(h, static_cast<std::uint64_t>(ch));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.arch),
                   static_cast<std::uint64_t>(spec.attack.kind),
                   static_cast<std::uint64_t>(spec.attack.trigger_size),
                   static_cast<std::uint64_t>(spec.attack.target_class),
                   static_cast<std::uint64_t>(spec.attack.poison_rate * 1e6),
                   static_cast<std::uint64_t>(spec.model_index),
                   static_cast<std::uint64_t>(spec.scale.epochs),
                   static_cast<std::uint64_t>(spec.scale.train_size));
  return h;
}

struct ModelMeta {
  float accuracy = 0.0F;
  float asr = 0.0F;
};

void save_meta(const ModelMeta& meta, const std::string& path) {
  BinaryWriter writer;
  writer.write_f32(meta.accuracy);
  writer.write_f32(meta.asr);
  writer.save(path);
}

std::optional<ModelMeta> load_meta(const std::string& path) {
  if (!file_exists(path)) return std::nullopt;
  BinaryReader reader = BinaryReader::from_file(path);
  ModelMeta meta;
  meta.accuracy = reader.read_f32();
  meta.asr = reader.read_f32();
  return meta;
}

}  // namespace

std::string ModelCaseSpec::cache_key() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%s_%s_%s_k%lld_t%lld_m%lld_%016" PRIx64,
                dataset.name.c_str(), to_string(arch).c_str(), to_string(attack.kind).c_str(),
                static_cast<long long>(attack.trigger_size),
                static_cast<long long>(attack.target_class),
                static_cast<long long>(model_index), spec_hash(*this));
  return buffer;
}

Dataset make_probe(const DatasetSpec& dataset, std::int64_t probe_size, std::uint64_t seed) {
  return generate_dataset(dataset, probe_size, seed);
}

TrainedModel train_or_load(const ModelCaseSpec& spec) {
  const std::string cache_dir = spec.scale.model_cache_dir;
  const std::string stem =
      cache_dir.empty() ? std::string() : cache_dir + "/" + spec.cache_key();

  if (!stem.empty() && file_exists(stem + ".ckpt")) {
    if (const std::optional<ModelMeta> meta = load_meta(stem + ".meta")) {
      TrainedModel model{load_checkpoint(stem + ".ckpt"), nullptr, meta->accuracy, meta->asr,
                         /*from_cache=*/true};
      // Static attacks are reconstructible from their seed, so inference-time
      // stamping still works for cached models.
      if (spec.attack.kind == AttackKind::kBadNet || spec.attack.kind == AttackKind::kLatent) {
        model.attack = make_attack(spec.attack, spec.dataset);
      }
      USB_LOG(Debug) << "model zoo: cache hit " << spec.cache_key();
      return model;
    }
  }

  // Per-model seeds: everything about model i is a function of (spec, i).
  const std::uint64_t base_seed = hash_combine(spec_hash(spec), 0x5eedULL);
  const Dataset train_set =
      generate_dataset(spec.dataset, spec.scale.train_size, hash_combine(base_seed, 1));
  const Dataset test_set =
      generate_dataset(spec.dataset, spec.scale.test_size, hash_combine(base_seed, 2));

  TrainedModel model{make_network(spec.arch, spec.dataset.channels, spec.dataset.image_size,
                                  spec.dataset.num_classes, hash_combine(base_seed, 3)),
                     nullptr, 0.0F, 0.0F, /*from_cache=*/false};

  TrainConfig train_config;
  train_config.epochs = spec.scale.epochs;
  train_config.seed = hash_combine(base_seed, 4);

  AttackParams attack_params = spec.attack;
  attack_params.seed = hash_combine(base_seed, 5);
  model.attack = make_attack(attack_params, spec.dataset);

  // Training-stability guard: a rare bad initialization can diverge at the
  // default learning rate; retry with a gentler schedule rather than let a
  // degenerate victim pollute a table row.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0) {
      model.network = make_network(spec.arch, spec.dataset.channels, spec.dataset.image_size,
                                   spec.dataset.num_classes,
                                   hash_combine(base_seed, 3, static_cast<std::uint64_t>(attempt)));
      train_config.lr *= 0.5F;
      USB_LOG(Warn) << "model zoo: retraining " << spec.cache_key() << " (attempt "
                    << attempt + 1 << ", lr " << train_config.lr << ")";
    }
    if (model.attack != nullptr) {
      (void)model.attack->train_backdoored(model.network, train_set, train_config);
      model.asr = model.attack->success_rate(model.network, test_set);
    } else {
      (void)train_network(model.network, train_set, train_config);
    }
    model.clean_accuracy = evaluate_accuracy(model.network, test_set);
    if (model.clean_accuracy >= 0.80F) break;
  }
  USB_LOG(Info) << "model zoo: trained " << spec.cache_key()
                << " acc=" << model.clean_accuracy << " asr=" << model.asr;

  if (!stem.empty()) {
    ensure_directory(cache_dir);
    save_checkpoint(model.network, stem + ".ckpt");
    save_meta(ModelMeta{model.clean_accuracy, model.asr}, stem + ".meta");
  }
  return model;
}

}  // namespace usb
