// TensorArena: a bump allocator of reusable Tensor slots.
//
// The refinement hot path (thousands of Alg. 2 / NC / TABOR steps, each one
// forward + backward + trigger update) historically heap-allocated a fresh
// Tensor for every op result. The arena replaces that with slot recycling:
// alloc() hands out the next slot in sequence, reset() rewinds the cursor at
// a step boundary, and because consecutive steps request the same shape
// sequence, every slot's storage (Tensor::ensure_shape — grow-never-shrink)
// is reused byte-for-byte. After the first (warm-up) step the arena performs
// ZERO heap allocations — the property tensor_heap_allocations() lets tests
// assert.
//
// Lifetime rules:
//  - a Tensor& from alloc()/zeros() is valid until the NEXT reset() (or the
//    exit of the Scope that covers the alloc); holding it across a reset
//    reads recycled storage;
//  - one arena per ClassRefineTask / thread — the arena is not synchronized,
//    and sharing one across concurrently-running tasks would interleave
//    their slot sequences nondeterministically;
//  - the slot sequence should be shape-stable across steps for the
//    zero-allocation property; deviations are correct, just not free;
//  - nested phases (e.g. DeepFool iterations inside an Alg. 1 pass) use
//    Scope, which rewinds the cursor on exit so sibling phases recycle the
//    same slots instead of growing the arena.
//
// Contents of alloc() slots are UNSPECIFIED (stale bytes from the previous
// step); kernels writing every element need no clearing, accumulators use
// zeros().
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "tensor/tensor.h"
#include "utils/memory_budget.h"

namespace usb {

class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Releases this arena's storage high-water from the process MemoryBudget.
  ~TensorArena() {
    if (registered_bytes_ > 0) {
      MemoryBudget::process().release(MemoryBudget::Category::kArenas, registered_bytes_);
    }
  }

  /// Next slot, shaped to `shape`; contents unspecified. The reference is
  /// stable across later alloc() calls (slots live in a deque) and valid
  /// until reset() / enclosing-Scope exit.
  [[nodiscard]] Tensor& alloc(const Shape& shape) {
    Tensor& slot = next_slot(shape);
    return slot;
  }

  /// alloc() + fill(0): for accumulators and scatter targets.
  [[nodiscard]] Tensor& zeros(const Shape& shape) {
    Tensor& slot = next_slot(shape);
    slot.fill(0.0F);
    return slot;
  }

  /// Parks an already-built Tensor in the next slot (the slot adopts its
  /// buffer). Fallback used by Module's default forward_into adapter.
  Tensor& adopt(Tensor&& value) {
    Tensor& slot = cursor_ < slots_.size() ? slots_[cursor_++] : emplace_slot();
    slot = std::move(value);
    track_slot(cursor_ - 1, slot.numel() * static_cast<std::int64_t>(sizeof(float)));
    return slot;
  }

  /// Rewinds to empty, keeping every slot's storage for recycling. Call at
  /// step boundaries; invalidates all outstanding references.
  void reset() noexcept { cursor_ = 0; }

  /// Slots handed out since the last reset().
  [[nodiscard]] std::size_t slots_in_use() const noexcept { return cursor_; }
  /// Slots ever created (the high-water mark of a step's op sequence).
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return slots_.size(); }

  /// RAII cursor rewind for nested phases: allocs made inside the scope are
  /// recycled when it exits (their references die with it).
  class Scope {
   public:
    explicit Scope(TensorArena& arena) noexcept : arena_(arena), saved_(arena.cursor_) {}
    ~Scope() { arena_.cursor_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TensorArena& arena_;
    std::size_t saved_;
  };

 private:
  Tensor& next_slot(const Shape& shape) {
    if (cursor_ < slots_.size()) {
      Tensor& slot = slots_[cursor_++];
      slot.ensure_shape(shape);
      track_slot(cursor_ - 1, slot.numel() * static_cast<std::int64_t>(sizeof(float)));
      return slot;
    }
    slots_.emplace_back(shape);
    ++cursor_;
    Tensor& slot = slots_.back();
    track_slot(cursor_ - 1, slot.numel() * static_cast<std::int64_t>(sizeof(float)));
    return slot;
  }

  Tensor& emplace_slot() {
    slots_.emplace_back();
    slot_bytes_.push_back(0);
    ++cursor_;
    return slots_.back();
  }

  /// High-water accounting against the process MemoryBudget: a slot's
  /// registered figure only grows (ensure_shape never shrinks storage), so
  /// the steady-state cost is one integer compare per alloc — growth, and
  /// the atomic it pays for, happens only on warm-up steps.
  void track_slot(std::size_t index, std::int64_t bytes) {
    if (slot_bytes_.size() < slots_.size()) slot_bytes_.resize(slots_.size(), 0);
    std::int64_t& tracked = slot_bytes_[index];
    if (bytes > tracked) {
      MemoryBudget::process().add(MemoryBudget::Category::kArenas, bytes - tracked);
      registered_bytes_ += bytes - tracked;
      tracked = bytes;
    }
  }

  std::deque<Tensor> slots_;  // deque: stable references across growth
  std::deque<std::int64_t> slot_bytes_;
  std::size_t cursor_ = 0;
  std::int64_t registered_bytes_ = 0;
};

}  // namespace usb
