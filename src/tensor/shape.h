// Shape: dimension vector for dense tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace usb {

/// Dimensions of a dense, contiguous, row-major tensor. Rank 0 denotes a
/// scalar (numel 1 by convention of the empty product).
struct Shape {
  std::vector<std::int64_t> dims;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> values) : dims(values) {}
  explicit Shape(std::vector<std::int64_t> values) : dims(std::move(values)) {}

  [[nodiscard]] std::int64_t rank() const noexcept {
    return static_cast<std::int64_t>(dims.size());
  }

  [[nodiscard]] std::int64_t numel() const noexcept {
    std::int64_t n = 1;
    for (const std::int64_t d : dims) n *= d;
    return n;
  }

  [[nodiscard]] std::int64_t operator[](std::int64_t axis) const noexcept {
    return dims[static_cast<std::size_t>(axis)];
  }
  std::int64_t& operator[](std::int64_t axis) noexcept {
    return dims[static_cast<std::size_t>(axis)];
  }

  [[nodiscard]] bool operator==(const Shape& other) const noexcept { return dims == other.dims; }
  [[nodiscard]] bool operator!=(const Shape& other) const noexcept { return !(*this == other); }

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(dims[i]);
    }
    return out + "]";
  }
};

}  // namespace usb
