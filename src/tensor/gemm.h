// Cache-blocked, register-tiled single-precision GEMM core.
//
// One kernel serves every dense-matrix entry point in the library: C = A x B
// with either operand optionally stored transposed (the transpose is folded
// into panel packing, never materialized). The core packs A into MR-row and
// B into NR-column panels inside aligned thread-local scratch, loops over
// MC/KC/NC cache blocks, and computes each MRxNR register tile with a
// small-unrolled micro-kernel (an AVX2-compiled variant is selected at
// runtime on x86; both variants execute the identical scalar operation
// sequence, so results are bit-identical across machines).
//
// Determinism contract: the C matrix is partitioned into a FIXED tile grid
// derived only from (M, N) and the blocking constants, and each element of C
// accumulates its K products in ascending order within a tile (KC blocks in
// sequence, p ascending inside a block, one accumulator per element). Tiles
// write disjoint C regions and are executed via parallel_for_deterministic,
// so the result is bit-identical for any USB_THREADS — and, for K <= KC,
// bit-identical to the textbook triple loop that sums p in ascending order
// with a single float accumulator (tests/test_gemm.cpp locks both in).
#pragma once

#include <cstddef>
#include <cstdint>

namespace usb {

/// 64-byte aligned float scratch that grows on demand and never shrinks.
/// Contents are unspecified after ensure(); not thread-safe (intended for
/// thread_local instances).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer();
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Returns a buffer of at least `count` floats.
  float* ensure(std::size_t count);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] float* data() const noexcept { return data_; }

 private:
  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// C (M,N; row stride ldc) = A x B, or += when `accumulate`.
///  - transpose_a == false: A is (M,K) with row stride lda;
///    transpose_a == true:  A is stored (K,M) with row stride lda.
///  - transpose_b == false: B is (K,N) with row stride ldb;
///    transpose_b == true:  B is stored (N,K) with row stride ldb.
/// C must not alias A or B. Large problems are tile-parallel over the
/// current pool via parallel_for_deterministic (bit-identical for any
/// thread count); small ones run inline.
void gemm(bool transpose_a, bool transpose_b, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
          std::int64_t ldc, bool accumulate);

}  // namespace usb
