#include "tensor/gemm.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "tensor/simd_common.h"
#include "utils/thread_pool.h"

namespace usb {

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

float* AlignedBuffer::ensure(std::size_t count) {
  if (count > capacity_) {
    // Geometric growth so repeated slightly-larger requests settle quickly;
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = std::max(count, capacity_ * 2) * sizeof(float);
    bytes = (bytes + 63) & ~static_cast<std::size_t>(63);
    std::free(data_);
    // Reset before allocating: if aligned_alloc fails the buffer must not
    // be left pointing at freed memory with a stale nonzero capacity.
    data_ = nullptr;
    capacity_ = 0;
    data_ = static_cast<float*>(std::aligned_alloc(64, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    capacity_ = bytes / sizeof(float);
  }
  return data_;
}

namespace {

// Blocking constants. The register tile is MR x NR (6x16 floats = 12 ymm
// accumulators in the AVX2 path, leaving registers for the A broadcast and
// the B panel row); A blocks are MC x KC (~96 KiB) and B blocks KC x NC
// (~128 KiB), both L2-resident. MC is a multiple of MR and NC of NR so only
// the final panel of a tile is zero-padded.
constexpr int kMR = 6;
constexpr int kNR = 16;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kMC = 96;
constexpr std::int64_t kNC = 128;

// Below this flop count the (lock + notify) cost of tile dispatch exceeds
// the work; tiles then run inline in grid order — same decomposition, same
// per-element arithmetic, so the cutoff has no numeric effect.
constexpr double kParallelFlopCutoff = 1.0e6;

// The lane-vector type and USB_RESTRICT come from tensor/simd_common.h,
// shared with the elementwise kernel TU (one definition of the
// correctness-critical attributes for every kernel).
using simd::v8sf;

// The micro-kernel computes a full (zero-padded) MR x NR tile over one KC
// block into `out`, holding the 6x16 accumulators in 12 lane vectors. Each
// of the MR*NR accumulator lanes receives its products in ascending p order
// — one accumulator per element, no pairwise splitting — which is what
// makes the blocked result exactly reproducible by a naive ascending-order
// reference for K <= KC. Multiply and add stay separate operations (the TU
// is compiled without FMA contraction), so the portable and AVX2
// instantiations round identically; the lanes merely run 8 independent
// scalar chains side by side.
#define USB_DEFINE_MICRO_KERNEL(NAME, TARGET_ATTR)                                       \
  TARGET_ATTR void NAME(std::int64_t kc, const float* USB_RESTRICT ap,                   \
                        const float* USB_RESTRICT bp, float* USB_RESTRICT out) {         \
    v8sf acc[kMR][2];                                                                    \
    for (int mr = 0; mr < kMR; ++mr) {                                                   \
      acc[mr][0] = v8sf{};                                                               \
      acc[mr][1] = v8sf{};                                                               \
    }                                                                                    \
    for (std::int64_t p = 0; p < kc; ++p) {                                              \
      const float* USB_RESTRICT a_col = ap + p * kMR;                                    \
      const v8sf b0 = *reinterpret_cast<const v8sf*>(bp + p * kNR);                      \
      const v8sf b1 = *reinterpret_cast<const v8sf*>(bp + p * kNR + 8);                  \
      for (int mr = 0; mr < kMR; ++mr) {                                                 \
        const float a = a_col[mr];                                                       \
        const v8sf a_bcast = {a, a, a, a, a, a, a, a};                                   \
        acc[mr][0] += a_bcast * b0;                                                      \
        acc[mr][1] += a_bcast * b1;                                                      \
      }                                                                                  \
    }                                                                                    \
    for (int mr = 0; mr < kMR; ++mr) {                                                   \
      *reinterpret_cast<v8sf*>(out + mr * kNR) = acc[mr][0];                             \
      *reinterpret_cast<v8sf*>(out + mr * kNR + 8) = acc[mr][1];                         \
    }                                                                                    \
  }

USB_DEFINE_MICRO_KERNEL(micro_kernel_portable, )
#if defined(__x86_64__) || defined(__i386__)
USB_DEFINE_MICRO_KERNEL(micro_kernel_avx2, __attribute__((target("avx2"))))
#endif

#undef USB_DEFINE_MICRO_KERNEL

#if defined(USB_GEMM_FMA) && (defined(__x86_64__) || defined(__i386__))
// Opt-in FMA variant (-DUSB_GEMM_FMA, cmake option USB_GEMM_FMA): each
// accumulator lane fuses the multiply and add into one rounding via the
// vfmadd builtin, roughly doubling peak throughput. This deliberately breaks
// the separate-mul-add rounding the default kernels share, so builds with
// this option forfeit bitwise agreement with the ascending-order naive
// reference (tests compare with tolerances instead). Determinism across
// thread counts is unaffected: the tile grid and per-tile arithmetic are
// still schedule-free, the rounding is just FMA everywhere.
__attribute__((target("avx2,fma"))) void micro_kernel_fma(std::int64_t kc,
                                                          const float* USB_RESTRICT ap,
                                                          const float* USB_RESTRICT bp,
                                                          float* USB_RESTRICT out) {
  v8sf acc[kMR][2];
  for (int mr = 0; mr < kMR; ++mr) {
    acc[mr][0] = v8sf{};
    acc[mr][1] = v8sf{};
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* USB_RESTRICT a_col = ap + p * kMR;
    const v8sf b0 = *reinterpret_cast<const v8sf*>(bp + p * kNR);
    const v8sf b1 = *reinterpret_cast<const v8sf*>(bp + p * kNR + 8);
    for (int mr = 0; mr < kMR; ++mr) {
      const float a = a_col[mr];
      const v8sf a_bcast = {a, a, a, a, a, a, a, a};
      acc[mr][0] = __builtin_ia32_vfmaddps256(a_bcast, b0, acc[mr][0]);
      acc[mr][1] = __builtin_ia32_vfmaddps256(a_bcast, b1, acc[mr][1]);
    }
  }
  for (int mr = 0; mr < kMR; ++mr) {
    *reinterpret_cast<v8sf*>(out + mr * kNR) = acc[mr][0];
    *reinterpret_cast<v8sf*>(out + mr * kNR + 8) = acc[mr][1];
  }
}
#endif

using MicroKernelFn = void (*)(std::int64_t, const float*, const float*, float*);

MicroKernelFn pick_micro_kernel() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(USB_GEMM_FMA)
  if (simd::cpu_has_avx2() && __builtin_cpu_supports("fma")) return micro_kernel_fma;
#endif
  if (simd::cpu_has_avx2()) return micro_kernel_avx2;
#endif
  return micro_kernel_portable;
}

const MicroKernelFn g_micro_kernel = pick_micro_kernel();

/// Packs rows [i0, i0+rows) x columns [p0, p0+kc) of A into MR-row panels:
/// panel-major, then p, then the MR rows (zero-padded past `rows`).
void pack_a(const float* a, std::int64_t lda, bool transposed, std::int64_t i0, std::int64_t rows,
            std::int64_t p0, std::int64_t kc, float* USB_RESTRICT ap) {
  for (std::int64_t panel = 0; panel < rows; panel += kMR) {
    const std::int64_t valid = std::min<std::int64_t>(kMR, rows - panel);
    float* USB_RESTRICT dst = ap + panel * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < valid; ++r) {
        dst[p * kMR + r] = transposed ? a[(p0 + p) * lda + (i0 + panel + r)]
                                      : a[(i0 + panel + r) * lda + (p0 + p)];
      }
      for (std::int64_t r = valid; r < kMR; ++r) dst[p * kMR + r] = 0.0F;
    }
  }
}

/// Packs rows [p0, p0+kc) x columns [j0, j0+cols) of B into NR-column
/// panels: panel-major, then p, then the NR columns (zero-padded).
void pack_b(const float* b, std::int64_t ldb, bool transposed, std::int64_t p0, std::int64_t kc,
            std::int64_t j0, std::int64_t cols, float* USB_RESTRICT bp) {
  for (std::int64_t panel = 0; panel < cols; panel += kNR) {
    const std::int64_t valid = std::min<std::int64_t>(kNR, cols - panel);
    float* USB_RESTRICT dst = bp + panel * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t j = 0; j < valid; ++j) {
        dst[p * kNR + j] = transposed ? b[(j0 + panel + j) * ldb + (p0 + p)]
                                      : b[(p0 + p) * ldb + (j0 + panel + j)];
      }
      for (std::int64_t j = valid; j < kNR; ++j) dst[p * kNR + j] = 0.0F;
    }
  }
}

struct GemmArgs {
  bool transpose_a = false;
  bool transpose_b = false;
  std::int64_t m = 0, n = 0, k = 0;
  const float* a = nullptr;
  std::int64_t lda = 0;
  const float* b = nullptr;
  std::int64_t ldb = 0;
  float* c = nullptr;
  std::int64_t ldc = 0;
  bool accumulate = false;
};

/// Computes the C block rows [i0,i1) x cols [j0,j1): packs the needed A/B
/// panels per KC step into thread-local scratch and sweeps the micro-kernel
/// over the register tiles. Self-contained per tile, so any tile-to-thread
/// assignment yields identical results.
void compute_tile(const GemmArgs& g, std::int64_t i0, std::int64_t i1, std::int64_t j0,
                  std::int64_t j1) {
  thread_local AlignedBuffer a_scratch;
  thread_local AlignedBuffer b_scratch;
  float* const ap = a_scratch.ensure(static_cast<std::size_t>(kMC * kKC));
  float* const bp = b_scratch.ensure(static_cast<std::size_t>(kKC * kNC));
  const std::int64_t rows = i1 - i0;
  const std::int64_t cols = j1 - j0;
  alignas(64) float staging[kMR * kNR];

  for (std::int64_t p0 = 0; p0 < g.k; p0 += kKC) {
    const std::int64_t kc = std::min(kKC, g.k - p0);
    pack_b(g.b, g.ldb, g.transpose_b, p0, kc, j0, cols, bp);
    pack_a(g.a, g.lda, g.transpose_a, i0, rows, p0, kc, ap);
    // First KC block stores (unless accumulating into existing C); later
    // blocks add — the per-element KC-block order is fixed regardless of
    // threading because the whole K loop lives inside one tile.
    const bool store = p0 == 0 && !g.accumulate;
    for (std::int64_t jr = 0; jr < cols; jr += kNR) {
      const float* b_panel = bp + jr * kc;
      const std::int64_t valid_cols = std::min<std::int64_t>(kNR, cols - jr);
      for (std::int64_t ir = 0; ir < rows; ir += kMR) {
        const std::int64_t valid_rows = std::min<std::int64_t>(kMR, rows - ir);
        g_micro_kernel(kc, ap + ir * kc, b_panel, staging);
        float* c_block = g.c + (i0 + ir) * g.ldc + (j0 + jr);
        if (store) {
          for (std::int64_t r = 0; r < valid_rows; ++r) {
            for (std::int64_t j = 0; j < valid_cols; ++j) {
              c_block[r * g.ldc + j] = staging[r * kNR + j];
            }
          }
        } else {
          for (std::int64_t r = 0; r < valid_rows; ++r) {
            for (std::int64_t j = 0; j < valid_cols; ++j) {
              c_block[r * g.ldc + j] += staging[r * kNR + j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(bool transpose_a, bool transpose_b, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb, float* c,
          std::int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0F);
    }
    return;
  }
  const GemmArgs args{transpose_a, transpose_b, m, n, k, a, lda, b, ldb, c, ldc, accumulate};
  // Fixed, size-derived tile grid over C — never a function of thread count.
  const std::int64_t m_tiles = (m + kMC - 1) / kMC;
  const std::int64_t n_tiles = (n + kNC - 1) / kNC;
  const std::int64_t total_tiles = m_tiles * n_tiles;
  const auto tile_body = [&args, m, n, n_tiles](std::int64_t tile) {
    const std::int64_t ti = tile / n_tiles;
    const std::int64_t tj = tile % n_tiles;
    compute_tile(args, ti * kMC, std::min(m, (ti + 1) * kMC), tj * kNC,
                 std::min(n, (tj + 1) * kNC));
  };
  if (total_tiles == 1 ||
      2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) <
          kParallelFlopCutoff) {
    for (std::int64_t tile = 0; tile < total_tiles; ++tile) tile_body(tile);
  } else {
    parallel_for_deterministic(total_tiles, tile_body);
  }
}

}  // namespace usb
