// Elementwise kernel suite with runtime AVX2/portable dispatch.
//
// One header owns every elementwise loop the refinement hot path executes —
// activation forwards/backwards, add/mul/axpy, the masked-trigger blend and
// its gradients, the Adam moment update, clamping, BatchNorm's per-element
// normalization — mirroring the dispatch treatment tensor/gemm.cpp gives the
// GEMM micro-kernel: both variants are compiled into every build, the AVX2
// one is selected at runtime on capable x86 CPUs, and tests can pin either
// via force_variant() to compare them bitwise.
//
// Determinism contract: every vectorized kernel here is PER-ELEMENT
// INDEPENDENT — output element i is a fixed expression of input elements i
// only, evaluated in the same operation order as the historical scalar loop
// (the TU is compiled with -ffp-contract=off, so no FMA fusion sneaks in on
// either path). The lanes merely run 8 independent scalar chains side by
// side; sqrt and division are IEEE-754 correctly rounded in both scalar and
// vector forms. Results are therefore bit-identical across variants,
// machines, and thread counts.
//
// Reductions and libm-transcendental kernels deliberately stay scalar:
//  - sigmoid/tanh/SiLU forwards call std::exp/std::tanh per element (a SIMD
//    exp approximation would change bits vs the historical path);
//  - softmax_rows keeps its ascending-order max/sum (vector lanes would
//    reassociate the sum);
// see the dispatch table in README.md ("Performance").
#pragma once

#include <cstdint>
#include <optional>

namespace usb::ew {

enum class Variant { kPortable, kAvx2 };

/// True when the CPU (and build target) can execute the variant.
[[nodiscard]] bool variant_available(Variant variant) noexcept;

/// The variant dispatched calls currently execute.
[[nodiscard]] Variant active_variant() noexcept;

/// Test/bench hook: pins dispatch to one variant until called with nullopt
/// (restores runtime selection). Throws std::invalid_argument when the
/// variant is unavailable. Not synchronized — flip only while no kernels
/// are in flight.
void force_variant(std::optional<Variant> variant);

// ---- Vectorized kernels (portable + AVX2, bit-identical) ----------------
// n is the element count; buffers may be unaligned; in-place aliasing is
// allowed only where a parameter name says so (dst).

/// y[i] = x[i] < 0 ? 0 : x[i]
void relu_fwd(const float* x, float* y, std::int64_t n);
/// dx[i] = x[i] <= 0 ? 0 : dy[i]
void relu_bwd(const float* x, const float* dy, float* dx, std::int64_t n);
/// dx[i] = dy[i] * (s[i] * (1 - s[i]))  — s is the cached sigmoid output
void sigmoid_bwd(const float* s, const float* dy, float* dx, std::int64_t n);
/// dx[i] = dy[i] * (1 - t[i] * t[i])  — t is the cached tanh output
void tanh_bwd(const float* t, const float* dy, float* dx, std::int64_t n);
/// dx[i] = dy[i] * (s[i] * (1 + x[i] * (1 - s[i])))
void silu_bwd(const float* s, const float* x, const float* dy, float* dx, std::int64_t n);

/// out[i] = a[i] + b[i]
void add(const float* a, const float* b, float* out, std::int64_t n);
/// out[i] = a[i] * b[i]
void mul(const float* a, const float* b, float* out, std::int64_t n);
/// dst[i] += src[i]
void accum(float* dst, const float* src, std::int64_t n);
/// dst[i] -= src[i]
void accum_sub(float* dst, const float* src, std::int64_t n);
/// dst[i] *= src[i]  (Hadamard)
void accum_mul(float* dst, const float* src, std::int64_t n);
/// dst[i] += a[i] * b[i]
void muladd_accum(float* dst, const float* a, const float* b, std::int64_t n);
/// dst[i] *= s
void scale(float* dst, float s, std::int64_t n);
/// out[i] = src[i] * s
void scale_into(const float* src, float s, float* out, std::int64_t n);
/// dst[i] += s
void add_scalar(float* dst, float s, std::int64_t n);
/// dst[i] += alpha * src[i]  (axpy)
void axpy(float* dst, const float* src, float alpha, std::int64_t n);
/// dst[i] = clamp(dst[i], lo, hi) with std::clamp's NaN/ordering semantics
void clamp(float* dst, float lo, float hi, std::int64_t n);

/// Masked-trigger blend: out[i] = x[i] * (1 - m[i]) + p[i] * m[i]
void blend(const float* x, const float* m, const float* p, float* out, std::int64_t n);
/// dm[i] += dxp[i] * (p[i] - x[i])  — the mask half of the blend gradient
void mask_grad_accum(float* dm, const float* dxp, const float* p, const float* x,
                     std::int64_t n);
/// g[i] += (d[i] * s[i]) * (1 - s[i])  — chain an upstream gradient through
/// a sigmoid whose OUTPUT s is cached (the logit-reparameterized trigger)
void dsigmoid_chain_accum(float* g, const float* d, const float* s, std::int64_t n);
/// g[i] += (w * s[i]) * (1 - s[i])  — the mask-L1 term's gradient
void l1_sigmoid_grad_accum(float* g, const float* s, float w, std::int64_t n);

/// xhat[i] = (x[i] - mean) * inv_std;  y[i] = gamma * xhat[i] + beta
void bn_fwd(const float* x, float* xhat, float* y, float mean, float inv_std, float gamma,
            float beta, std::int64_t n);
/// dx[i] = scale * ((dy[i] - mean_dy) - xhat[i] * mean_dy_xhat)
void bn_bwd_train(const float* dy, const float* xhat, float* dx, float scale, float mean_dy,
                  float mean_dy_xhat, std::int64_t n);

struct AdamParams {
  float lr = 0.0F;
  float beta1 = 0.0F;
  float beta2 = 0.0F;
  float eps = 0.0F;
  float bias1 = 0.0F;  // 1 - beta1^t
  float bias2 = 0.0F;  // 1 - beta2^t
};

/// One Adam moment-and-parameter update, the exact operation sequence of the
/// historical AdamState::step scalar loop (sqrt and division are correctly
/// rounded, so the AVX2 form is bit-identical):
///   m[i] = beta1 * m[i] + (1 - beta1) * g[i]
///   v[i] = beta2 * v[i] + ((1 - beta2) * g[i]) * g[i]
///   value[i] -= (lr * (m[i] / bias1)) / (sqrt(v[i] / bias2) + eps)
void adam_update(float* value, const float* grad, float* m, float* v, std::int64_t n,
                 const AdamParams& params);

// ---- Scalar-only kernels (one implementation, both variants) ------------

/// y[i] = 1 / (1 + exp(-x[i]))  — libm exp, scalar by the bit-identity rule
void sigmoid_fwd(const float* x, float* y, std::int64_t n);
/// y[i] = tanh(x[i])
void tanh_fwd(const float* x, float* y, std::int64_t n);
/// sig[i] = 1 / (1 + exp(-x[i]));  y[i] = x[i] * sig[i]
void silu_fwd(const float* x, float* sig, float* y, std::int64_t n);
/// Row-wise stabilized softmax of a row-major (rows, cols) matrix. Scalar:
/// the per-row max scan and the double-precision denominator sum keep their
/// historical ascending association.
void softmax_rows(const float* logits, float* probs, std::int64_t rows, std::int64_t cols);

}  // namespace usb::ew
