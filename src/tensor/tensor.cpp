#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "tensor/elementwise.h"

namespace usb {
namespace {

std::atomic<std::uint64_t> g_tensor_allocations{0};

}  // namespace

std::uint64_t tensor_heap_allocations() noexcept {
  return g_tensor_allocations.load(std::memory_order_relaxed);
}

void detail::count_tensor_allocation() noexcept {
  g_tensor_allocations.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: buffer size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshaped: numel mismatch " + shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::reshape_in_place(Shape new_shape) {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshape_in_place: numel mismatch");
  }
  shape_ = std::move(new_shape);
}

void Tensor::ensure_shape(const Shape& new_shape) {
  if (shape_ == new_shape) return;
  shape_ = new_shape;
  // vector::resize never shrinks capacity, so repeated calls cycling through
  // a bounded shape set allocate only until the high-water mark is reached.
  data_.resize(static_cast<std::size_t>(shape_.numel()));
}

void Tensor::fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape().to_string() +
                                " vs " + b.shape().to_string());
  }
}
}  // namespace

// The ew kernels take __restrict__ pointers, so exact self-aliasing calls
// (`t += t`) — well-defined on the historical scalar loops — get a scalar
// fallback computing the same per-element expression. Partial overlap
// cannot occur: distinct Tensors never share storage.

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(*this, other, "operator+=");
  if (raw() == other.raw()) {
    float* dst = raw();
    for (std::int64_t i = 0; i < numel(); ++i) dst[i] += dst[i];
    return *this;
  }
  ew::accum(raw(), other.raw(), numel());
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(*this, other, "operator-=");
  if (raw() == other.raw()) {
    float* dst = raw();
    for (std::int64_t i = 0; i < numel(); ++i) dst[i] -= dst[i];
    return *this;
  }
  ew::accum_sub(raw(), other.raw(), numel());
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(*this, other, "operator*=");
  if (raw() == other.raw()) {
    float* dst = raw();
    for (std::int64_t i = 0; i < numel(); ++i) dst[i] *= dst[i];
    return *this;
  }
  ew::accum_mul(raw(), other.raw(), numel());
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  ew::scale(raw(), scalar, numel());
  return *this;
}

Tensor& Tensor::operator+=(float scalar) noexcept {
  ew::add_scalar(raw(), scalar, numel());
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_scaled");
  if (raw() == other.raw()) {
    float* dst = raw();
    for (std::int64_t i = 0; i < numel(); ++i) dst[i] += alpha * dst[i];
    return;
  }
  ew::axpy(raw(), other.raw(), alpha, numel());
}

void Tensor::clamp(float lo, float hi) noexcept { ew::clamp(raw(), lo, hi, numel()); }

float Tensor::sum() const noexcept {
  // Pairwise-ish accumulation in double: stable enough for loss statistics.
  double acc = 0.0;
  for (const float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0F : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_sum() const noexcept {
  double acc = 0.0;
  for (const float v : data_) acc += std::abs(static_cast<double>(v));
  return static_cast<float>(acc);
}

float Tensor::sq_sum() const noexcept {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v) * static_cast<double>(v);
  return static_cast<float>(acc);
}

float Tensor::l2_norm() const noexcept { return std::sqrt(sq_sum()); }

float Tensor::max() const noexcept {
  if (data_.empty()) return 0.0F;
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const noexcept {
  if (data_.empty()) return 0.0F;
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const noexcept {
  float best = 0.0F;
  for (const float v : data_) best = std::max(best, std::abs(v));
  return best;
}

std::int64_t Tensor::argmax() const noexcept {
  if (data_.empty()) return -1;
  return static_cast<std::int64_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

bool Tensor::equals(const Tensor& other) const noexcept {
  return shape_ == other.shape_ && data_ == other.data_;
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, const Tensor& rhs) {
  lhs *= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

Tensor operator*(float scalar, Tensor rhs) {
  rhs *= scalar;
  return rhs;
}

}  // namespace usb
