// Shared SIMD scaffolding for the runtime-dispatched kernel TUs
// (tensor/gemm.cpp and tensor/elementwise.cpp). INTERNAL header — include
// only from kernel .cpp files; it defines unprefixed-looking macros.
//
// The attributes are correctness-critical and must stay identical across
// every kernel TU:
//  - aligned(4) makes loads/stores through the vector types unaligned-safe
//    (packed panels and arbitrary tensor offsets are only element-aligned);
//  - may_alias exempts them from strict aliasing against float/int32;
//  - same-size C-style casts between v8sf and v8si reinterpret bits, which
//    is how the branchless selects implement scalar comparison semantics
//    exactly (comparisons on v8sf yield v8si lane masks of all-ones/zero).
#pragma once

#include <cstdint>

#define USB_RESTRICT __restrict__

namespace usb::simd {

// 8-float lane vector (GCC/Clang vector extension) and its same-size
// signed-integer twin.
using v8sf = float __attribute__((vector_size(32), aligned(4), may_alias));
using v8si = std::int32_t __attribute__((vector_size(32), aligned(4), may_alias));

/// True when the running CPU can execute the target("avx2") kernel
/// variants compiled into this binary.
inline bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace usb::simd

#define USB_SIMD_LOAD(ptr) (*reinterpret_cast<const ::usb::simd::v8sf*>(ptr))
#define USB_SIMD_STORE(ptr, value) (*reinterpret_cast<::usb::simd::v8sf*>(ptr) = (value))
// select(mask, a, b): per lane, mask all-ones -> a, zero -> b.
#define USB_SIMD_SELECT(mask, a, b)                        \
  ((::usb::simd::v8sf)((((::usb::simd::v8si)(a)) & (mask)) | \
                       (((::usb::simd::v8si)(b)) & ~(mask))))
#define USB_SIMD_BCAST(s) \
  ::usb::simd::v8sf { (s), (s), (s), (s), (s), (s), (s), (s) }
