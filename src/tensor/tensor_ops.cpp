#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "tensor/elementwise.h"
#include "utils/thread_pool.h"

namespace usb {
namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

/// im2col with an explicit distance between consecutive column-matrix rows,
/// so several samples can be unfolded side by side into one wide (C*K*K,
/// N*OH*OW) matrix that feeds a single packed-B GEMM per group. Row r of the
/// unfold starts at col + r * col_row_stride.
void im2col_strided(const float* x, std::int64_t channels, std::int64_t height,
                    std::int64_t width, std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding, float* col, std::int64_t col_row_stride) {
  const std::int64_t out_h = (height + 2 * padding - kernel) / stride + 1;
  const std::int64_t out_w = (width + 2 * padding - kernel) / stride + 1;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* x_channel = x + c * height * width;
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
        float* col_row = col + row * col_row_stride;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride - padding + kh;
          float* col_out = col_row + oh * out_w;
          if (ih < 0 || ih >= height) {
            std::fill(col_out, col_out + out_w, 0.0F);
            continue;
          }
          const float* x_row = x_channel + ih * width;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride - padding + kw;
            col_out[ow] = (iw >= 0 && iw < width) ? x_row[iw] : 0.0F;
          }
        }
      }
    }
  }
}

/// Upper bound on the batched im2col block, in floats (16 MiB). Derived only
/// from sizes — never from the thread count — so the per-sample blocking
/// (and therefore every float) is identical for any USB_THREADS.
constexpr std::int64_t kMaxColBlockFloats = std::int64_t{4} << 20;

}  // namespace

Im2colWorkspace& Im2colWorkspace::local() {
  thread_local Im2colWorkspace workspace;
  return workspace;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimensions differ");
  out.ensure_shape(Shape{m, n});
  gemm(/*transpose_a=*/false, /*transpose_b=*/false, m, n, k, a.raw(), k, b.raw(), n, out.raw(),
       n, /*accumulate=*/false);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_transpose_b: rank-2 tensors required");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  require(b.dim(1) == k, "matmul_transpose_b: inner dimensions differ");
  out.ensure_shape(Shape{m, n});
  gemm(/*transpose_a=*/false, /*transpose_b=*/true, m, n, k, a.raw(), k, b.raw(), k, out.raw(), n,
       /*accumulate=*/false);
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_transpose_b_into(a, b, c);
  return c;
}

void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_transpose_a: rank-2 tensors required");
  const std::int64_t k = a.dim(0);
  const std::int64_t m = a.dim(1);
  const std::int64_t n = b.dim(1);
  require(b.dim(0) == k, "matmul_transpose_a: inner dimensions differ");
  out.ensure_shape(Shape{m, n});
  gemm(/*transpose_a=*/true, /*transpose_b=*/false, m, n, k, a.raw(), m, b.raw(), n, out.raw(), n,
       /*accumulate=*/false);
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_transpose_a_into(a, b, c);
  return c;
}

void im2col(const float* x, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t padding, float* col) {
  const std::int64_t out_h = (height + 2 * padding - kernel) / stride + 1;
  const std::int64_t out_w = (width + 2 * padding - kernel) / stride + 1;
  im2col_strided(x, channels, height, width, kernel, stride, padding, col, out_h * out_w);
}

void col2im(const float* col, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t padding, float* x) {
  const std::int64_t out_h = (height + 2 * padding - kernel) / stride + 1;
  const std::int64_t out_w = (width + 2 * padding - kernel) / stride + 1;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* x_channel = x + c * height * width;
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
        const float* col_row = col + row * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride - padding + kh;
          if (ih < 0 || ih >= height) continue;
          float* x_row = x_channel + ih * width;
          const float* col_in = col_row + oh * out_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride - padding + kw;
            if (iw >= 0 && iw < width) x_row[iw] += col_in[ow];
          }
        }
      }
    }
  }
}

void conv2d_forward_into(const Tensor& x, const Tensor& weight, const Tensor& bias,
                         const Conv2dSpec& spec, Tensor& y) {
  require(x.rank() == 4, "conv2d: input must be NCHW");
  require(x.dim(1) == spec.in_channels, "conv2d: in_channels mismatch");
  require(weight.shape() == spec.weight_shape(), "conv2d: weight shape mismatch");
  require(spec.in_channels % spec.groups == 0 && spec.out_channels % spec.groups == 0,
          "conv2d: channels not divisible by groups");
  const std::int64_t batch = x.dim(0);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t out_h = spec.out_size(height);
  const std::int64_t out_w = spec.out_size(width);
  require(out_h > 0 && out_w > 0, "conv2d: output size would be non-positive");
  const std::int64_t spatial = out_h * out_w;
  const std::int64_t group_in = spec.in_channels / spec.groups;
  const std::int64_t group_out = spec.out_channels / spec.groups;
  const std::int64_t kk = spec.kernel * spec.kernel;

  y.ensure_shape(Shape{batch, spec.out_channels, out_h, out_w});
  const bool has_bias = bias.numel() > 0;
  if (has_bias) require(bias.numel() == spec.out_channels, "conv2d: bias size mismatch");

  // Batched im2col + one packed-B GEMM per group: all samples of a block are
  // unfolded side by side into a (IC*K*K, BN*OH*OW) matrix so the weight
  // panel is packed once per group instead of once per sample. The block
  // size is capped (size-derived, thread-count independent) to bound the
  // workspace; typical probe batches fit in one block.
  const std::int64_t patch = group_in * kk;          // GEMM K per group
  const std::int64_t col_rows = spec.in_channels * kk;
  if (batch == 0) return;
  const std::int64_t block =
      std::clamp(kMaxColBlockFloats / std::max<std::int64_t>(1, col_rows * spatial),
                 std::int64_t{1}, batch);
  Im2colWorkspace& ws = Im2colWorkspace::local();

  for (std::int64_t n0 = 0; n0 < batch; n0 += block) {
    const std::int64_t bn = std::min(block, batch - n0);
    const std::int64_t cols = bn * spatial;
    float* const col = ws.col(static_cast<std::size_t>(col_rows * cols));
    // Guards the pointer-stability invariant: nothing below may regrow the
    // col slot while `col` is live (checked again after the group loop).
    [[maybe_unused]] const std::size_t col_capacity_in_use = ws.col_capacity();
    // Each sample owns columns [j*spatial, (j+1)*spatial) — disjoint writes,
    // so the unfold is tile-parallel over samples.
    parallel_for_deterministic(bn, [&](std::int64_t j) {
      const float* x_n = x.raw() + (n0 + j) * spec.in_channels * height * width;
      im2col_strided(x_n, spec.in_channels, height, width, spec.kernel, spec.stride, spec.padding,
                     col + j * spatial, cols);
    });
    for (std::int64_t g = 0; g < spec.groups; ++g) {
      const float* w_g = weight.raw() + g * group_out * patch;
      const float* col_g = col + g * patch * cols;
      // The staging buffer is a separate workspace slot, so requesting it
      // must never invalidate `col`.
      float* const staged = ws.gemm_out(static_cast<std::size_t>(group_out * cols));
      assert(ws.col_capacity() == col_capacity_in_use);
      gemm(/*transpose_a=*/false, /*transpose_b=*/false, group_out, cols, patch, w_g, patch,
           col_g, cols, staged, cols, /*accumulate=*/false);
      // Scatter the (OCg, BN*S) GEMM block back to NCHW, fusing the bias add
      // into the same pass.
      parallel_for_deterministic(bn, [&](std::int64_t j) {
        for (std::int64_t oc = 0; oc < group_out; ++oc) {
          const float* src = staged + oc * cols + j * spatial;
          float* dst = y.raw() + ((n0 + j) * spec.out_channels + g * group_out + oc) * spatial;
          if (has_bias) {
            const float b = bias[g * group_out + oc];
            for (std::int64_t s = 0; s < spatial; ++s) dst[s] = src[s] + b;
          } else {
            std::copy(src, src + spatial, dst);
          }
        }
      });
    }
    assert(ws.col_capacity() == col_capacity_in_use &&
           "col block regrown while its pointer was live");
  }
}

Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec) {
  Tensor y;
  conv2d_forward_into(x, weight, bias, spec, y);
  return y;
}

void conv2d_backward_into(const Tensor& x, const Tensor& weight, const Tensor& dy,
                          const Conv2dSpec& spec, bool need_dx, bool need_dweight, Tensor* dx,
                          Tensor* dweight, Tensor* dbias) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t out_h = spec.out_size(height);
  const std::int64_t out_w = spec.out_size(width);
  const std::int64_t spatial = out_h * out_w;
  require(dy.rank() == 4 && dy.dim(0) == batch && dy.dim(1) == spec.out_channels &&
              dy.dim(2) == out_h && dy.dim(3) == out_w,
          "conv2d_backward: dy shape mismatch");
  need_dx = need_dx && dx != nullptr;
  need_dweight = need_dweight && dweight != nullptr && dbias != nullptr;
  const std::int64_t group_in = spec.in_channels / spec.groups;
  const std::int64_t group_out = spec.out_channels / spec.groups;
  const std::int64_t kk = spec.kernel * spec.kernel;

  if (need_dweight) {
    dweight->ensure_shape(weight.shape());
    dweight->fill(0.0F);
    dbias->ensure_shape(Shape{spec.out_channels});
    dbias->fill(0.0F);
  }
  if (need_dx) {
    // col2im accumulates, so the target must start zeroed.
    dx->ensure_shape(x.shape());
    dx->fill(0.0F);
  }

  const std::int64_t patch = group_in * kk;
  const std::int64_t col_numel = spec.in_channels * kk * spatial;

  // Per-chunk weight/bias accumulators keep the parallel reduction
  // deterministic: chunks are statically partitioned and reduced in order.
  // Only materialized when dW/db are actually requested — the frozen-model
  // detection path (need_dweight=false) then allocates nothing here.
  ThreadPool& pool = ThreadPool::global();
  const auto max_chunks = static_cast<std::size_t>(std::max(1, pool.size()));
  std::vector<Tensor> dw_parts;
  std::vector<Tensor> db_parts;
  if (need_dweight) {
    dw_parts.assign(max_chunks, Tensor(weight.shape()));
    db_parts.assign(max_chunks, Tensor(Shape{spec.out_channels}));
  }

  pool.parallel_for(batch, [&](std::int64_t begin, std::int64_t end, int worker) {
    // Thread-local scratch, grown once and reused across every sample and
    // every backward call: the steady-state loop is allocation-free.
    Im2colWorkspace& ws = Im2colWorkspace::local();
    float* const col = need_dweight ? ws.col(static_cast<std::size_t>(col_numel)) : nullptr;
    float* const dcol = need_dx ? ws.dcol(static_cast<std::size_t>(col_numel)) : nullptr;
    // col and dcol are distinct workspace slots (the dW gemm reads col while
    // dcol is being written), and neither may regrow while the per-sample
    // loop holds their pointers — checked after the loop.
    assert(col == nullptr || col != dcol);
    [[maybe_unused]] const std::size_t col_capacity_in_use = ws.col_capacity();
    [[maybe_unused]] const std::size_t dcol_capacity_in_use = ws.dcol_capacity();
    for (std::int64_t n = begin; n < end; ++n) {
      const float* x_n = x.raw() + n * spec.in_channels * height * width;
      const float* dy_n = dy.raw() + n * spec.out_channels * spatial;
      if (need_dweight) {
        // The unfolded input is only consumed by the dW gemm.
        im2col(x_n, spec.in_channels, height, width, spec.kernel, spec.stride, spec.padding, col);
      }
      for (std::int64_t g = 0; g < spec.groups; ++g) {
        const float* dy_g = dy_n + g * group_out * spatial;
        if (need_dweight) {
          const float* col_g = col + g * patch * spatial;
          float* dw_g = dw_parts[static_cast<std::size_t>(worker)].raw() + g * group_out * patch;
          // dW_g += dy_g (OCg,S) x col_g^T (S, ICg*K*K)
          gemm(/*transpose_a=*/false, /*transpose_b=*/true, group_out, patch, spatial, dy_g,
               spatial, col_g, spatial, dw_g, patch, /*accumulate=*/true);
        }
        if (need_dx) {
          const float* w_g = weight.raw() + g * group_out * patch;
          float* dcol_g = dcol + g * patch * spatial;
          // dcol_g = W_g^T (ICg*K*K, OCg) x dy_g (OCg, S)
          gemm(/*transpose_a=*/true, /*transpose_b=*/false, patch, spatial, group_out, w_g, patch,
               dy_g, spatial, dcol_g, spatial, /*accumulate=*/false);
        }
      }
      if (need_dweight) {
        Tensor& db_local = db_parts[static_cast<std::size_t>(worker)];
        for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
          const float* dy_c = dy_n + oc * spatial;
          double acc = 0.0;
          for (std::int64_t s = 0; s < spatial; ++s) acc += dy_c[s];
          db_local[oc] += static_cast<float>(acc);
        }
      }
      if (need_dx) {
        float* dx_n = dx->raw() + n * spec.in_channels * height * width;
        col2im(dcol, spec.in_channels, height, width, spec.kernel, spec.stride, spec.padding,
               dx_n);
      }
    }
    assert(ws.col_capacity() == col_capacity_in_use &&
           ws.dcol_capacity() == dcol_capacity_in_use &&
           "im2col scratch regrown while its pointers were live");
  });

  if (need_dweight) {
    for (std::size_t part = 0; part < max_chunks; ++part) {
      *dweight += dw_parts[part];
      *dbias += db_parts[part];
    }
  }
}

Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& weight, const Tensor& dy,
                            const Conv2dSpec& spec, bool need_dx, bool need_dweight) {
  Conv2dGrads grads;
  // The struct adapter always materializes dweight/dbias (historical
  // contract: zero tensors when skipped); the core only touches what the
  // need flags request.
  grads.dweight = Tensor(weight.shape());
  grads.dbias = Tensor(Shape{spec.out_channels});
  if (need_dx) grads.dx = Tensor(x.shape());
  conv2d_backward_into(x, weight, dy, spec, need_dx, need_dweight, need_dx ? &grads.dx : nullptr,
                       &grads.dweight, &grads.dbias);
  return grads;
}

void maxpool2d_forward_into(const Tensor& x, const Pool2dSpec& spec, Tensor& y,
                            std::vector<std::int64_t>& argmax) {
  require(x.rank() == 4, "maxpool2d: input must be NCHW");
  const std::int64_t batch = x.dim(0);
  const std::int64_t channels = x.dim(1);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t out_h = spec.out_size(height);
  const std::int64_t out_w = spec.out_size(width);
  require(out_h > 0 && out_w > 0, "maxpool2d: output would be empty");

  y.ensure_shape(Shape{batch, channels, out_h, out_w});
  argmax.resize(static_cast<std::size_t>(batch * channels * out_h * out_w));
  const std::int64_t planes = batch * channels;
  parallel_for(planes, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t plane = begin; plane < end; ++plane) {
      const float* x_p = x.raw() + plane * height * width;
      float* y_p = y.raw() + plane * out_h * out_w;
      std::int64_t* idx_p = argmax.data() + plane * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          const std::int64_t h0 = oh * spec.stride;
          const std::int64_t w0 = ow * spec.stride;
          float best = x_p[h0 * width + w0];
          std::int64_t best_index = h0 * width + w0;
          for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
            for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
              const std::int64_t index = (h0 + kh) * width + (w0 + kw);
              if (x_p[index] > best) {
                best = x_p[index];
                best_index = index;
              }
            }
          }
          y_p[oh * out_w + ow] = best;
          idx_p[oh * out_w + ow] = plane * height * width + best_index;
        }
      }
    }
  });
}

MaxPoolResult maxpool2d_forward(const Tensor& x, const Pool2dSpec& spec) {
  MaxPoolResult result;
  maxpool2d_forward_into(x, spec, result.y, result.argmax);
  return result;
}

void maxpool2d_backward_into(const Tensor& dy, const std::vector<std::int64_t>& argmax,
                             const Shape& x_shape, Tensor& dx) {
  dx.ensure_shape(x_shape);
  dx.fill(0.0F);  // scatter-accumulate target
  const float* dy_data = dy.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    dx[argmax[i]] += dy_data[i];
  }
}

Tensor maxpool2d_backward(const Tensor& dy, const std::vector<std::int64_t>& argmax,
                          const Shape& x_shape) {
  Tensor dx;
  maxpool2d_backward_into(dy, argmax, x_shape, dx);
  return dx;
}

void avgpool2d_forward_into(const Tensor& x, const Pool2dSpec& spec, Tensor& y) {
  require(x.rank() == 4, "avgpool2d: input must be NCHW");
  const std::int64_t batch = x.dim(0);
  const std::int64_t channels = x.dim(1);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t out_h = spec.out_size(height);
  const std::int64_t out_w = spec.out_size(width);
  const float inv_area = 1.0F / static_cast<float>(spec.kernel * spec.kernel);

  y.ensure_shape(Shape{batch, channels, out_h, out_w});
  const std::int64_t planes = batch * channels;
  parallel_for(planes, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t plane = begin; plane < end; ++plane) {
      const float* x_p = x.raw() + plane * height * width;
      float* y_p = y.raw() + plane * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          double acc = 0.0;
          for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
            for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
              acc += x_p[(oh * spec.stride + kh) * width + (ow * spec.stride + kw)];
            }
          }
          y_p[oh * out_w + ow] = static_cast<float>(acc) * inv_area;
        }
      }
    }
  });
}

Tensor avgpool2d_forward(const Tensor& x, const Pool2dSpec& spec) {
  Tensor y;
  avgpool2d_forward_into(x, spec, y);
  return y;
}

void avgpool2d_backward_into(const Tensor& dy, const Shape& x_shape, const Pool2dSpec& spec,
                             Tensor& dx) {
  dx.ensure_shape(x_shape);
  dx.fill(0.0F);  // overlapping windows accumulate
  const std::int64_t height = x_shape[2];
  const std::int64_t width = x_shape[3];
  const std::int64_t out_h = dy.dim(2);
  const std::int64_t out_w = dy.dim(3);
  const float inv_area = 1.0F / static_cast<float>(spec.kernel * spec.kernel);
  const std::int64_t planes = dy.dim(0) * dy.dim(1);
  for (std::int64_t plane = 0; plane < planes; ++plane) {
    const float* dy_p = dy.raw() + plane * out_h * out_w;
    float* dx_p = dx.raw() + plane * height * width;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        const float g = dy_p[oh * out_w + ow] * inv_area;
        for (std::int64_t kh = 0; kh < spec.kernel; ++kh) {
          for (std::int64_t kw = 0; kw < spec.kernel; ++kw) {
            dx_p[(oh * spec.stride + kh) * width + (ow * spec.stride + kw)] += g;
          }
        }
      }
    }
  }
}

Tensor avgpool2d_backward(const Tensor& dy, const Shape& x_shape, const Pool2dSpec& spec) {
  Tensor dx;
  avgpool2d_backward_into(dy, x_shape, spec, dx);
  return dx;
}

void global_avgpool_forward_into(const Tensor& x, Tensor& y) {
  require(x.rank() == 4, "global_avgpool: input must be NCHW");
  const std::int64_t planes = x.dim(0) * x.dim(1);
  const std::int64_t spatial = x.dim(2) * x.dim(3);
  y.ensure_shape(Shape{x.dim(0), x.dim(1), 1, 1});
  for (std::int64_t plane = 0; plane < planes; ++plane) {
    const float* x_p = x.raw() + plane * spatial;
    double acc = 0.0;
    for (std::int64_t s = 0; s < spatial; ++s) acc += x_p[s];
    y[plane] = static_cast<float>(acc / static_cast<double>(spatial));
  }
}

Tensor global_avgpool_forward(const Tensor& x) {
  Tensor y;
  global_avgpool_forward_into(x, y);
  return y;
}

void global_avgpool_backward_into(const Tensor& dy, const Shape& x_shape, Tensor& dx) {
  dx.ensure_shape(x_shape);
  const std::int64_t planes = x_shape[0] * x_shape[1];
  const std::int64_t spatial = x_shape[2] * x_shape[3];
  const float inv = 1.0F / static_cast<float>(spatial);
  for (std::int64_t plane = 0; plane < planes; ++plane) {
    const float g = dy[plane] * inv;
    float* dx_p = dx.raw() + plane * spatial;
    for (std::int64_t s = 0; s < spatial; ++s) dx_p[s] = g;
  }
}

Tensor global_avgpool_backward(const Tensor& dy, const Shape& x_shape) {
  Tensor dx;
  global_avgpool_backward_into(dy, x_shape, dx);
  return dx;
}

void softmax_rows_into(const Tensor& logits, Tensor& probs) {
  require(logits.rank() == 2, "softmax_rows: rank-2 input required");
  probs.ensure_shape(logits.shape());
  ew::softmax_rows(logits.raw(), probs.raw(), logits.dim(0), logits.dim(1));
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor probs;
  softmax_rows_into(logits, probs);
  return probs;
}

Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t num_classes) {
  Tensor out(Shape{static_cast<std::int64_t>(labels.size()), num_classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    require(labels[i] >= 0 && labels[i] < num_classes, "one_hot: label out of range");
    out[static_cast<std::int64_t>(i) * num_classes + labels[i]] = 1.0F;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  require(logits.rank() == 2, "argmax_rows: rank-2 input required");
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.raw() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (in[c] > in[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

void gaussian_kernel_into(std::int64_t size, double sigma, Tensor& kernel) {
  require(size > 0 && sigma > 0.0, "gaussian_kernel: size and sigma must be positive");
  kernel.ensure_shape(Shape{size, size});
  const double center = static_cast<double>(size - 1) / 2.0;
  double total = 0.0;
  for (std::int64_t a = 0; a < size; ++a) {
    for (std::int64_t b = 0; b < size; ++b) {
      const double da = static_cast<double>(a) - center;
      const double db = static_cast<double>(b) - center;
      const double value = std::exp(-(da * da + db * db) / (2.0 * sigma * sigma));
      kernel.at2(a, b) = static_cast<float>(value);
      total += value;
    }
  }
  const auto inv = static_cast<float>(1.0 / total);
  for (std::int64_t i = 0; i < kernel.numel(); ++i) kernel[i] *= inv;
}

Tensor gaussian_kernel(std::int64_t size, double sigma) {
  Tensor kernel;
  gaussian_kernel_into(size, sigma, kernel);
  return kernel;
}

void filter2d_valid_into(const Tensor& x, const Tensor& kernel, Tensor& y) {
  require(x.rank() == 4, "filter2d_valid: input must be NCHW");
  require(kernel.rank() == 2 && kernel.dim(0) == kernel.dim(1),
          "filter2d_valid: square rank-2 kernel required");
  const std::int64_t k = kernel.dim(0);
  const std::int64_t height = x.dim(2);
  const std::int64_t width = x.dim(3);
  const std::int64_t out_h = height - k + 1;
  const std::int64_t out_w = width - k + 1;
  require(out_h > 0 && out_w > 0, "filter2d_valid: kernel larger than input");

  y.ensure_shape(Shape{x.dim(0), x.dim(1), out_h, out_w});
  const std::int64_t planes = x.dim(0) * x.dim(1);
  parallel_for(planes, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t plane = begin; plane < end; ++plane) {
      const float* x_p = x.raw() + plane * height * width;
      float* y_p = y.raw() + plane * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          double acc = 0.0;
          for (std::int64_t a = 0; a < k; ++a) {
            const float* x_row = x_p + (oh + a) * width + ow;
            const float* k_row = kernel.raw() + a * k;
            for (std::int64_t b = 0; b < k; ++b) acc += static_cast<double>(x_row[b]) * k_row[b];
          }
          y_p[oh * out_w + ow] = static_cast<float>(acc);
        }
      }
    }
  });
}

Tensor filter2d_valid(const Tensor& x, const Tensor& kernel) {
  Tensor y;
  filter2d_valid_into(x, kernel, y);
  return y;
}

void filter2d_full_adjoint_into(const Tensor& g, const Tensor& kernel, Tensor& dx) {
  require(g.rank() == 4, "filter2d_full_adjoint: input must be NCHW");
  const std::int64_t k = kernel.dim(0);
  const std::int64_t gh = g.dim(2);
  const std::int64_t gw = g.dim(3);
  const std::int64_t out_h = gh + k - 1;
  const std::int64_t out_w = gw + k - 1;

  dx.ensure_shape(Shape{g.dim(0), g.dim(1), out_h, out_w});
  const std::int64_t planes = g.dim(0) * g.dim(1);
  parallel_for(planes, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t plane = begin; plane < end; ++plane) {
      const float* g_p = g.raw() + plane * gh * gw;
      float* dx_p = dx.raw() + plane * out_h * out_w;
      for (std::int64_t p = 0; p < out_h; ++p) {
        for (std::int64_t q = 0; q < out_w; ++q) {
          double acc = 0.0;
          const std::int64_t a_lo = std::max<std::int64_t>(0, p - gh + 1);
          const std::int64_t a_hi = std::min<std::int64_t>(k - 1, p);
          const std::int64_t b_lo = std::max<std::int64_t>(0, q - gw + 1);
          const std::int64_t b_hi = std::min<std::int64_t>(k - 1, q);
          for (std::int64_t a = a_lo; a <= a_hi; ++a) {
            const float* g_row = g_p + (p - a) * gw;
            const float* k_row = kernel.raw() + a * k;
            for (std::int64_t b = b_lo; b <= b_hi; ++b) {
              acc += static_cast<double>(g_row[q - b]) * k_row[b];
            }
          }
          dx_p[p * out_w + q] = static_cast<float>(acc);
        }
      }
    }
  });
}

Tensor filter2d_full_adjoint(const Tensor& g, const Tensor& kernel) {
  Tensor dx;
  filter2d_full_adjoint_into(g, kernel, dx);
  return dx;
}

}  // namespace usb
