// Dense float32 tensor with value semantics.
//
// Design notes (scoped to this reproduction):
//  - Contiguous row-major storage only; no views or broadcasting machinery.
//    Layers that need reshapes copy or reinterpret via Shape (free: the
//    buffer is shared size).
//  - Value semantics (vector<float> inside): copies are explicit and
//    deterministic; moves are cheap. Gradient buffers live alongside values
//    in nn::Parameter, not inside Tensor (no autograd tape; each layer
//    implements an exact hand-written backward).
//  - float32 matches the precision regime of the paper's PyTorch models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"

namespace usb {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor adopting an existing buffer; sizes must match.
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] static Tensor zeros(Shape shape);
  [[nodiscard]] static Tensor full(Shape shape, float value);
  [[nodiscard]] static Tensor ones(Shape shape);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] std::int64_t dim(std::int64_t axis) const noexcept { return shape_[axis]; }

  [[nodiscard]] std::span<float> data() noexcept { return std::span<float>(data_); }
  [[nodiscard]] std::span<const float> data() const noexcept {
    return std::span<const float>(data_);
  }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  /// Flat element access.
  [[nodiscard]] float operator[](std::int64_t index) const noexcept {
    return data_[static_cast<std::size_t>(index)];
  }
  float& operator[](std::int64_t index) noexcept { return data_[static_cast<std::size_t>(index)]; }

  /// Rank-4 NCHW accessors (the dominant layout in this library).
  [[nodiscard]] float at4(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) const noexcept {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) noexcept {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Rank-2 accessors.
  [[nodiscard]] float at2(std::int64_t r, std::int64_t c) const noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float& at2(std::int64_t r, std::int64_t c) noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Returns a copy reinterpreted under a new shape with equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Reinterprets in place; numel must match. No data movement.
  void reshape_in_place(Shape new_shape);

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  // ---- In-place elementwise arithmetic (shapes must match exactly). ----
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  // Hadamard
  Tensor& operator*=(float scalar) noexcept;
  Tensor& operator+=(float scalar) noexcept;

  /// x <- x + alpha * other (axpy).
  void add_scaled(const Tensor& other, float alpha);

  /// Clamps every element into [lo, hi].
  void clamp(float lo, float hi) noexcept;

  // ---- Reductions. ----
  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float mean() const noexcept;
  [[nodiscard]] float abs_sum() const noexcept;   // L1 norm
  [[nodiscard]] float sq_sum() const noexcept;    // sum of squares
  [[nodiscard]] float l2_norm() const noexcept;   // sqrt(sq_sum)
  [[nodiscard]] float max() const noexcept;
  [[nodiscard]] float min() const noexcept;
  [[nodiscard]] float abs_max() const noexcept;   // Linf norm
  [[nodiscard]] std::int64_t argmax() const noexcept;

  /// True if shapes and all elements are exactly equal.
  [[nodiscard]] bool equals(const Tensor& other) const noexcept;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- Out-of-place arithmetic. ----
[[nodiscard]] Tensor operator+(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator-(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator*(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator*(Tensor lhs, float scalar);
[[nodiscard]] Tensor operator*(float scalar, Tensor rhs);

}  // namespace usb
