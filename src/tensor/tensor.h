// Dense float32 tensor with value semantics.
//
// Design notes (scoped to this reproduction):
//  - Contiguous row-major storage only; no views or broadcasting machinery.
//    Layers that need reshapes copy or reinterpret via Shape (free: the
//    buffer is shared size).
//  - Value semantics (vector<float> inside): copies are explicit and
//    deterministic; moves are cheap. Gradient buffers live alongside values
//    in nn::Parameter, not inside Tensor (no autograd tape; each layer
//    implements an exact hand-written backward).
//  - float32 matches the precision regime of the paper's PyTorch models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"

namespace usb {

/// Total heap allocations ever made for Tensor element storage, process
/// wide. The hot-path contract of this library (per-task TensorArena +
/// `_into` kernels) is that a steady-state refinement step performs ZERO of
/// these; tests and the alloc-pressure bench assert it by differencing this
/// counter around a warmed-up loop. Monotonic; never reset.
[[nodiscard]] std::uint64_t tensor_heap_allocations() noexcept;

namespace detail {

void count_tensor_allocation() noexcept;

/// std::allocator<float> plus a bump of the global Tensor-allocation
/// counter, so vector growth inside Tensor is observable to the
/// zero-allocation tests without replacing the global allocator.
template <typename T>
struct CountingAllocator {
  using value_type = T;

  CountingAllocator() = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t count) {
    count_tensor_allocation();
    return std::allocator<T>().allocate(count);
  }
  void deallocate(T* pointer, std::size_t count) noexcept {
    std::allocator<T>().deallocate(pointer, count);
  }

  [[nodiscard]] bool operator==(const CountingAllocator&) const noexcept { return true; }
};

}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor adopting an existing buffer; sizes must match.
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] static Tensor zeros(Shape shape);
  [[nodiscard]] static Tensor full(Shape shape, float value);
  [[nodiscard]] static Tensor ones(Shape shape);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] std::int64_t dim(std::int64_t axis) const noexcept { return shape_[axis]; }

  [[nodiscard]] std::span<float> data() noexcept { return std::span<float>(data_); }
  [[nodiscard]] std::span<const float> data() const noexcept {
    return std::span<const float>(data_);
  }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  /// Flat element access.
  [[nodiscard]] float operator[](std::int64_t index) const noexcept {
    return data_[static_cast<std::size_t>(index)];
  }
  float& operator[](std::int64_t index) noexcept { return data_[static_cast<std::size_t>(index)]; }

  /// Rank-4 NCHW accessors (the dominant layout in this library).
  [[nodiscard]] float at4(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) const noexcept {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) noexcept {
    return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Rank-2 accessors.
  [[nodiscard]] float at2(std::int64_t r, std::int64_t c) const noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float& at2(std::int64_t r, std::int64_t c) noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Returns a copy reinterpreted under a new shape with equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Reinterprets in place; numel must match. No data movement.
  void reshape_in_place(Shape new_shape);

  /// Re-shapes AND re-sizes in place, reusing existing storage capacity
  /// (grow-never-shrink: shrinking keeps the buffer, growing reallocates
  /// only past the high-water mark). Element values are unspecified after
  /// the call — this is the scratch-reuse primitive behind TensorArena and
  /// the layer caches; callers must overwrite or fill(). A no-op when the
  /// shape already matches.
  void ensure_shape(const Shape& new_shape);

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  // ---- In-place elementwise arithmetic (shapes must match exactly). ----
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  // Hadamard
  Tensor& operator*=(float scalar) noexcept;
  Tensor& operator+=(float scalar) noexcept;

  /// x <- x + alpha * other (axpy).
  void add_scaled(const Tensor& other, float alpha);

  /// Clamps every element into [lo, hi].
  void clamp(float lo, float hi) noexcept;

  // ---- Reductions. ----
  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float mean() const noexcept;
  [[nodiscard]] float abs_sum() const noexcept;   // L1 norm
  [[nodiscard]] float sq_sum() const noexcept;    // sum of squares
  [[nodiscard]] float l2_norm() const noexcept;   // sqrt(sq_sum)
  [[nodiscard]] float max() const noexcept;
  [[nodiscard]] float min() const noexcept;
  [[nodiscard]] float abs_max() const noexcept;   // Linf norm
  [[nodiscard]] std::int64_t argmax() const noexcept;

  /// True if shapes and all elements are exactly equal.
  [[nodiscard]] bool equals(const Tensor& other) const noexcept;

 private:
  Shape shape_;
  std::vector<float, detail::CountingAllocator<float>> data_;
};

// ---- Out-of-place arithmetic. ----
[[nodiscard]] Tensor operator+(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator-(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator*(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator*(Tensor lhs, float scalar);
[[nodiscard]] Tensor operator*(float scalar, Tensor rhs);

}  // namespace usb
