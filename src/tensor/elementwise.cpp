#include "tensor/elementwise.h"

#include <cmath>
#include <stdexcept>

#include "tensor/simd_common.h"

namespace usb::ew {
namespace {

// Vector types, load/store/select/broadcast, and the CPU check come from
// the shared scaffolding in tensor/simd_common.h (one definition for every
// kernel TU).
using simd::v8sf;
using simd::v8si;

#define USB_EW_LOAD(ptr) USB_SIMD_LOAD(ptr)
#define USB_EW_STORE(ptr, value) USB_SIMD_STORE(ptr, value)
#define USB_EW_SELECT(mask, a, b) USB_SIMD_SELECT(mask, a, b)
#define USB_EW_BCAST(s) USB_SIMD_BCAST(s)

// Each kernel is one macro body instantiated twice: once portable (baseline
// ISA — SSE2 on x86-64, NEON-ish codegen elsewhere) and once with
// target("avx2"). Both run the identical per-element operation sequence, so
// the instantiation only changes lane width, never bits. The scalar tail
// repeats the same expression element-wise.
#define USB_EW_DEFINE_VARIANT(SUFFIX, TARGET_ATTR)                                               \
  TARGET_ATTR void relu_fwd_##SUFFIX(const float* USB_RESTRICT x, float* USB_RESTRICT y,         \
                                     std::int64_t n) {                                           \
    const v8sf zero{};                                                                           \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf xv = USB_EW_LOAD(x + i);                                                        \
      const v8si neg = xv < zero;                                                                \
      USB_EW_STORE(y + i, USB_EW_SELECT(neg, zero, xv));                                         \
    }                                                                                            \
    for (; i < n; ++i) y[i] = x[i] < 0.0F ? 0.0F : x[i];                                         \
  }                                                                                              \
  TARGET_ATTR void relu_bwd_##SUFFIX(const float* USB_RESTRICT x, const float* USB_RESTRICT dy,  \
                                     float* USB_RESTRICT dx, std::int64_t n) {                   \
    const v8sf zero{};                                                                           \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf xv = USB_EW_LOAD(x + i);                                                        \
      const v8sf dyv = USB_EW_LOAD(dy + i);                                                      \
      const v8si off = xv <= zero;                                                               \
      USB_EW_STORE(dx + i, USB_EW_SELECT(off, zero, dyv));                                       \
    }                                                                                            \
    for (; i < n; ++i) dx[i] = x[i] <= 0.0F ? 0.0F : dy[i];                                      \
  }                                                                                              \
  TARGET_ATTR void sigmoid_bwd_##SUFFIX(const float* USB_RESTRICT s,                             \
                                        const float* USB_RESTRICT dy, float* USB_RESTRICT dx,    \
                                        std::int64_t n) {                                        \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf sv = USB_EW_LOAD(s + i);                                                        \
      USB_EW_STORE(dx + i, USB_EW_LOAD(dy + i) * (sv * (one - sv)));                             \
    }                                                                                            \
    for (; i < n; ++i) dx[i] = dy[i] * (s[i] * (1.0F - s[i]));                                   \
  }                                                                                              \
  TARGET_ATTR void tanh_bwd_##SUFFIX(const float* USB_RESTRICT t, const float* USB_RESTRICT dy,  \
                                     float* USB_RESTRICT dx, std::int64_t n) {                   \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf tv = USB_EW_LOAD(t + i);                                                        \
      USB_EW_STORE(dx + i, USB_EW_LOAD(dy + i) * (one - tv * tv));                               \
    }                                                                                            \
    for (; i < n; ++i) dx[i] = dy[i] * (1.0F - t[i] * t[i]);                                     \
  }                                                                                              \
  TARGET_ATTR void silu_bwd_##SUFFIX(const float* USB_RESTRICT s, const float* USB_RESTRICT x,   \
                                     const float* USB_RESTRICT dy, float* USB_RESTRICT dx,       \
                                     std::int64_t n) {                                           \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf sv = USB_EW_LOAD(s + i);                                                        \
      const v8sf xv = USB_EW_LOAD(x + i);                                                        \
      USB_EW_STORE(dx + i, USB_EW_LOAD(dy + i) * (sv * (one + xv * (one - sv))));                \
    }                                                                                            \
    for (; i < n; ++i) dx[i] = dy[i] * (s[i] * (1.0F + x[i] * (1.0F - s[i])));                   \
  }                                                                                              \
  TARGET_ATTR void add_##SUFFIX(const float* USB_RESTRICT a, const float* USB_RESTRICT b,        \
                                float* USB_RESTRICT out, std::int64_t n) {                       \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) USB_EW_STORE(out + i, USB_EW_LOAD(a + i) + USB_EW_LOAD(b + i));   \
    for (; i < n; ++i) out[i] = a[i] + b[i];                                                     \
  }                                                                                              \
  TARGET_ATTR void mul_##SUFFIX(const float* USB_RESTRICT a, const float* USB_RESTRICT b,        \
                                float* USB_RESTRICT out, std::int64_t n) {                       \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) USB_EW_STORE(out + i, USB_EW_LOAD(a + i) * USB_EW_LOAD(b + i));   \
    for (; i < n; ++i) out[i] = a[i] * b[i];                                                     \
  }                                                                                              \
  TARGET_ATTR void accum_##SUFFIX(float* USB_RESTRICT dst, const float* USB_RESTRICT src,        \
                                  std::int64_t n) {                                              \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8)                                                                   \
      USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) + USB_EW_LOAD(src + i));                        \
    for (; i < n; ++i) dst[i] += src[i];                                                         \
  }                                                                                              \
  TARGET_ATTR void accum_sub_##SUFFIX(float* USB_RESTRICT dst, const float* USB_RESTRICT src,    \
                                      std::int64_t n) {                                          \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8)                                                                   \
      USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) - USB_EW_LOAD(src + i));                        \
    for (; i < n; ++i) dst[i] -= src[i];                                                         \
  }                                                                                              \
  TARGET_ATTR void accum_mul_##SUFFIX(float* USB_RESTRICT dst, const float* USB_RESTRICT src,    \
                                      std::int64_t n) {                                          \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8)                                                                   \
      USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) * USB_EW_LOAD(src + i));                        \
    for (; i < n; ++i) dst[i] *= src[i];                                                         \
  }                                                                                              \
  TARGET_ATTR void muladd_accum_##SUFFIX(float* USB_RESTRICT dst, const float* USB_RESTRICT a,   \
                                         const float* USB_RESTRICT b, std::int64_t n) {          \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8)                                                                   \
      USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) + USB_EW_LOAD(a + i) * USB_EW_LOAD(b + i));     \
    for (; i < n; ++i) dst[i] += a[i] * b[i];                                                    \
  }                                                                                              \
  TARGET_ATTR void scale_##SUFFIX(float* USB_RESTRICT dst, float s, std::int64_t n) {            \
    const v8sf sv = USB_EW_BCAST(s);                                                             \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) * sv);                 \
    for (; i < n; ++i) dst[i] *= s;                                                              \
  }                                                                                              \
  TARGET_ATTR void scale_into_##SUFFIX(const float* USB_RESTRICT src, float s,                   \
                                       float* USB_RESTRICT out, std::int64_t n) {                \
    const v8sf sv = USB_EW_BCAST(s);                                                             \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) USB_EW_STORE(out + i, USB_EW_LOAD(src + i) * sv);                 \
    for (; i < n; ++i) out[i] = src[i] * s;                                                      \
  }                                                                                              \
  TARGET_ATTR void add_scalar_##SUFFIX(float* USB_RESTRICT dst, float s, std::int64_t n) {       \
    const v8sf sv = USB_EW_BCAST(s);                                                             \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) + sv);                 \
    for (; i < n; ++i) dst[i] += s;                                                              \
  }                                                                                              \
  TARGET_ATTR void axpy_##SUFFIX(float* USB_RESTRICT dst, const float* USB_RESTRICT src,         \
                                 float alpha, std::int64_t n) {                                  \
    const v8sf av = USB_EW_BCAST(alpha);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8)                                                                   \
      USB_EW_STORE(dst + i, USB_EW_LOAD(dst + i) + av * USB_EW_LOAD(src + i));                   \
    for (; i < n; ++i) dst[i] += alpha * src[i];                                                 \
  }                                                                                              \
  TARGET_ATTR void clamp_##SUFFIX(float* USB_RESTRICT dst, float lo, float hi,                   \
                                  std::int64_t n) {                                              \
    const v8sf lov = USB_EW_BCAST(lo);                                                           \
    const v8sf hiv = USB_EW_BCAST(hi);                                                           \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      v8sf v = USB_EW_LOAD(dst + i);                                                             \
      const v8si below = v < lov;                                                                \
      v = USB_EW_SELECT(below, lov, v);                                                          \
      const v8si above = hiv < v;                                                                \
      v = USB_EW_SELECT(above, hiv, v);                                                          \
      USB_EW_STORE(dst + i, v);                                                                  \
    }                                                                                            \
    for (; i < n; ++i) dst[i] = dst[i] < lo ? lo : (hi < dst[i] ? hi : dst[i]);                  \
  }                                                                                              \
  TARGET_ATTR void blend_##SUFFIX(const float* USB_RESTRICT x, const float* USB_RESTRICT m,      \
                                  const float* USB_RESTRICT p, float* USB_RESTRICT out,          \
                                  std::int64_t n) {                                              \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf mv = USB_EW_LOAD(m + i);                                                        \
      USB_EW_STORE(out + i, USB_EW_LOAD(x + i) * (one - mv) + USB_EW_LOAD(p + i) * mv);          \
    }                                                                                            \
    for (; i < n; ++i) out[i] = x[i] * (1.0F - m[i]) + p[i] * m[i];                              \
  }                                                                                              \
  TARGET_ATTR void mask_grad_accum_##SUFFIX(float* USB_RESTRICT dm,                              \
                                            const float* USB_RESTRICT dxp,                      \
                                            const float* USB_RESTRICT p,                         \
                                            const float* USB_RESTRICT x, std::int64_t n) {       \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf diff = USB_EW_LOAD(p + i) - USB_EW_LOAD(x + i);                                 \
      USB_EW_STORE(dm + i, USB_EW_LOAD(dm + i) + USB_EW_LOAD(dxp + i) * diff);                   \
    }                                                                                            \
    for (; i < n; ++i) dm[i] += dxp[i] * (p[i] - x[i]);                                          \
  }                                                                                              \
  TARGET_ATTR void dsigmoid_chain_accum_##SUFFIX(float* USB_RESTRICT g,                          \
                                                 const float* USB_RESTRICT d,                    \
                                                 const float* USB_RESTRICT s, std::int64_t n) {  \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf sv = USB_EW_LOAD(s + i);                                                        \
      USB_EW_STORE(g + i, USB_EW_LOAD(g + i) + (USB_EW_LOAD(d + i) * sv) * (one - sv));          \
    }                                                                                            \
    for (; i < n; ++i) g[i] += (d[i] * s[i]) * (1.0F - s[i]);                                    \
  }                                                                                              \
  TARGET_ATTR void l1_sigmoid_grad_accum_##SUFFIX(float* USB_RESTRICT g,                         \
                                                  const float* USB_RESTRICT s, float w,          \
                                                  std::int64_t n) {                              \
    const v8sf one = USB_EW_BCAST(1.0F);                                                         \
    const v8sf wv = USB_EW_BCAST(w);                                                             \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf sv = USB_EW_LOAD(s + i);                                                        \
      USB_EW_STORE(g + i, USB_EW_LOAD(g + i) + (wv * sv) * (one - sv));                          \
    }                                                                                            \
    for (; i < n; ++i) g[i] += (w * s[i]) * (1.0F - s[i]);                                       \
  }                                                                                              \
  TARGET_ATTR void bn_fwd_##SUFFIX(const float* USB_RESTRICT x, float* USB_RESTRICT xhat,        \
                                   float* USB_RESTRICT y, float mean, float inv_std,             \
                                   float gamma, float beta, std::int64_t n) {                    \
    const v8sf meanv = USB_EW_BCAST(mean);                                                       \
    const v8sf isv = USB_EW_BCAST(inv_std);                                                      \
    const v8sf gv = USB_EW_BCAST(gamma);                                                         \
    const v8sf bv = USB_EW_BCAST(beta);                                                          \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf h = (USB_EW_LOAD(x + i) - meanv) * isv;                                         \
      USB_EW_STORE(xhat + i, h);                                                                 \
      USB_EW_STORE(y + i, gv * h + bv);                                                          \
    }                                                                                            \
    for (; i < n; ++i) {                                                                         \
      const float h = (x[i] - mean) * inv_std;                                                   \
      xhat[i] = h;                                                                               \
      y[i] = gamma * h + beta;                                                                   \
    }                                                                                            \
  }                                                                                              \
  TARGET_ATTR void bn_bwd_train_##SUFFIX(const float* USB_RESTRICT dy,                           \
                                         const float* USB_RESTRICT xhat,                         \
                                         float* USB_RESTRICT dx, float scale_v, float mean_dy,   \
                                         float mean_dy_xhat, std::int64_t n) {                   \
    const v8sf sv = USB_EW_BCAST(scale_v);                                                       \
    const v8sf mdv = USB_EW_BCAST(mean_dy);                                                      \
    const v8sf mdxv = USB_EW_BCAST(mean_dy_xhat);                                                \
    std::int64_t i = 0;                                                                          \
    for (; i + 8 <= n; i += 8) {                                                                 \
      const v8sf t = (USB_EW_LOAD(dy + i) - mdv) - USB_EW_LOAD(xhat + i) * mdxv;                 \
      USB_EW_STORE(dx + i, sv * t);                                                              \
    }                                                                                            \
    for (; i < n; ++i) dx[i] = scale_v * ((dy[i] - mean_dy) - xhat[i] * mean_dy_xhat);           \
  }

USB_EW_DEFINE_VARIANT(portable, )
#if defined(__x86_64__) || defined(__i386__)
USB_EW_DEFINE_VARIANT(avx2, __attribute__((target("avx2"))))
#endif

#undef USB_EW_DEFINE_VARIANT

// Adam is defined outside the macro: the AVX2 form needs the vsqrtps
// builtin (no portable vector sqrt exists), so the portable variant is the
// plain scalar loop. Both are IEEE correctly rounded, hence bit-identical.
void adam_update_portable(float* USB_RESTRICT value, const float* USB_RESTRICT grad,
                          float* USB_RESTRICT m, float* USB_RESTRICT v, std::int64_t n,
                          const AdamParams& prm) {
  const float one_minus_b1 = 1.0F - prm.beta1;
  const float one_minus_b2 = 1.0F - prm.beta2;
  for (std::int64_t i = 0; i < n; ++i) {
    const float g = grad[i];
    m[i] = prm.beta1 * m[i] + one_minus_b1 * g;
    v[i] = prm.beta2 * v[i] + (one_minus_b2 * g) * g;
    const float m_hat = m[i] / prm.bias1;
    const float v_hat = v[i] / prm.bias2;
    value[i] -= prm.lr * m_hat / (std::sqrt(v_hat) + prm.eps);
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void adam_update_avx2(float* USB_RESTRICT value,
                                                      const float* USB_RESTRICT grad,
                                                      float* USB_RESTRICT m,
                                                      float* USB_RESTRICT v, std::int64_t n,
                                                      const AdamParams& prm) {
  const v8sf b1 = USB_EW_BCAST(prm.beta1);
  const v8sf b2 = USB_EW_BCAST(prm.beta2);
  const v8sf omb1 = USB_EW_BCAST(1.0F - prm.beta1);
  const v8sf omb2 = USB_EW_BCAST(1.0F - prm.beta2);
  const v8sf bias1 = USB_EW_BCAST(prm.bias1);
  const v8sf bias2 = USB_EW_BCAST(prm.bias2);
  const v8sf lr = USB_EW_BCAST(prm.lr);
  const v8sf eps = USB_EW_BCAST(prm.eps);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const v8sf g = USB_EW_LOAD(grad + i);
    const v8sf mv = b1 * USB_EW_LOAD(m + i) + omb1 * g;
    const v8sf vv = b2 * USB_EW_LOAD(v + i) + (omb2 * g) * g;
    USB_EW_STORE(m + i, mv);
    USB_EW_STORE(v + i, vv);
    const v8sf m_hat = mv / bias1;
    const v8sf v_hat = vv / bias2;
    const v8sf root = __builtin_ia32_sqrtps256(v_hat);
    USB_EW_STORE(value + i, USB_EW_LOAD(value + i) - lr * m_hat / (root + eps));
  }
  adam_update_portable(value + i, grad + i, m + i, v + i, n - i, prm);
}
#endif

const bool g_avx2_available = simd::cpu_has_avx2();
bool g_use_avx2 = g_avx2_available;
bool g_forced = false;

inline bool use_avx2() noexcept { return g_use_avx2; }

}  // namespace

bool variant_available(Variant variant) noexcept {
  return variant == Variant::kPortable || g_avx2_available;
}

Variant active_variant() noexcept {
  return use_avx2() ? Variant::kAvx2 : Variant::kPortable;
}

void force_variant(std::optional<Variant> variant) {
  if (!variant.has_value()) {
    g_forced = false;
    g_use_avx2 = g_avx2_available;
    return;
  }
  if (!variant_available(*variant)) {
    throw std::invalid_argument("ew::force_variant: variant not available on this CPU");
  }
  g_forced = true;
  g_use_avx2 = *variant == Variant::kAvx2;
}

// Dispatched entry points. On non-x86 builds the AVX2 symbols do not exist;
// the guard keeps the ternaries compiling down to the portable call.
#if defined(__x86_64__) || defined(__i386__)
#define USB_EW_DISPATCH(NAME, ...) \
  (use_avx2() ? NAME##_avx2(__VA_ARGS__) : NAME##_portable(__VA_ARGS__))
#else
#define USB_EW_DISPATCH(NAME, ...) NAME##_portable(__VA_ARGS__)
#endif

void relu_fwd(const float* x, float* y, std::int64_t n) { USB_EW_DISPATCH(relu_fwd, x, y, n); }
void relu_bwd(const float* x, const float* dy, float* dx, std::int64_t n) {
  USB_EW_DISPATCH(relu_bwd, x, dy, dx, n);
}
void sigmoid_bwd(const float* s, const float* dy, float* dx, std::int64_t n) {
  USB_EW_DISPATCH(sigmoid_bwd, s, dy, dx, n);
}
void tanh_bwd(const float* t, const float* dy, float* dx, std::int64_t n) {
  USB_EW_DISPATCH(tanh_bwd, t, dy, dx, n);
}
void silu_bwd(const float* s, const float* x, const float* dy, float* dx, std::int64_t n) {
  USB_EW_DISPATCH(silu_bwd, s, x, dy, dx, n);
}
void add(const float* a, const float* b, float* out, std::int64_t n) {
  USB_EW_DISPATCH(add, a, b, out, n);
}
void mul(const float* a, const float* b, float* out, std::int64_t n) {
  USB_EW_DISPATCH(mul, a, b, out, n);
}
void accum(float* dst, const float* src, std::int64_t n) { USB_EW_DISPATCH(accum, dst, src, n); }
void accum_sub(float* dst, const float* src, std::int64_t n) {
  USB_EW_DISPATCH(accum_sub, dst, src, n);
}
void accum_mul(float* dst, const float* src, std::int64_t n) {
  USB_EW_DISPATCH(accum_mul, dst, src, n);
}
void muladd_accum(float* dst, const float* a, const float* b, std::int64_t n) {
  USB_EW_DISPATCH(muladd_accum, dst, a, b, n);
}
void scale(float* dst, float s, std::int64_t n) { USB_EW_DISPATCH(scale, dst, s, n); }
void scale_into(const float* src, float s, float* out, std::int64_t n) {
  USB_EW_DISPATCH(scale_into, src, s, out, n);
}
void add_scalar(float* dst, float s, std::int64_t n) { USB_EW_DISPATCH(add_scalar, dst, s, n); }
void axpy(float* dst, const float* src, float alpha, std::int64_t n) {
  USB_EW_DISPATCH(axpy, dst, src, alpha, n);
}
void clamp(float* dst, float lo, float hi, std::int64_t n) {
  USB_EW_DISPATCH(clamp, dst, lo, hi, n);
}
void blend(const float* x, const float* m, const float* p, float* out, std::int64_t n) {
  USB_EW_DISPATCH(blend, x, m, p, out, n);
}
void mask_grad_accum(float* dm, const float* dxp, const float* p, const float* x,
                     std::int64_t n) {
  USB_EW_DISPATCH(mask_grad_accum, dm, dxp, p, x, n);
}
void dsigmoid_chain_accum(float* g, const float* d, const float* s, std::int64_t n) {
  USB_EW_DISPATCH(dsigmoid_chain_accum, g, d, s, n);
}
void l1_sigmoid_grad_accum(float* g, const float* s, float w, std::int64_t n) {
  USB_EW_DISPATCH(l1_sigmoid_grad_accum, g, s, w, n);
}
void bn_fwd(const float* x, float* xhat, float* y, float mean, float inv_std, float gamma,
            float beta, std::int64_t n) {
  USB_EW_DISPATCH(bn_fwd, x, xhat, y, mean, inv_std, gamma, beta, n);
}
void bn_bwd_train(const float* dy, const float* xhat, float* dx, float scale_v, float mean_dy,
                  float mean_dy_xhat, std::int64_t n) {
  USB_EW_DISPATCH(bn_bwd_train, dy, xhat, dx, scale_v, mean_dy, mean_dy_xhat, n);
}
void adam_update(float* value, const float* grad, float* m, float* v, std::int64_t n,
                 const AdamParams& params) {
  USB_EW_DISPATCH(adam_update, value, grad, m, v, n, params);
}

#undef USB_EW_DISPATCH

// ---- Scalar-only kernels ------------------------------------------------

void sigmoid_fwd(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = 1.0F / (1.0F + std::exp(-x[i]));
}

void tanh_fwd(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void silu_fwd(const float* x, float* sig, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float s = 1.0F / (1.0F + std::exp(-x[i]));
    sig[i] = s;
    y[i] = x[i] * s;
  }
}

void softmax_rows(const float* logits, float* probs, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits + r * cols;
    float* out = probs + r * cols;
    float max_val = in[0];
    for (std::int64_t c = 1; c < cols; ++c) max_val = std::max(max_val, in[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_val);
      denom += out[c];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

}  // namespace usb::ew
