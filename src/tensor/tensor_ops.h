// Dense kernels: matmul family, im2col convolution (with groups), pooling,
// softmax, one-hot, and the 2-D filtering primitives used by SSIM.
//
// Layout conventions:
//  - Activations are NCHW; matrices are row-major (M, K).
//  - Convolution weights are (OC, IC/groups, KH, KW); bias is (OC).
//  - All backward kernels compute exact gradients of their forward
//    counterparts (validated against central finite differences in tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace usb {

// ---------------------------------------------------------------- matmul --
//
// All three entry points are thin views over the blocked GEMM core in
// tensor/gemm.h (the transpose is folded into panel packing). Results are
// bit-identical for any USB_THREADS; see gemm.h for the determinism
// contract.
//
// Every op here follows the repository's `_into` convention: the core
// kernel writes into a caller-provided Tensor (re-shaped in place via
// Tensor::ensure_shape, so a recycled output buffer costs zero heap
// allocations), and the value-returning form is a thin adapter that
// allocates a fresh result and calls the core. Outputs are fully
// overwritten unless a comment says the op accumulates (those zero the
// output first), so arena slots with stale contents are safe.

/// C = A (M,K) x B (K,N).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);

/// C = A (M,K) x B^T where B is (N,K).
[[nodiscard]] Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);
void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out);

/// C = A^T x B where A is (K,M), B is (K,N).
[[nodiscard]] Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);
void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out);

// ----------------------------------------------------------- convolution --

/// Static geometry of a 2-D convolution.
struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;   // square kernels only (paper architectures)
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t groups = 1;   // groups == in_channels gives depthwise conv

  [[nodiscard]] std::int64_t out_size(std::int64_t in_size) const noexcept {
    return (in_size + 2 * padding - kernel) / stride + 1;
  }
  /// Weight tensor shape for this spec.
  [[nodiscard]] Shape weight_shape() const {
    return Shape{out_channels, in_channels / groups, kernel, kernel};
  }
};

/// y (N,OC,OH,OW) = conv(x (N,IC,H,W), weight, bias). `bias` may be empty
/// (numel 0) to skip the bias add.
[[nodiscard]] Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                                    const Conv2dSpec& spec);
void conv2d_forward_into(const Tensor& x, const Tensor& weight, const Tensor& bias,
                         const Conv2dSpec& spec, Tensor& y);

struct Conv2dGrads {
  Tensor dx;       // same shape as x (empty when need_dx == false)
  Tensor dweight;  // same shape as weight
  Tensor dbias;    // (OC)
};

/// Exact gradients of conv2d_forward. Skipping dx (need_dx=false) saves the
/// col2im pass for the first layer of a network; skipping dweight
/// (need_dweight=false) halves the cost when only input gradients matter
/// (frozen-model detection).
[[nodiscard]] Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& weight, const Tensor& dy,
                                          const Conv2dSpec& spec, bool need_dx = true,
                                          bool need_dweight = true);

/// Core form: each requested gradient is written into its out-parameter
/// (ignored when null or its need flag is off). Unlike the struct adapter
/// above, nothing is allocated for a skipped gradient — the frozen-model
/// detection path (need_dweight=false) touches only dx.
void conv2d_backward_into(const Tensor& x, const Tensor& weight, const Tensor& dy,
                          const Conv2dSpec& spec, bool need_dx, bool need_dweight, Tensor* dx,
                          Tensor* dweight, Tensor* dbias);

/// Unfolds x (C,H,W view of one sample) into columns (C*K*K, OH*OW).
/// Exposed for tests.
void im2col(const float* x, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t padding, float* col);

/// Transpose of im2col: accumulates columns back into the (C,H,W) image.
void col2im(const float* col, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t padding, float* x);

/// Thread-local convolution scratch: the im2col column block, its gradient
/// counterpart, and the batched-GEMM staging buffer. Buffers grow on demand
/// and are NEVER shrunk or freed before thread exit, so the steady-state
/// conv2d_forward/conv2d_backward hot path (N-sample probe batches flowing
/// through the same geometry over and over) performs zero heap allocations.
class Im2colWorkspace {
 public:
  /// The calling thread's workspace (one per pool worker / caller thread).
  [[nodiscard]] static Im2colWorkspace& local();

  [[nodiscard]] float* col(std::size_t count) { return col_.ensure(count); }
  [[nodiscard]] float* dcol(std::size_t count) { return dcol_.ensure(count); }
  [[nodiscard]] float* gemm_out(std::size_t count) { return gemm_out_.ensure(count); }

  [[nodiscard]] std::size_t col_capacity() const noexcept { return col_.capacity(); }
  [[nodiscard]] std::size_t dcol_capacity() const noexcept { return dcol_.capacity(); }
  [[nodiscard]] std::size_t gemm_out_capacity() const noexcept { return gemm_out_.capacity(); }

 private:
  AlignedBuffer col_;
  AlignedBuffer dcol_;
  AlignedBuffer gemm_out_;
};

// --------------------------------------------------------------- pooling --

struct Pool2dSpec {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;

  [[nodiscard]] std::int64_t out_size(std::int64_t in_size) const noexcept {
    return (in_size - kernel) / stride + 1;
  }
};

struct MaxPoolResult {
  Tensor y;
  std::vector<std::int64_t> argmax;  // flat input index per output element
};

[[nodiscard]] MaxPoolResult maxpool2d_forward(const Tensor& x, const Pool2dSpec& spec);
/// Core form: `argmax` is resized in place (capacity reused across calls).
void maxpool2d_forward_into(const Tensor& x, const Pool2dSpec& spec, Tensor& y,
                            std::vector<std::int64_t>& argmax);
[[nodiscard]] Tensor maxpool2d_backward(const Tensor& dy, const std::vector<std::int64_t>& argmax,
                                        const Shape& x_shape);
void maxpool2d_backward_into(const Tensor& dy, const std::vector<std::int64_t>& argmax,
                             const Shape& x_shape, Tensor& dx);

[[nodiscard]] Tensor avgpool2d_forward(const Tensor& x, const Pool2dSpec& spec);
void avgpool2d_forward_into(const Tensor& x, const Pool2dSpec& spec, Tensor& y);
[[nodiscard]] Tensor avgpool2d_backward(const Tensor& dy, const Shape& x_shape,
                                        const Pool2dSpec& spec);
void avgpool2d_backward_into(const Tensor& dy, const Shape& x_shape, const Pool2dSpec& spec,
                             Tensor& dx);

/// (N,C,H,W) -> (N,C,1,1) mean over spatial dims.
[[nodiscard]] Tensor global_avgpool_forward(const Tensor& x);
void global_avgpool_forward_into(const Tensor& x, Tensor& y);
[[nodiscard]] Tensor global_avgpool_backward(const Tensor& dy, const Shape& x_shape);
void global_avgpool_backward_into(const Tensor& dy, const Shape& x_shape, Tensor& dx);

// -------------------------------------------------- softmax and encoding --

/// Row-wise softmax of a (M,N) matrix, numerically stabilized.
[[nodiscard]] Tensor softmax_rows(const Tensor& logits);
void softmax_rows_into(const Tensor& logits, Tensor& probs);

/// (M,N) one-hot matrix from labels in [0, num_classes).
[[nodiscard]] Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t num_classes);

/// Argmax per row of a (M,N) matrix.
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const Tensor& logits);

// ----------------------------------------------------------- 2-D filters --

/// Normalized Gaussian kernel as a (size,size) tensor.
[[nodiscard]] Tensor gaussian_kernel(std::int64_t size, double sigma);
void gaussian_kernel_into(std::int64_t size, double sigma, Tensor& kernel);

/// Per-channel valid cross-correlation of x (N,C,H,W) with kernel (K,K):
/// output (N,C,H-K+1,W-K+1). This is the "local statistics" operator of
/// SSIM.
[[nodiscard]] Tensor filter2d_valid(const Tensor& x, const Tensor& kernel);
void filter2d_valid_into(const Tensor& x, const Tensor& kernel, Tensor& y);

/// Per-channel full cross-correlation with the flipped kernel: the exact
/// adjoint (transpose) of filter2d_valid, mapping gradients on the valid
/// output back to the input grid. Output (N,C,h+K-1,w+K-1).
[[nodiscard]] Tensor filter2d_full_adjoint(const Tensor& g, const Tensor& kernel);
void filter2d_full_adjoint_into(const Tensor& g, const Tensor& kernel, Tensor& dx);

}  // namespace usb
