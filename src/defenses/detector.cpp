#include "defenses/detector.h"

#include <stdexcept>

#include "defenses/scan_plan.h"

namespace usb {

std::string to_string(ClassScanState state) {
  switch (state) {
    case ClassScanState::kPending: return "pending";
    case ClassScanState::kRefining: return "refining";
    case ClassScanState::kFinalized: return "finalized";
    case ClassScanState::kNumericallyUnstable: return "numerically_unstable";
  }
  return "unknown";
}

bool DetectionReport::complete() const noexcept {
  if (per_class_state.size() != per_class.size()) return false;
  for (const ClassScanState state : per_class_state) {
    if (state != ClassScanState::kFinalized && state != ClassScanState::kNumericallyUnstable) {
      return false;
    }
  }
  return true;
}

std::vector<std::int64_t> DetectionReport::quarantined_classes() const {
  std::vector<std::int64_t> quarantined;
  for (std::size_t t = 0; t < per_class_state.size(); ++t) {
    if (per_class_state[t] == ClassScanState::kNumericallyUnstable) {
      quarantined.push_back(static_cast<std::int64_t>(t));
    }
  }
  return quarantined;
}

DetectionReport Detector::detect(Network& model, const Dataset& probe) {
  const ScanPlan scan = plan();
  return run_scan_plan(scan, model, probe);
}

Tensor DetectionReport::reversed_trigger(std::int64_t k) const {
  if (k < 0 || k >= static_cast<std::int64_t>(per_class.size())) {
    throw std::out_of_range("reversed_trigger: class index out of range");
  }
  const TriggerEstimate& estimate = per_class[static_cast<std::size_t>(k)];
  const std::int64_t channels = estimate.pattern.dim(0);
  const std::int64_t height = estimate.pattern.dim(1);
  const std::int64_t width = estimate.pattern.dim(2);
  Tensor image(Shape{channels, height, width});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      for (std::int64_t x = 0; x < width; ++x) {
        image[(c * height + y) * width + x] =
            estimate.pattern[(c * height + y) * width + x] * estimate.mask[y * width + x];
      }
    }
  }
  return image;
}

}  // namespace usb
