#include "defenses/detector.h"

#include <functional>
#include <stdexcept>

#include "nn/checkpoint.h"
#include "utils/thread_pool.h"
#include "utils/timer.h"

namespace usb {

Tensor DetectionReport::reversed_trigger(std::int64_t k) const {
  if (k < 0 || k >= static_cast<std::int64_t>(per_class.size())) {
    throw std::out_of_range("reversed_trigger: class index out of range");
  }
  const TriggerEstimate& estimate = per_class[static_cast<std::size_t>(k)];
  const std::int64_t channels = estimate.pattern.dim(0);
  const std::int64_t height = estimate.pattern.dim(1);
  const std::int64_t width = estimate.pattern.dim(2);
  Tensor image(Shape{channels, height, width});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < height; ++y) {
      for (std::int64_t x = 0; x < width; ++x) {
        image[(c * height + y) * width + x] =
            estimate.pattern[(c * height + y) * width + x] * estimate.mask[y * width + x];
      }
    }
  }
  return image;
}

DetectionReport run_per_class_detection(
    const std::string& method, Network& model, const Dataset& probe, double mad_threshold,
    const std::function<TriggerEstimate(Network&, const Dataset&, std::int64_t)>& reverse_one) {
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.resize(static_cast<std::size_t>(num_classes));

  // One model clone per class; the inner tensor kernels detect that they run
  // inside a pool worker and stay single-threaded, so total parallelism is
  // the class count.
  ThreadPool::global().parallel_for(
      num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
        for (std::int64_t t = begin; t < end; ++t) {
          Network clone = clone_network(model);
          const Timer timer;
          report.per_class[static_cast<std::size_t>(t)] = reverse_one(clone, probe, t);
          report.per_class_seconds[static_cast<std::size_t>(t)] = timer.seconds();
        }
      });

  std::vector<double> norms(static_cast<std::size_t>(num_classes));
  for (std::size_t t = 0; t < norms.size(); ++t) norms[t] = report.per_class[t].mask_l1;
  report.verdict = decide_backdoor(norms, mad_threshold);
  return report;
}

}  // namespace usb
