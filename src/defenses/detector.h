// Common interface for backdoor detectors (NC, TABOR, USB).
//
// A detector receives the frozen victim model and a small clean probe set,
// reverse engineers one candidate trigger per class, and reduces each to a
// mask-L1 statistic fed to the MAD outlier rule (metrics/detection.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "metrics/detection.h"
#include "nn/models.h"

namespace usb {

/// One reverse-engineered candidate trigger.
struct TriggerEstimate {
  std::int64_t target_class = 0;
  Tensor pattern;          // (C,H,W), values in [0,1]
  Tensor mask;             // (H,W), values in [0,1]
  double mask_l1 = 0.0;    // detection statistic
  double final_loss = 0.0;
  double fooling_rate = 0.0;  // probe fraction sent to target_class
};

/// Completion state of one class's scan (DetectionReport::per_class_state).
/// kFinalized is the only state whose mask-L1 enters the MAD reduction;
/// every other state is peeled out (decide_backdoor_peeled) so a diverged
/// or unfinished class cannot poison the verdict for the rest.
enum class ClassScanState : std::uint8_t {
  kPending,    // scan ended (deadline/fault) before the class's task was built
  kRefining,   // task built, refinement unfinished when the scan ended
  kFinalized,  // estimate complete — participates in the verdict
  kNumericallyUnstable,  // quarantined: non-finite statistic, excluded
};

[[nodiscard]] std::string to_string(ClassScanState state);

struct DetectionReport {
  std::string method;
  std::vector<TriggerEstimate> per_class;
  /// Same length as per_class on every scan path; all-kFinalized on a
  /// healthy complete scan. Partial reports (ScanStatus::kTimedOut) and
  /// quarantines are legible here: a non-kFinalized class's per_class entry
  /// carries no meaningful estimate (quarantined classes report a NaN
  /// mask_l1) and its norm is excluded from the verdict.
  std::vector<ClassScanState> per_class_state;
  DetectionVerdict verdict;
  std::vector<double> per_class_seconds;  // per-class wall clock, Table 7
  /// End-to-end scan wall clock, measured around the whole fan-out. Under
  /// the parallel scan this is what a caller actually waits, while the
  /// per-class sum below approaches K times it; report both (Table 7 does).
  double wall_seconds = 0.0;

  /// Sum of the per-class wall clocks — the paper's Table 7 accounting
  /// (work performed), NOT elapsed time: concurrent class jobs each
  /// contribute their full duration, so under a parallel scan this exceeds
  /// `wall_seconds` by up to the pool width.
  [[nodiscard]] double total_seconds() const noexcept {
    double total = 0.0;
    for (const double s : per_class_seconds) total += s;
    return total;
  }
  /// The full-size reversed trigger image pattern*mask for class k.
  [[nodiscard]] Tensor reversed_trigger(std::int64_t k) const;

  /// True when every class reached a terminal per-class state (kFinalized
  /// or kNumericallyUnstable) — i.e. the scan ran to the end rather than
  /// being cut short by a deadline or fault.
  [[nodiscard]] bool complete() const noexcept;

  /// Classes quarantined as kNumericallyUnstable, in class order.
  [[nodiscard]] std::vector<std::int64_t> quarantined_classes() const;
};

struct ScanPlan;  // defenses/scan_plan.h

class Detector {
 public:
  virtual ~Detector() = default;
  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reifies this detector's scan (per-class task factory, shared-prefix
  /// builder, scheduler options) without running it — see
  /// defenses/scan_plan.h. The plan's closures borrow `this`, which must
  /// outlive any run of the plan. detect() runs the plan synchronously;
  /// DetectionService runs it asynchronously with pool/cache overrides.
  [[nodiscard]] virtual ScanPlan plan() const = 0;

  /// Runs detection synchronously. `probe` is the defender's clean data
  /// (the paper uses 300 samples for 32x32 datasets, 500 for the ImageNet
  /// subset). The default implementation is a thin adapter:
  /// run_scan_plan(plan(), model, probe) — byte-for-byte the historical
  /// per-detector detect() bodies.
  [[nodiscard]] virtual DetectionReport detect(Network& model, const Dataset& probe);
};

using DetectorPtr = std::unique_ptr<Detector>;

// The shared per-class fan-out / MAD-reduction driver lives in
// defenses/class_scan_scheduler.h (ClassScanScheduler); every detector's
// detect() is a thin adapter onto it.

}  // namespace usb
