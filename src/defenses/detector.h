// Common interface for backdoor detectors (NC, TABOR, USB).
//
// A detector receives the frozen victim model and a small clean probe set,
// reverse engineers one candidate trigger per class, and reduces each to a
// mask-L1 statistic fed to the MAD outlier rule (metrics/detection.h).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "metrics/detection.h"
#include "nn/models.h"

namespace usb {

/// One reverse-engineered candidate trigger.
struct TriggerEstimate {
  std::int64_t target_class = 0;
  Tensor pattern;          // (C,H,W), values in [0,1]
  Tensor mask;             // (H,W), values in [0,1]
  double mask_l1 = 0.0;    // detection statistic
  double final_loss = 0.0;
  double fooling_rate = 0.0;  // probe fraction sent to target_class
};

struct DetectionReport {
  std::string method;
  std::vector<TriggerEstimate> per_class;
  DetectionVerdict verdict;
  std::vector<double> per_class_seconds;  // wall clock, Table 7

  [[nodiscard]] double total_seconds() const noexcept {
    double total = 0.0;
    for (const double s : per_class_seconds) total += s;
    return total;
  }
  /// The full-size reversed trigger image pattern*mask for class k.
  [[nodiscard]] Tensor reversed_trigger(std::int64_t k) const;
};

class Detector {
 public:
  virtual ~Detector() = default;
  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs detection. `probe` is the defender's clean data (the paper uses
  /// 300 samples for 32x32 datasets, 500 for the ImageNet subset).
  [[nodiscard]] virtual DetectionReport detect(Network& model, const Dataset& probe) = 0;
};

using DetectorPtr = std::unique_ptr<Detector>;

// The shared per-class fan-out / MAD-reduction driver lives in
// defenses/class_scan_scheduler.h (ClassScanScheduler); every detector's
// detect() is a thin adapter onto it.

}  // namespace usb
