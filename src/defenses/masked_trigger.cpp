#include "defenses/masked_trigger.h"
#include <algorithm>

#include <cmath>
#include <stdexcept>

namespace usb {
namespace {

float sigmoid(float v) noexcept { return 1.0F / (1.0F + std::exp(-v)); }

float logit(float p) noexcept {
  const float clamped = std::clamp(p, 1e-4F, 1.0F - 1e-4F);
  return std::log(clamped / (1.0F - clamped));
}

AdamConfig detection_adam(float lr) {
  AdamConfig config;
  config.lr = lr;
  config.beta1 = 0.5F;  // paper Section 4.1: Adam with beta = (0.5, 0.9)
  config.beta2 = 0.9F;
  return config;
}

}  // namespace

MaskedTrigger::MaskedTrigger(std::int64_t channels, std::int64_t size, Rng& rng, float lr)
    : channels_(channels),
      size_(size),
      theta_mask_(Shape{size, size}),
      theta_pattern_(Shape{channels, size, size}),
      grad_mask_(Shape{size, size}),
      grad_pattern_(Shape{channels, size, size}),
      adam_mask_(theta_mask_.shape(), detection_adam(lr)),
      adam_pattern_(theta_pattern_.shape(), detection_adam(lr)) {
  // Random start: mask around ~0.1 (mostly transparent), pattern uniform
  // noise — the NC-style random point of the paper's Fig. 1.
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    theta_mask_[i] = static_cast<float>(rng.normal(-2.0, 0.5));
  }
  for (std::int64_t i = 0; i < theta_pattern_.numel(); ++i) {
    theta_pattern_[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
}

MaskedTrigger::MaskedTrigger(Tensor initial_mask, Tensor initial_pattern, float lr)
    : channels_(initial_pattern.dim(0)),
      size_(initial_pattern.dim(1)),
      theta_mask_(initial_mask.shape()),
      theta_pattern_(initial_pattern.shape()),
      grad_mask_(initial_mask.shape()),
      grad_pattern_(initial_pattern.shape()),
      adam_mask_(theta_mask_.shape(), detection_adam(lr)),
      adam_pattern_(theta_pattern_.shape(), detection_adam(lr)) {
  if (initial_mask.rank() != 2 || initial_pattern.rank() != 3 ||
      initial_mask.dim(0) != initial_pattern.dim(1) ||
      initial_mask.dim(1) != initial_pattern.dim(2)) {
    throw std::invalid_argument("MaskedTrigger: mask (H,W) / pattern (C,H,W) mismatch");
  }
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) theta_mask_[i] = logit(initial_mask[i]);
  for (std::int64_t i = 0; i < theta_pattern_.numel(); ++i) {
    theta_pattern_[i] = logit(initial_pattern[i]);
  }
}

Tensor MaskedTrigger::mask() const {
  Tensor m(theta_mask_.shape());
  for (std::int64_t i = 0; i < m.numel(); ++i) m[i] = sigmoid(theta_mask_[i]);
  return m;
}

Tensor MaskedTrigger::pattern() const {
  Tensor p(theta_pattern_.shape());
  for (std::int64_t i = 0; i < p.numel(); ++i) p[i] = sigmoid(theta_pattern_[i]);
  return p;
}

double MaskedTrigger::mask_l1() const {
  double total = 0.0;
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) total += sigmoid(theta_mask_[i]);
  return total;
}

Tensor MaskedTrigger::apply(const Tensor& x) const {
  const Tensor m = mask();
  const Tensor p = pattern();
  const std::int64_t batch = x.dim(0);
  const std::int64_t spatial = size_ * size_;
  Tensor out = x;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      float* out_p = out.raw() + (n * channels_ + c) * spatial;
      const float* pat = p.raw() + c * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        out_p[s] = out_p[s] * (1.0F - m[s]) + pat[s] * m[s];
      }
    }
  }
  return out;
}

void MaskedTrigger::zero_grad() {
  grad_mask_.fill(0.0F);
  grad_pattern_.fill(0.0F);
}

void MaskedTrigger::accumulate_from_output_grad(const Tensor& dxprime, const Tensor& x) {
  const Tensor m = mask();
  const Tensor p = pattern();
  const std::int64_t batch = x.dim(0);
  const std::int64_t spatial = size_ * size_;

  // dL/dm[s] = sum_{n,c} dx'[n,c,s] * (p[c,s] - x[n,c,s]);  dL/dp = dx' * m.
  Tensor dmask_values(m.shape());
  Tensor dpattern_values(p.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* dxp = dxprime.raw() + (n * channels_ + c) * spatial;
      const float* x_p = x.raw() + (n * channels_ + c) * spatial;
      const float* pat = p.raw() + c * spatial;
      float* dpat = dpattern_values.raw() + c * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        dmask_values[s] += dxp[s] * (pat[s] - x_p[s]);
        dpat[s] += dxp[s] * m[s];
      }
    }
  }
  add_mask_value_grad(dmask_values);
  add_pattern_value_grad(dpattern_values);
}

void MaskedTrigger::add_mask_l1_grad(float weight) {
  // mask >= 0, so d|m|_1/dm = 1 everywhere.
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    const float m = sigmoid(theta_mask_[i]);
    grad_mask_[i] += weight * m * (1.0F - m);
  }
}

void MaskedTrigger::add_mask_elastic_grad(float weight) {
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    const float m = sigmoid(theta_mask_[i]);
    grad_mask_[i] += weight * (1.0F + 2.0F * m) * m * (1.0F - m);
  }
}

void MaskedTrigger::add_mask_tv_grad(float weight) {
  const Tensor m = mask();
  Tensor dtv(m.shape());
  for (std::int64_t y = 0; y < size_; ++y) {
    for (std::int64_t x = 0; x < size_; ++x) {
      if (y + 1 < size_) {
        const float diff = m[(y + 1) * size_ + x] - m[y * size_ + x];
        const float sign = diff > 0.0F ? 1.0F : (diff < 0.0F ? -1.0F : 0.0F);
        dtv[(y + 1) * size_ + x] += sign;
        dtv[y * size_ + x] -= sign;
      }
      if (x + 1 < size_) {
        const float diff = m[y * size_ + x + 1] - m[y * size_ + x];
        const float sign = diff > 0.0F ? 1.0F : (diff < 0.0F ? -1.0F : 0.0F);
        dtv[y * size_ + x + 1] += sign;
        dtv[y * size_ + x] -= sign;
      }
    }
  }
  dtv *= weight;
  add_mask_value_grad(dtv);
}

void MaskedTrigger::add_mask_value_grad(const Tensor& dmask) {
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    const float m = sigmoid(theta_mask_[i]);
    grad_mask_[i] += dmask[i] * m * (1.0F - m);
  }
}

void MaskedTrigger::add_pattern_value_grad(const Tensor& dpattern) {
  for (std::int64_t i = 0; i < theta_pattern_.numel(); ++i) {
    const float p = sigmoid(theta_pattern_[i]);
    grad_pattern_[i] += dpattern[i] * p * (1.0F - p);
  }
}

void MaskedTrigger::step() {
  adam_mask_.step(theta_mask_, grad_mask_);
  adam_pattern_.step(theta_pattern_, grad_pattern_);
}

}  // namespace usb
