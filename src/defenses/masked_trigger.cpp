#include "defenses/masked_trigger.h"
#include <algorithm>

#include <cmath>
#include <stdexcept>

#include "tensor/elementwise.h"

namespace usb {
namespace {

float logit(float p) noexcept {
  const float clamped = std::clamp(p, 1e-4F, 1.0F - 1e-4F);
  return std::log(clamped / (1.0F - clamped));
}

AdamConfig detection_adam(float lr) {
  AdamConfig config;
  config.lr = lr;
  config.beta1 = 0.5F;  // paper Section 4.1: Adam with beta = (0.5, 0.9)
  config.beta2 = 0.9F;
  return config;
}

}  // namespace

MaskedTrigger::MaskedTrigger(std::int64_t channels, std::int64_t size, Rng& rng, float lr)
    : channels_(channels),
      size_(size),
      theta_mask_(Shape{size, size}),
      theta_pattern_(Shape{channels, size, size}),
      grad_mask_(Shape{size, size}),
      grad_pattern_(Shape{channels, size, size}),
      adam_mask_(theta_mask_.shape(), detection_adam(lr)),
      adam_pattern_(theta_pattern_.shape(), detection_adam(lr)) {
  // Random start: mask around ~0.1 (mostly transparent), pattern uniform
  // noise — the NC-style random point of the paper's Fig. 1.
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    theta_mask_[i] = static_cast<float>(rng.normal(-2.0, 0.5));
  }
  for (std::int64_t i = 0; i < theta_pattern_.numel(); ++i) {
    theta_pattern_[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
}

MaskedTrigger::MaskedTrigger(Tensor initial_mask, Tensor initial_pattern, float lr)
    : channels_(initial_pattern.dim(0)),
      size_(initial_pattern.dim(1)),
      theta_mask_(initial_mask.shape()),
      theta_pattern_(initial_pattern.shape()),
      grad_mask_(initial_mask.shape()),
      grad_pattern_(initial_pattern.shape()),
      adam_mask_(theta_mask_.shape(), detection_adam(lr)),
      adam_pattern_(theta_pattern_.shape(), detection_adam(lr)) {
  if (initial_mask.rank() != 2 || initial_pattern.rank() != 3 ||
      initial_mask.dim(0) != initial_pattern.dim(1) ||
      initial_mask.dim(1) != initial_pattern.dim(2)) {
    throw std::invalid_argument("MaskedTrigger: mask (H,W) / pattern (C,H,W) mismatch");
  }
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) theta_mask_[i] = logit(initial_mask[i]);
  for (std::int64_t i = 0; i < theta_pattern_.numel(); ++i) {
    theta_pattern_[i] = logit(initial_pattern[i]);
  }
}

void MaskedTrigger::refresh_values() const {
  if (values_fresh_) return;
  mask_values_.ensure_shape(theta_mask_.shape());
  pattern_values_.ensure_shape(theta_pattern_.shape());
  ew::sigmoid_fwd(theta_mask_.raw(), mask_values_.raw(), theta_mask_.numel());
  ew::sigmoid_fwd(theta_pattern_.raw(), pattern_values_.raw(), theta_pattern_.numel());
  values_fresh_ = true;
}

const Tensor& MaskedTrigger::mask_values() const {
  refresh_values();
  return mask_values_;
}

const Tensor& MaskedTrigger::pattern_values() const {
  refresh_values();
  return pattern_values_;
}

Tensor MaskedTrigger::mask() const { return mask_values(); }

Tensor MaskedTrigger::pattern() const { return pattern_values(); }

double MaskedTrigger::mask_l1() const {
  const Tensor& m = mask_values();
  double total = 0.0;
  for (std::int64_t i = 0; i < m.numel(); ++i) total += m[i];
  return total;
}

void MaskedTrigger::apply_core(const Tensor& x, Tensor& out) const {
  refresh_values();
  const std::int64_t batch = x.dim(0);
  const std::int64_t spatial = size_ * size_;
  out.ensure_shape(x.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const std::int64_t offset = (n * channels_ + c) * spatial;
      ew::blend(x.raw() + offset, mask_values_.raw(), pattern_values_.raw() + c * spatial,
                out.raw() + offset, spatial);
    }
  }
}

Tensor MaskedTrigger::apply(const Tensor& x) const {
  Tensor out;
  apply_core(x, out);
  return out;
}

const Tensor& MaskedTrigger::apply_into(const Tensor& x, TensorArena& arena) const {
  Tensor& out = arena.alloc(x.shape());
  apply_core(x, out);
  return out;
}

void MaskedTrigger::zero_grad() {
  grad_mask_.fill(0.0F);
  grad_pattern_.fill(0.0F);
}

void MaskedTrigger::accumulate_from_output_grad(const Tensor& dxprime, const Tensor& x) {
  refresh_values();
  const std::int64_t batch = x.dim(0);
  const std::int64_t spatial = size_ * size_;

  // dL/dm[s] = sum_{n,c} dx'[n,c,s] * (p[c,s] - x[n,c,s]);  dL/dp = dx' * m.
  dmask_scratch_.ensure_shape(mask_values_.shape());
  dmask_scratch_.fill(0.0F);
  dpattern_scratch_.ensure_shape(pattern_values_.shape());
  dpattern_scratch_.fill(0.0F);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const std::int64_t offset = (n * channels_ + c) * spatial;
      ew::mask_grad_accum(dmask_scratch_.raw(), dxprime.raw() + offset,
                          pattern_values_.raw() + c * spatial, x.raw() + offset, spatial);
      ew::muladd_accum(dpattern_scratch_.raw() + c * spatial, dxprime.raw() + offset,
                       mask_values_.raw(), spatial);
    }
  }
  add_mask_value_grad(dmask_scratch_);
  add_pattern_value_grad(dpattern_scratch_);
}

void MaskedTrigger::add_mask_l1_grad(float weight) {
  // mask >= 0, so d|m|_1/dm = 1 everywhere.
  ew::l1_sigmoid_grad_accum(grad_mask_.raw(), mask_values().raw(), weight,
                            grad_mask_.numel());
}

void MaskedTrigger::add_mask_elastic_grad(float weight) {
  const Tensor& values = mask_values();
  for (std::int64_t i = 0; i < theta_mask_.numel(); ++i) {
    const float m = values[i];
    grad_mask_[i] += weight * (1.0F + 2.0F * m) * m * (1.0F - m);
  }
}

void MaskedTrigger::add_mask_tv_grad(float weight) {
  const Tensor& m = mask_values();
  tv_scratch_.ensure_shape(m.shape());
  tv_scratch_.fill(0.0F);
  Tensor& dtv = tv_scratch_;
  for (std::int64_t y = 0; y < size_; ++y) {
    for (std::int64_t x = 0; x < size_; ++x) {
      if (y + 1 < size_) {
        const float diff = m[(y + 1) * size_ + x] - m[y * size_ + x];
        const float sign = diff > 0.0F ? 1.0F : (diff < 0.0F ? -1.0F : 0.0F);
        dtv[(y + 1) * size_ + x] += sign;
        dtv[y * size_ + x] -= sign;
      }
      if (x + 1 < size_) {
        const float diff = m[y * size_ + x + 1] - m[y * size_ + x];
        const float sign = diff > 0.0F ? 1.0F : (diff < 0.0F ? -1.0F : 0.0F);
        dtv[y * size_ + x + 1] += sign;
        dtv[y * size_ + x] -= sign;
      }
    }
  }
  dtv *= weight;
  add_mask_value_grad(dtv);
}

void MaskedTrigger::add_mask_value_grad(const Tensor& dmask) {
  ew::dsigmoid_chain_accum(grad_mask_.raw(), dmask.raw(), mask_values().raw(),
                           grad_mask_.numel());
}

void MaskedTrigger::add_pattern_value_grad(const Tensor& dpattern) {
  ew::dsigmoid_chain_accum(grad_pattern_.raw(), dpattern.raw(), pattern_values().raw(),
                           grad_pattern_.numel());
}

void MaskedTrigger::step() {
  adam_mask_.step(theta_mask_, grad_mask_);
  adam_pattern_.step(theta_pattern_, grad_pattern_);
  values_fresh_ = false;
}

}  // namespace usb
