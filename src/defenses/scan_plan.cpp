#include "defenses/scan_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/checkpoint.h"
#include "utils/fault_injection.h"
#include "utils/memory_budget.h"

namespace usb {

StagedScan::StagedScan(ScanPlan plan, Network& model, const Dataset& probe)
    : StagedScan(std::move(plan), &model, nullptr, probe) {}

StagedScan::StagedScan(ScanPlan plan, std::shared_ptr<const Network> model, const Dataset& probe)
    : StagedScan(std::move(plan), nullptr, std::move(model), probe) {}

StagedScan::StagedScan(ScanPlan plan, Network* model, std::shared_ptr<const Network> shared,
                       const Dataset& probe)
    : plan_(std::move(plan)),
      scheduler_(plan_.options),
      model_(model),
      shared_model_(std::move(shared)),
      probe_(&probe),
      num_classes_(probe.spec().num_classes),
      round_steps_(plan_.options.early_exit.round_steps > 0
                       ? plan_.options.early_exit.round_steps
                       : std::max<std::int64_t>(1, (plan_.total_steps + 5) / 6)) {
  const auto slots = static_cast<std::size_t>(num_classes_);
  clones_.resize(slots);
  tasks_.resize(slots);
  remaining_.assign(slots, std::max<std::int64_t>(0, plan_.total_steps));
  report_.method = plan_.method;
  report_.per_class.resize(slots);
  report_.per_class_seconds.assign(slots, 0.0);
  // kPending until construct_class: a deadline or fault can end the scan at
  // any stage boundary, and the partial report must say how far each class
  // got (take_report handles every state).
  report_.per_class_state.assign(slots, ClassScanState::kPending);
  clone_budget_bytes_.assign(slots, 0);
}

StagedScan::~StagedScan() {
  std::int64_t registered = 0;
  for (const std::int64_t bytes : clone_budget_bytes_) registered += bytes;
  if (registered > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kModelClones, registered);
  }
}

void StagedScan::prepare() {
  USB_FAULT_POINT("scan.prepare");
  eval_cache_ = select_scan_probe_cache(plan_.options, *probe_, local_cache_);
  if (plan_.shared_builder) {
    if (model_ != nullptr) {
      shared_ = plan_.shared_builder(*model_, *probe_);
    } else {
      // Shared-model mode: the builder runs forward/backward on its model
      // argument, which mutates per-instance forward caches — illegal on an
      // immutable instance other scans read concurrently. Build on a private
      // clone instead; the prefix (tensors only, no model references)
      // outlives it. Bit-identical: eval-mode forward/backward are pure
      // functions of (weights, input) and the clone copies every state
      // tensor.
      Network scratch = clone_network(*shared_model_);
      shared_ = plan_.shared_builder(scratch, *probe_);
    }
  }
}

void StagedScan::construct_class(std::int64_t target_class) {
  const auto slot = static_cast<std::size_t>(target_class);
  USB_FAULT_POINT("scan.clone");
  clones_[slot] = std::make_unique<Network>(clone_network(reference()));
  // Budget the clone. A retried construct re-clones into the same slot:
  // release the stale registration first so the slot counts once.
  if (clone_budget_bytes_[slot] > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kModelClones,
                                    clone_budget_bytes_[slot]);
  }
  clone_budget_bytes_[slot] = network_resident_bytes(*clones_[slot]);
  MemoryBudget::process().add(MemoryBudget::Category::kModelClones, clone_budget_bytes_[slot]);
  const Timer timer;
  USB_FAULT_POINT("scan.construct");
  tasks_[slot] = plan_.make_task(*clones_[slot], *probe_,
                                 scheduler_.make_job(target_class, *eval_cache_, shared_.get()));
  report_.per_class_seconds[slot] += timer.seconds();
  report_.per_class_state[slot] = ClassScanState::kRefining;
}

bool StagedScan::run_round(std::int64_t target_class) {
  const auto slot = static_cast<std::size_t>(target_class);
  USB_FAULT_POINT("scan.round");
  const Timer timer;
  const std::int64_t steps = std::min(round_steps_, remaining_[slot]);
  const std::int64_t ran = tasks_[slot]->run_steps(steps);
  // Fewer than requested means the loop's own exit condition fired; the
  // class is done either way.
  remaining_[slot] = ran < steps ? 0 : remaining_[slot] - ran;
  report_.per_class_seconds[slot] += timer.seconds();
  // Numerical quarantine at the round boundary, same condition as the
  // blocking paths: a diverged statistic zeroes the budget and excludes
  // the class from every later cutoff and from the verdict.
  double stat_now = tasks_[slot]->current_mask_l1();
  if (USB_FAULT_NAN("scan.round_stat")) stat_now = std::numeric_limits<double>::quiet_NaN();
  if (!std::isfinite(stat_now)) {
    report_.per_class_state[slot] = ClassScanState::kNumericallyUnstable;
    remaining_[slot] = 0;
    notify(target_class, ClassScanEvent::kQuarantined, stat_now);
  }
  return remaining_[slot] > 0;
}

bool StagedScan::has_budget(std::int64_t target_class) const {
  return remaining_[static_cast<std::size_t>(target_class)] > 0;
}

double StagedScan::stat(std::int64_t target_class) const {
  const auto slot = static_cast<std::size_t>(target_class);
  if (report_.per_class_state[slot] == ClassScanState::kNumericallyUnstable) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return tasks_[slot]->current_mask_l1();
}

bool StagedScan::quarantined(std::int64_t target_class) const {
  return report_.per_class_state[static_cast<std::size_t>(target_class)] ==
         ClassScanState::kNumericallyUnstable;
}

double StagedScan::mad_cutoff() const {
  USB_FAULT_POINT("scan.cutoff");
  // Current statistics of ALL classes (stopped ones hold their frozen
  // value), in class order — the same population the final MAD rule sees.
  // Quarantined classes read NaN (stat()) and are peeled by the shared
  // cutoff helper, matching the blocking barriers.
  std::vector<double> norms(static_cast<std::size_t>(num_classes_));
  for (std::int64_t t = 0; t < num_classes_; ++t) {
    norms[static_cast<std::size_t>(t)] = stat(t);
  }
  return early_exit_cutoff(norms, plan_.options.early_exit.margin);
}

void StagedScan::retire_class(std::int64_t target_class) {
  USB_FAULT_POINT("scan.retire");
  remaining_[static_cast<std::size_t>(target_class)] = 0;
  notify(target_class, ClassScanEvent::kRetired, stat(target_class));
}

void StagedScan::finalize_class(std::int64_t target_class) {
  const auto slot = static_cast<std::size_t>(target_class);
  if (report_.per_class_state[slot] == ClassScanState::kNumericallyUnstable) {
    // Quarantined: no fooling-rate evaluation, no kFinalized event — the
    // class ends with a NaN statistic, peeled from the verdict.
    report_.per_class[slot].target_class = target_class;
    report_.per_class[slot].mask_l1 = std::numeric_limits<double>::quiet_NaN();
    return;
  }
  USB_FAULT_POINT("scan.finalize");
  const Timer timer;
  report_.per_class[slot] = tasks_[slot]->finalize();
  report_.per_class_seconds[slot] += timer.seconds();
  report_.per_class_state[slot] = ClassScanState::kFinalized;
  notify(target_class, ClassScanEvent::kFinalized, report_.per_class[slot].mask_l1);
}

DetectionReport StagedScan::take_report() {
  // Partial scans (deadline expiry) reach here with kPending/kRefining
  // classes; stamp their slots so the report is legible without estimates.
  for (std::int64_t t = 0; t < num_classes_; ++t) {
    const auto slot = static_cast<std::size_t>(t);
    if (report_.per_class_state[slot] == ClassScanState::kPending ||
        report_.per_class_state[slot] == ClassScanState::kRefining) {
      report_.per_class[slot].target_class = t;
    }
  }
  return scheduler_.finish(std::move(report_), wall_.seconds());
}

void StagedScan::notify(std::int64_t target_class, ClassScanEvent event, double mask_l1) const {
  if (plan_.options.progress) plan_.options.progress(target_class, event, mask_l1);
}

DetectionReport run_scan_plan(const ScanPlan& plan, Network& model, const Dataset& probe) {
  const ClassScanScheduler scheduler(plan.options);
  if (plan.options.early_exit.enabled) {
    return scheduler.run_early_exit(plan.method, model, probe, plan.total_steps, plan.make_task,
                                    plan.shared_builder);
  }
  return scheduler.run(
      plan.method, model, probe,
      [&plan](Network& clone, const Dataset& data, const ClassScanJob& job) {
        const std::unique_ptr<ClassRefineTask> task = plan.make_task(clone, data, job);
        (void)task->run_steps(plan.total_steps);
        return task->finalize();
      },
      plan.shared_builder);
}

}  // namespace usb
