#include "defenses/scan_plan.h"

namespace usb {

DetectionReport run_scan_plan(const ScanPlan& plan, Network& model, const Dataset& probe) {
  const ClassScanScheduler scheduler(plan.options);
  if (plan.options.early_exit.enabled) {
    return scheduler.run_early_exit(plan.method, model, probe, plan.total_steps, plan.make_task,
                                    plan.shared_builder);
  }
  return scheduler.run(
      plan.method, model, probe,
      [&plan](Network& clone, const Dataset& data, const ClassScanJob& job) {
        const std::unique_ptr<ClassRefineTask> task = plan.make_task(clone, data, job);
        (void)task->run_steps(plan.total_steps);
        return task->finalize();
      },
      plan.shared_builder);
}

}  // namespace usb
