// Parallel multi-class scan scheduler shared by USB, NC, and TABOR.
//
// Every detector in this repository pays the same cost structure: K
// independent per-class reverse-engineering jobs (Alg. 1 + Alg. 2 for USB,
// the NC/TABOR optimization otherwise) followed by one MAD outlier
// reduction. The scheduler owns that structure so detectors only supply the
// per-class job body:
//
//  - fan-out: every candidate class runs as its own job on
//    ThreadPool::global() (or an injected pool), each on a private deep copy
//    of the victim model — forward caches are per-instance, so clones make
//    the classes embarrassingly parallel. The scan's pool is also what the
//    nested tensor kernels see: GEMM tiles spill onto the SAME pool's idle
//    workers whenever the class fan-out under-subscribes it (K < pool size,
//    or a sequential single-class call), and run inline when it is
//    saturated, so every core stays busy in both regimes;
//  - per-class RNG streams: each job receives a stream root derived only
//    from (base_seed, class), never from thread ids or schedule order;
//  - shared probe batches: the fooling-rate evaluation batches over the full
//    probe set are materialized once and shared read-only by all K jobs,
//    instead of K DataLoader passes re-gathering the same rows;
//  - ordered reduction: estimates land in class order before the MAD rule.
//
// Consequence: a DetectionReport is bit-identical regardless of USB_THREADS
// (wall-clock timings aside), which tests/test_scan_scheduler.cpp locks in.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataloader.h"
#include "defenses/detector.h"
#include "utils/thread_pool.h"

namespace usb {

class MaskedTrigger;

/// Read-only mini-batches of a probe set, materialized once and shared by
/// every per-class job. Batching matches the historical evaluation loaders
/// (sequential order, fixed batch size), so cached fooling rates are
/// bit-identical to a fresh DataLoader pass.
class ProbeBatchCache {
 public:
  explicit ProbeBatchCache(const Dataset& probe, std::int64_t batch_size = 128);

  [[nodiscard]] const std::vector<Batch>& batches() const noexcept { return batches_; }
  [[nodiscard]] std::int64_t total_samples() const noexcept { return total_samples_; }
  [[nodiscard]] std::int64_t batch_size() const noexcept { return batch_size_; }

 private:
  std::vector<Batch> batches_;
  std::int64_t total_samples_ = 0;
  std::int64_t batch_size_ = 0;
};

/// Context handed to one per-class reverse-engineering job.
struct ClassScanJob {
  std::int64_t target_class = 0;
  /// Deterministic per-class stream root; derive sub-streams (init, loader,
  /// ...) with hash_combine(rng_seed, salt). Depends only on (base_seed,
  /// target_class).
  std::uint64_t rng_seed = 0;
  /// Shared full-probe evaluation batches; never null inside a scan.
  const ProbeBatchCache* probe_cache = nullptr;
};

struct ClassScanOptions {
  double mad_threshold = 2.0;
  /// Root seed for the per-class RNG streams (typically the detector seed).
  std::uint64_t base_seed = 0;
  /// Batch size of the shared fooling-rate evaluation batches.
  std::int64_t eval_batch_size = 128;
  /// Pool override for tests/benches; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
};

class ClassScanScheduler {
 public:
  using ReverseFn =
      std::function<TriggerEstimate(Network&, const Dataset&, const ClassScanJob&)>;

  explicit ClassScanScheduler(ClassScanOptions options) : options_(options) {}

  /// The per-class stream root: hash of the base seed and the class only.
  [[nodiscard]] static std::uint64_t class_stream_seed(std::uint64_t base_seed,
                                                       std::int64_t target_class) noexcept;

  /// Builds the evaluation cache exactly as run() does (same batch size).
  /// The cache holds a transient copy of the probe set — cheap at this
  /// repo's probe scale (<=500 small images), shared across all K jobs
  /// inside run(); sequential single-class callers pay it per call.
  [[nodiscard]] ProbeBatchCache make_cache(const Dataset& probe) const;

  /// Builds the job for one class against an existing cache (the sequential
  /// single-class entry points use this to match the parallel scan exactly).
  [[nodiscard]] ClassScanJob make_job(std::int64_t target_class,
                                      const ProbeBatchCache& cache) const noexcept;

  /// Fans `reverse_one` out over all probe.spec().num_classes classes, each
  /// on a private clone of `model`, then applies the MAD outlier rule to the
  /// mask-L1 statistics in class order.
  [[nodiscard]] DetectionReport run(const std::string& method, Network& model,
                                    const Dataset& probe, const ReverseFn& reverse_one) const;

  [[nodiscard]] const ClassScanOptions& options() const noexcept { return options_; }

 private:
  ClassScanOptions options_;
};

/// Fraction of cached probe samples that `trigger` sends to `target_class`.
/// The shared replacement for the per-detector final_fooling_rate loops.
[[nodiscard]] double fooling_rate(Network& model, const ProbeBatchCache& cache,
                                  const MaskedTrigger& trigger, std::int64_t target_class);

}  // namespace usb
