// Parallel multi-class scan scheduler shared by USB, NC, and TABOR.
//
// Every detector in this repository pays the same cost structure: K
// independent per-class reverse-engineering jobs (Alg. 1 + Alg. 2 for USB,
// the NC/TABOR optimization otherwise) followed by one MAD outlier
// reduction. The scheduler owns that structure so detectors only supply the
// per-class job body:
//
//  - fan-out: every candidate class runs as its own job on
//    ThreadPool::global() (or an injected pool), each on a private deep copy
//    of the victim model — forward caches are per-instance, so clones make
//    the classes embarrassingly parallel. The scan's pool is also what the
//    nested tensor kernels see: GEMM tiles spill onto the SAME pool's idle
//    workers whenever the class fan-out under-subscribes it (K < pool size,
//    or a sequential single-class call), and run inline when it is
//    saturated, so every core stays busy in both regimes;
//  - per-class RNG streams: each job receives a stream root derived only
//    from (base_seed, class), never from thread ids or schedule order;
//  - shared probe batches: the fooling-rate evaluation batches over the full
//    probe set are materialized once and shared read-only by all K jobs,
//    instead of K DataLoader passes re-gathering the same rows. Callers that
//    scan the same probe repeatedly (the experiment harness runs three
//    detectors per model) can inject a prebuilt cache via
//    ClassScanOptions::external_probe_cache;
//  - shared scan prefix: detectors may attach arbitrary class-independent
//    state (USB: the Alg. 1 craft batches and the v = 0 DeepFool warm
//    start) built once on the reference model before the fan-out, shared
//    read-only by every job — see ScanSharedState;
//  - ordered reduction: estimates land in class order before the MAD rule.
//
// Early-exit scheduling (run_early_exit) additionally splits each class's
// refinement budget into rounds with a barrier after every round: a class
// whose mask-L1 statistic already exceeds the running median by the
// MAD-outlier margin stops refining (the decision rule only flags LOW-side
// outliers, so a class far above the pack is very unlikely to matter) and
// its worker slot is reclaimed for the remaining candidate classes. This
// is a heuristic budget/accuracy trade — mask-L1 is not monotone under
// refinement, so a retired class could in principle have descended below
// the median given its full budget; EarlyExitOptions::margin/min_rounds
// tune that risk. Decisions are taken only at round barriers from
// bit-deterministic statistics, so reports stay bit-identical for any
// thread count; with early exit disabled detectors take the run() path,
// which is byte-for-byte the pre-existing behavior.
//
// The async-retirement variant (EarlyExitOptions::async, meant to be
// driven through DetectionService options) trades the per-round barrier for a
// single rendezvous that fixes the cutoff, after which classes retire the
// moment their own statistic crosses it — see EarlyExitOptions::async for
// the determinism argument.
//
// Consequence: a DetectionReport is bit-identical regardless of USB_THREADS
// (wall-clock timings aside), which tests/test_scan_scheduler.cpp and
// tests/test_detection_service.cpp lock in.
//
// The same argument generalizes beyond one scan's pool to CROSS-REQUEST
// scheduling (DetectionService's global class-job scheduler drives these
// stages through StagedScan in scan_plan.h): a class's trajectory is a
// schedule-free function of (base_seed, class) — run_steps slices
// concatenate bit-identically, the tensor kernels are schedule-free — so it
// cannot observe WHEN its rounds run, only HOW MANY steps they total. The
// only cross-class data flows are the MAD cutoffs, and each is taken at a
// logical point fixed by the schedule's structure, not by timing: the sync
// barrier after round r sees every class at exactly r rounds, and the async
// rendezvous sees every class at exactly min_rounds rounds, regardless of
// which threads ran them, in what order, or what OTHER requests' rounds were
// interleaved between them. Hence every report stays bit-identical to
// detect() for any dispatcher count, pool size, priority assignment, and
// interleaving with other requests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/dataloader.h"
#include "data/probe_cache.h"
#include "defenses/detector.h"
#include "utils/thread_pool.h"

namespace usb {

class MaskedTrigger;
class TensorArena;

/// Base for detector-specific class-independent scan state (built once per
/// detect() on the reference model, shared read-only by all K jobs). USB
/// attaches the Alg. 1 shared prefix; NC/TABOR need nothing beyond the
/// probe cache.
struct ScanSharedState {
  virtual ~ScanSharedState() = default;
};

/// Builds the detector's shared state against the reference model; invoked
/// once per scan, before any clone is made. May be empty (no shared state).
using ScanSharedBuilder =
    std::function<std::shared_ptr<const ScanSharedState>(Network& model, const Dataset& probe)>;

/// Context handed to one per-class reverse-engineering job.
struct ClassScanJob {
  std::int64_t target_class = 0;
  /// Deterministic per-class stream root; derive sub-streams (init, loader,
  /// ...) with hash_combine(rng_seed, salt). Depends only on (base_seed,
  /// target_class).
  std::uint64_t rng_seed = 0;
  /// Shared full-probe evaluation batches; never null inside a scan.
  const ProbeBatchCache* probe_cache = nullptr;
  /// Detector-specific shared scan prefix; null when the detector attached
  /// none (or sharing is disabled).
  const ScanSharedState* shared = nullptr;
};

/// One per-class reverse-engineering job in resumable form, for early-exit
/// round scheduling. Construction performs everything before the refinement
/// loop (USB: all of Alg. 1 plus the trigger decomposition); run_steps
/// advances the loop in slices whose concatenation is bit-identical to one
/// uninterrupted run (all loop state — data loader cursor, optimizer
/// moments, schedules — lives in the task); finalize performs the
/// post-loop evaluation.
class ClassRefineTask {
 public:
  virtual ~ClassRefineTask() = default;
  ClassRefineTask() = default;
  ClassRefineTask(const ClassRefineTask&) = delete;
  ClassRefineTask& operator=(const ClassRefineTask&) = delete;

  /// Runs up to `steps` more refinement steps; returns the number actually
  /// executed (fewer only when the loop's own exit condition fired, after
  /// which every later call returns 0).
  virtual std::int64_t run_steps(std::int64_t steps) = 0;

  /// Current value of the detection statistic (mask L1) — the early-exit
  /// decision input. Must be cheap and must not advance any state.
  [[nodiscard]] virtual double current_mask_l1() const = 0;

  /// Post-loop evaluation (fooling rate over the shared probe cache) and
  /// estimate assembly. Call exactly once, after the last run_steps.
  [[nodiscard]] virtual TriggerEstimate finalize() = 0;
};

/// Early-exit configuration. Disabled by default; when disabled the scan is
/// bit-identical to the monolithic per-class path.
struct EarlyExitOptions {
  bool enabled = false;
  /// Steps per round; <= 0 derives ceil(total_steps / 6).
  std::int64_t round_steps = 0;
  /// Rounds every class must complete before it may be stopped.
  std::int64_t min_rounds = 1;
  /// Stop a class when its statistic exceeds the running median by more
  /// than `margin` consistency-scaled MADs (the same 1.4826 scaling the
  /// decision rule uses). 0 stops everything strictly above the median.
  double margin = 1.0;
  /// Async retirement. Intended to be driven through
  /// DetectionService::ScanOptions — no detector config documents it or
  /// sets it by default, though the flag is technically reachable through
  /// any config embedding EarlyExitOptions (the scheduler tests use that
  /// route). Instead of a barrier after every
  /// round, the scan synchronizes ONCE — after every class has run
  /// `min_rounds` rounds — to fix the MAD cutoff from the class-ordered
  /// statistics, then lets each class run its remaining rounds untethered,
  /// retiring the moment its own mask-L1 crosses that fixed cutoff. A slow
  /// class no longer gates the others' rounds and a retired class frees its
  /// worker slot immediately. Determinism argument: each class's statistic
  /// trajectory is a schedule-free function of (base_seed, class) —
  /// run_steps slices concatenate bit-identically and the tensor kernels
  /// are schedule-free — the cutoff is computed at one deterministic
  /// logical point, and every retirement decision is a pure function of
  /// (own trajectory, fixed cutoff); no decision ever reads another class's
  /// concurrent progress, so reports stay bit-identical for any thread
  /// count. Ignored when `enabled` is false.
  bool async = false;
};

/// Scan progress notifications (ClassScanOptions::progress).
enum class ClassScanEvent {
  kRetired,      // early exit stopped the class before its full budget
  kFinalized,    // estimate assembled (fooling rate evaluated)
  kQuarantined,  // non-finite statistic at a round boundary; class excluded
};

/// Per-class progress callback. Invoked from scan worker threads, possibly
/// concurrently for different classes — implementations must be
/// thread-safe. Must not throw.
using ClassProgressFn =
    std::function<void(std::int64_t target_class, ClassScanEvent event, double mask_l1)>;

/// Thrown out of run()/run_early_exit() when ClassScanOptions::cancel
/// becomes true mid-scan (checked at class and round boundaries). Unwinding
/// discards the partial scan; the scheduler, pool, and any injected caches
/// stay valid for the next scan.
struct ScanCancelled : std::runtime_error {
  ScanCancelled() : std::runtime_error("scan cancelled") {}
};

/// Thrown out of the blocking scan paths when ClassScanOptions::deadline
/// passes mid-scan — checked at the same class/round boundaries as cancel,
/// with the same unwinding contract: the partial scan is discarded and the
/// scheduler, pool, and injected caches stay valid. (The service path does
/// not use this seam; it resolves deadlines at stage boundaries and keeps
/// the partial report — see DetectionService.)
struct ScanTimedOut : std::runtime_error {
  ScanTimedOut() : std::runtime_error("scan deadline exceeded") {}
};

struct ClassScanOptions {
  double mad_threshold = 2.0;
  /// Root seed for the per-class RNG streams (typically the detector seed).
  std::uint64_t base_seed = 0;
  /// Batch size of the shared fooling-rate evaluation batches.
  std::int64_t eval_batch_size = 128;
  /// Pool override for tests/benches; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Prebuilt probe cache to reuse across scans of the same probe set (the
  /// experiment harness shares one per model across detectors). Used only
  /// when its batch size matches eval_batch_size and its sample count
  /// matches the probe (else the scan silently builds its own); it must be
  /// built from the SAME probe set and outlive the scan.
  const ProbeBatchCache* external_probe_cache = nullptr;
  EarlyExitOptions early_exit;
  /// Cooperative cancellation flag (owned by the caller, e.g. a ScanHandle).
  /// Checked at class and round boundaries; when it reads true the scan
  /// throws ScanCancelled. Null disables the checks.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline, checked at the same class/round boundaries as
  /// `cancel`; past it the scan throws ScanTimedOut. Unset disables the
  /// checks (and their steady_clock reads).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Per-class progress notifications; null disables them. Carries no
  /// numeric effect on the report.
  ClassProgressFn progress;
};

class ClassScanScheduler {
 public:
  using ReverseFn =
      std::function<TriggerEstimate(Network&, const Dataset&, const ClassScanJob&)>;
  /// Builds the resumable form of one class's job against its private clone.
  /// The clone reference stays valid for the task's lifetime.
  using RefineTaskFn = std::function<std::unique_ptr<ClassRefineTask>(
      Network&, const Dataset&, const ClassScanJob&)>;

  explicit ClassScanScheduler(ClassScanOptions options) : options_(options) {}

  /// The per-class stream root: hash of the base seed and the class only.
  [[nodiscard]] static std::uint64_t class_stream_seed(std::uint64_t base_seed,
                                                       std::int64_t target_class) noexcept;

  /// Builds the evaluation cache exactly as run() does (same batch size).
  /// The cache holds a transient copy of the probe set — cheap at this
  /// repo's probe scale (<=500 small images), shared across all K jobs
  /// inside run(); sequential single-class callers pay it per call.
  [[nodiscard]] ProbeBatchCache make_cache(const Dataset& probe) const;

  /// Builds the job for one class against an existing cache (the sequential
  /// single-class entry points use this to match the parallel scan exactly).
  [[nodiscard]] ClassScanJob make_job(std::int64_t target_class,
                                      const ProbeBatchCache& cache,
                                      const ScanSharedState* shared = nullptr) const noexcept;

  /// Fans `reverse_one` out over all probe.spec().num_classes classes, each
  /// on a private clone of `model`, then applies the MAD outlier rule to the
  /// mask-L1 statistics in class order.
  [[nodiscard]] DetectionReport run(const std::string& method, Network& model,
                                    const Dataset& probe, const ReverseFn& reverse_one,
                                    const ScanSharedBuilder& shared_builder = nullptr) const;

  /// Round-scheduled variant: constructs all K tasks in parallel (their
  /// ctors run the pre-refinement pipeline), then advances the active set
  /// in rounds of options().early_exit.round_steps, retiring classes the
  /// early-exit rule proves can no longer become low-side outliers, and
  /// finally finalizes every task in class order. `total_steps` is each
  /// class's full refinement budget. With options().early_exit.async set,
  /// dispatches to the async-retirement schedule instead (one rendezvous,
  /// then untethered per-class rounds against a fixed cutoff — see
  /// EarlyExitOptions::async).
  [[nodiscard]] DetectionReport run_early_exit(
      const std::string& method, Network& model, const Dataset& probe,
      std::int64_t total_steps, const RefineTaskFn& make_task,
      const ScanSharedBuilder& shared_builder = nullptr) const;

  [[nodiscard]] const ClassScanOptions& options() const noexcept { return options_; }

  /// The ordered MAD reduction every scan path ends with: reads the
  /// per-class mask-L1 statistics in class order, applies the MAD rule with
  /// options().mad_threshold, and stamps the wall time. Public so StagedScan
  /// (scan_plan.h) finishes a stage-driven scan exactly as the blocking
  /// paths do. Fault-tolerant refinements, all no-ops on a healthy complete
  /// scan: the per-class completion-state vector is normalized (absent ->
  /// all kFinalized), a finalized class whose mask-L1 or fooling rate came
  /// out non-finite is re-graded kNumericallyUnstable, and every
  /// non-kFinalized class is peeled out of the MAD population
  /// (decide_backdoor_peeled) so quarantined or unfinished classes cannot
  /// shift the verdict for the rest.
  [[nodiscard]] DetectionReport finish(DetectionReport report, double wall_seconds) const;

 private:
  [[nodiscard]] DetectionReport run_async_retire(const std::string& method, Network& model,
                                                 const Dataset& probe, std::int64_t total_steps,
                                                 const RefineTaskFn& make_task,
                                                 const ScanSharedBuilder& shared_builder) const;
  void throw_if_interrupted() const;
  void notify_progress(std::int64_t target_class, ClassScanEvent event, double mask_l1) const;

  ClassScanOptions options_;
};

/// The early-exit retirement cutoff: median + margin * 1.4826 * MAD over
/// the FINITE entries of `norms` (quarantined classes feed a NaN and must
/// not shift the statistic; no finite entries -> +infinity, nothing
/// retires). Shared by the blocking barriers, the async rendezvous, and
/// StagedScan::mad_cutoff so their populations can never diverge — and with
/// every entry finite it is exactly the historical inline computation.
[[nodiscard]] double early_exit_cutoff(std::span<const double> norms, double margin);

/// The probe cache a scan actually uses: the injected
/// options.external_probe_cache when its batching AND sample count match
/// this probe (the bit-identity preconditions — a cache built from a
/// different probe set of the same size is still the caller's
/// responsibility), else a scan-local build into `local`. Shared by every
/// scan path (run/run_early_exit/StagedScan) so cache adoption can never
/// diverge between them.
[[nodiscard]] const ProbeBatchCache* select_scan_probe_cache(const ClassScanOptions& options,
                                                             const Dataset& probe,
                                                             ProbeBatchCache& local);

/// Fraction of cached probe samples that `trigger` sends to `target_class`.
/// The shared replacement for the per-detector final_fooling_rate loops.
/// With `arena` set the trigger-applied batch and the forward pass route
/// through apply_into/forward_into on that arena (one Scope per batch), so
/// a warmed arena evaluates with zero Tensor heap allocations — the same
/// contract the refinement step holds (tests/test_arena.cpp). Null falls
/// back to heap-allocating apply/forward; the results are bit-identical
/// either way.
[[nodiscard]] double fooling_rate(Network& model, const ProbeBatchCache& cache,
                                  const MaskedTrigger& trigger, std::int64_t target_class,
                                  TensorArena* arena = nullptr);

/// The TriggerEstimate every masked-trigger detector reports from
/// ClassRefineTask::finalize(): the trigger's decomposition plus its fooling
/// rate over the job's shared probe cache. Tasks pass their step arena so
/// finalize stays on the zero-allocation path (see fooling_rate).
[[nodiscard]] TriggerEstimate finalize_estimate(Network& model, const ClassScanJob& job,
                                                const MaskedTrigger& trigger, float last_loss,
                                                TensorArena* arena = nullptr);

}  // namespace usb
