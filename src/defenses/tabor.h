// TABOR (Guo et al., ICDM 2020): Neural Cleanse plus four regularizers that
// penalize degenerate reversed triggers.
//
//   R1 "overly large":  elastic net on the mask and on the pattern energy
//                       outside the mask, (1-m) * p.
//   R2 "scattered":     total-variation smoothness on the mask.
//   R3 "blocking":      the mask must not cover class evidence —
//                       f(x * (1-m)) should still produce the TRUE label.
//   R4 "overlaying":    the trigger alone should already hit the target —
//                       CE(f(p * m), t).
// R3/R4 each cost an extra forward/backward per step, which is why TABOR is
// the slowest method in the paper's Table 7; that cost structure carries
// over here.
#pragma once

#include "defenses/detector.h"
#include "defenses/neural_cleanse.h"

namespace usb {

struct TaborConfig {
  ReverseOptConfig base;
  float elastic_mask_weight = 1e-3F;
  float elastic_pattern_weight = 1e-4F;
  float tv_weight = 1e-4F;
  float blocking_weight = 0.05F;
  float overlay_weight = 0.05F;
};

class Tabor final : public Detector {
 public:
  explicit Tabor(TaborConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "TABOR"; }
  /// The reified scan (see defenses/scan_plan.h); detect() (inherited) runs
  /// it synchronously, DetectionService runs it with overrides.
  [[nodiscard]] ScanPlan plan() const override;

  /// Seeds exactly as the parallel scan does, so results match detect().
  [[nodiscard]] TriggerEstimate reverse_engineer_class(Network& model, const Dataset& probe,
                                                       std::int64_t target_class);

  /// Scheduler job body: same as above, but against a shared probe cache.
  [[nodiscard]] TriggerEstimate reverse_engineer_class(Network& model, const Dataset& probe,
                                                       const ClassScanJob& job);

 private:
  [[nodiscard]] ClassScanScheduler make_scheduler() const;

  TaborConfig config_;
};

}  // namespace usb
