// Optimizable (trigger, mask) pair under the blending model
//   x' = x * (1 - mask) + pattern * mask
// shared by Neural Cleanse, TABOR, and USB's Alg. 2 refinement.
//
// Both variables live in logit space (sigmoid reparameterization keeps them
// in [0,1] without projection); the mask is spatial (H,W) and broadcasts
// over channels, matching NC's formulation. Adam(beta=0.5,0.9) drives the
// updates, as specified in the paper's hyperparameters.
//
// Hot-path design: the sigmoid'd mask/pattern values are computed once per
// Adam step into recycled members (mask_values()/pattern_values()) and every
// gradient accumulator reuses member scratch, so a steady-state refinement
// step performs zero heap allocations; the value-returning mask()/pattern()/
// apply() remain as copying adapters. The per-element loops run on the
// dispatched elementwise kernels (tensor/elementwise.h) and are
// bit-identical to the historical scalar code.
#pragma once

#include "nn/optimizer.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace usb {

class MaskedTrigger {
 public:
  /// Random initialization (the NC/TABOR starting point).
  MaskedTrigger(std::int64_t channels, std::int64_t size, Rng& rng, float lr);

  /// Initialization from a given mask/pattern in [0,1] (USB starts from the
  /// targeted UAP decomposition instead of noise).
  MaskedTrigger(Tensor initial_mask, Tensor initial_pattern, float lr);

  [[nodiscard]] std::int64_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::int64_t size() const noexcept { return size_; }

  /// Current mask (H,W) in [0,1] (copy).
  [[nodiscard]] Tensor mask() const;
  /// Current pattern (C,H,W) in [0,1] (copy).
  [[nodiscard]] Tensor pattern() const;

  /// Current mask/pattern values in recycled internal storage; valid until
  /// the next step(). The allocation-free counterparts of mask()/pattern().
  [[nodiscard]] const Tensor& mask_values() const;
  [[nodiscard]] const Tensor& pattern_values() const;

  [[nodiscard]] double mask_l1() const;

  /// Blends the trigger into a batch: x' = x(1-m) + p*m.
  [[nodiscard]] Tensor apply(const Tensor& x) const;
  /// Arena-backed apply; the result lives until the arena resets.
  [[nodiscard]] const Tensor& apply_into(const Tensor& x, TensorArena& arena) const;

  /// Clears accumulated gradients (call once per optimization step).
  void zero_grad();

  /// Chain rule from dL/dx' (same shape as the batch x) into the logit
  /// gradients. `x` must be the batch passed to apply().
  void accumulate_from_output_grad(const Tensor& dxprime, const Tensor& x);

  /// d(weight * |mask|_1)/dtheta_m.
  void add_mask_l1_grad(float weight);

  /// d(weight * elastic(mask))/dtheta_m with elastic = |m|_1 + |m|_2^2.
  void add_mask_elastic_grad(float weight);

  /// d(weight * TV(mask))/dtheta_m, anisotropic total variation.
  void add_mask_tv_grad(float weight);

  /// Adds an arbitrary gradient on the mask values (chained through the
  /// sigmoid). Used by TABOR's pattern-dependent regularizers.
  void add_mask_value_grad(const Tensor& dmask);
  /// Same for the pattern values.
  void add_pattern_value_grad(const Tensor& dpattern);

  /// One Adam step on both logit tensors.
  void step();

 private:
  void apply_core(const Tensor& x, Tensor& out) const;
  void refresh_values() const;

  std::int64_t channels_;
  std::int64_t size_;
  Tensor theta_mask_;     // (H,W) logits
  Tensor theta_pattern_;  // (C,H,W) logits
  Tensor grad_mask_;
  Tensor grad_pattern_;
  AdamState adam_mask_;
  AdamState adam_pattern_;

  // sigmoid(theta) caches, recomputed lazily after each step().
  mutable Tensor mask_values_;
  mutable Tensor pattern_values_;
  mutable bool values_fresh_ = false;

  // Gradient-accumulation scratch, recycled across steps.
  Tensor dmask_scratch_;
  Tensor dpattern_scratch_;
  Tensor tv_scratch_;
};

}  // namespace usb
