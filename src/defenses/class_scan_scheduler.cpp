#include "defenses/class_scan_scheduler.h"

#include <algorithm>
#include <cmath>

#include "defenses/masked_trigger.h"
#include "nn/checkpoint.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace usb {
namespace {

/// The probe cache a scan actually uses: the injected one when its batching
/// AND sample count match this probe (the bit-identity preconditions — a
/// cache built from a different probe set of the same size is still the
/// caller's responsibility), else a scan-local build.
const ProbeBatchCache* select_probe_cache(const ClassScanOptions& options, const Dataset& probe,
                                          ProbeBatchCache& local) {
  if (options.external_probe_cache != nullptr &&
      options.external_probe_cache->batch_size() == options.eval_batch_size &&
      options.external_probe_cache->total_samples() == probe.size()) {
    return options.external_probe_cache;
  }
  local = ProbeBatchCache(probe, options.eval_batch_size);
  return &local;
}

}  // namespace

std::uint64_t ClassScanScheduler::class_stream_seed(std::uint64_t base_seed,
                                                    std::int64_t target_class) noexcept {
  return hash_combine(base_seed, 0xc1a55'57e4ULL, static_cast<std::uint64_t>(target_class));
}

ProbeBatchCache ClassScanScheduler::make_cache(const Dataset& probe) const {
  return ProbeBatchCache(probe, options_.eval_batch_size);
}

ClassScanJob ClassScanScheduler::make_job(std::int64_t target_class,
                                          const ProbeBatchCache& cache,
                                          const ScanSharedState* shared) const noexcept {
  ClassScanJob job;
  job.target_class = target_class;
  job.rng_seed = class_stream_seed(options_.base_seed, target_class);
  job.probe_cache = &cache;
  job.shared = shared;
  return job;
}

DetectionReport ClassScanScheduler::finish(DetectionReport report) const {
  // Ordered reduction: norms enter the MAD stage in class order.
  std::vector<double> norms(report.per_class.size());
  for (std::size_t t = 0; t < norms.size(); ++t) norms[t] = report.per_class[t].mask_l1;
  report.verdict = decide_backdoor(norms, options_.mad_threshold);
  return report;
}

DetectionReport ClassScanScheduler::run(const std::string& method, Network& model,
                                        const Dataset& probe, const ReverseFn& reverse_one,
                                        const ScanSharedBuilder& shared_builder) const {
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.resize(static_cast<std::size_t>(num_classes));

  // Materialized (or adopted) once, shared read-only by all K jobs.
  ProbeBatchCache local_cache;
  const ProbeBatchCache* eval_cache = select_probe_cache(options_, probe, local_cache);

  // Detector-specific shared prefix, built sequentially on the reference
  // model before any clone exists.
  std::shared_ptr<const ScanSharedState> shared;
  if (shared_builder) shared = shared_builder(model, probe);

  // One model clone per class. The inner tensor kernels submit fixed,
  // size-derived tile lists to THIS pool via parallel_for_deterministic:
  // when the fan-out under-subscribes it (K < pool size), idle workers soak
  // up GEMM tiles; when it is saturated, tiles run inline on the submitting
  // worker. Each job writes only its own slot, its stream root depends only
  // on (base_seed, class), and the tile decomposition depends only on
  // operand sizes — never on the schedule — so the estimates are
  // bit-identical for any pool size.
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      Network clone = clone_network(model);
      const Timer timer;
      report.per_class[static_cast<std::size_t>(t)] =
          reverse_one(clone, probe, make_job(t, *eval_cache, shared.get()));
      report.per_class_seconds[static_cast<std::size_t>(t)] = timer.seconds();
    }
  });

  return finish(std::move(report));
}

DetectionReport ClassScanScheduler::run_early_exit(const std::string& method, Network& model,
                                                   const Dataset& probe,
                                                   std::int64_t total_steps,
                                                   const RefineTaskFn& make_task,
                                                   const ScanSharedBuilder& shared_builder) const {
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.assign(static_cast<std::size_t>(num_classes), 0.0);

  ProbeBatchCache local_cache;
  const ProbeBatchCache* eval_cache = select_probe_cache(options_, probe, local_cache);
  std::shared_ptr<const ScanSharedState> shared;
  if (shared_builder) shared = shared_builder(model, probe);

  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();

  // Phase 1 — parallel task construction: everything before the refinement
  // loop (for USB that is all of Alg. 1) runs here, one private clone per
  // class. Clones live alongside the tasks so run_steps/finalize can keep
  // borrowing them.
  std::vector<std::unique_ptr<Network>> clones(static_cast<std::size_t>(num_classes));
  std::vector<std::unique_ptr<ClassRefineTask>> tasks(static_cast<std::size_t>(num_classes));
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      const auto slot = static_cast<std::size_t>(t);
      clones[slot] = std::make_unique<Network>(clone_network(model));
      // Timer starts after the clone, matching run(): per_class_seconds
      // stays comparable between the two scan paths.
      const Timer timer;
      tasks[slot] = make_task(*clones[slot], probe, make_job(t, *eval_cache, shared.get()));
      report.per_class_seconds[slot] += timer.seconds();
    }
  });

  // Phase 2 — round-scheduled refinement over the shrinking active set.
  // Every decision is taken at a barrier from statistics that are
  // bit-deterministic for any thread count, so the schedule never leaks
  // into the results.
  const std::int64_t round_steps = options_.early_exit.round_steps > 0
                                       ? options_.early_exit.round_steps
                                       : std::max<std::int64_t>(1, (total_steps + 5) / 6);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(num_classes),
                                      std::max<std::int64_t>(0, total_steps));
  std::vector<std::int64_t> active;
  for (std::int64_t t = 0; t < num_classes; ++t) {
    if (remaining[static_cast<std::size_t>(t)] > 0) active.push_back(t);
  }
  std::int64_t rounds_done = 0;
  while (!active.empty()) {
    pool.parallel_for(static_cast<std::int64_t>(active.size()),
                      [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          const auto slot = static_cast<std::size_t>(active[static_cast<std::size_t>(i)]);
                          const Timer timer;
                          const std::int64_t steps = std::min(round_steps, remaining[slot]);
                          const std::int64_t ran = tasks[slot]->run_steps(steps);
                          // Fewer than requested means the loop's own exit
                          // condition fired; the class is done either way.
                          remaining[slot] = ran < steps ? 0 : remaining[slot] - ran;
                          report.per_class_seconds[slot] += timer.seconds();
                        }
                      });
    ++rounds_done;

    std::vector<std::int64_t> next;
    for (const std::int64_t t : active) {
      if (remaining[static_cast<std::size_t>(t)] > 0) next.push_back(t);
    }
    if (options_.early_exit.enabled && !next.empty() &&
        rounds_done >= options_.early_exit.min_rounds) {
      // Current statistics of ALL classes (stopped ones hold their frozen
      // value), in class order — the same population the final MAD rule
      // sees.
      std::vector<double> norms(static_cast<std::size_t>(num_classes));
      for (std::int64_t t = 0; t < num_classes; ++t) {
        norms[static_cast<std::size_t>(t)] = tasks[static_cast<std::size_t>(t)]->current_mask_l1();
      }
      const double med = median(norms);
      std::vector<double> deviations(norms.size());
      for (std::size_t i = 0; i < norms.size(); ++i) deviations[i] = std::abs(norms[i] - med);
      const double cutoff = med + options_.early_exit.margin * 1.4826 * median(deviations);
      // Heuristic retirement: a statistic above the cutoff sits above the
      // running median by the MAD-outlier margin, and the decision rule
      // only flags LOW-side outliers — so we bet that a class this far
      // above the pack will not out-descend it if refined further, stop
      // it, and hand its worker slot to the remaining candidates. This is
      // a budget/accuracy trade, not a proof: mask-L1 is not monotone
      // under refinement, and a slow-converging backdoored class retired
      // at an early barrier is a possible false negative. margin and
      // min_rounds tune that risk (tests pin the verdict on a seeded
      // BadNet victim), and disabling early exit restores the exact scan.
      std::vector<std::int64_t> survivors;
      for (const std::int64_t t : next) {
        if (norms[static_cast<std::size_t>(t)] <= cutoff) survivors.push_back(t);
      }
      next = std::move(survivors);
    }
    active = std::move(next);
  }

  // Phase 3 — parallel finalize, slotted in class order.
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      const auto slot = static_cast<std::size_t>(t);
      const Timer timer;
      report.per_class[slot] = tasks[slot]->finalize();
      report.per_class_seconds[slot] += timer.seconds();
    }
  });

  return finish(std::move(report));
}

TriggerEstimate finalize_estimate(Network& model, const ClassScanJob& job,
                                  const MaskedTrigger& trigger, float last_loss) {
  TriggerEstimate estimate;
  estimate.target_class = job.target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = fooling_rate(model, *job.probe_cache, trigger, job.target_class);
  return estimate;
}

double fooling_rate(Network& model, const ProbeBatchCache& cache, const MaskedTrigger& trigger,
                    std::int64_t target_class) {
  std::int64_t hits = 0;
  for (const Batch& batch : cache.batches()) {
    const Tensor logits = model.forward(trigger.apply(batch.images));
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
    }
  }
  return cache.total_samples() == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(cache.total_samples());
}

}  // namespace usb
