#include "defenses/class_scan_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "defenses/masked_trigger.h"
#include "nn/checkpoint.h"
#include "tensor/arena.h"
#include "tensor/tensor_ops.h"
#include "utils/fault_injection.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace usb {

double early_exit_cutoff(std::span<const double> norms, double margin) {
  std::vector<double> finite;
  finite.reserve(norms.size());
  for (const double norm : norms) {
    if (std::isfinite(norm)) finite.push_back(norm);
  }
  if (finite.empty()) return std::numeric_limits<double>::infinity();
  const double med = median(finite);
  std::vector<double> deviations(finite.size());
  for (std::size_t i = 0; i < finite.size(); ++i) deviations[i] = std::abs(finite[i] - med);
  return med + margin * 1.4826 * median(deviations);
}

const ProbeBatchCache* select_scan_probe_cache(const ClassScanOptions& options,
                                               const Dataset& probe, ProbeBatchCache& local) {
  if (options.external_probe_cache != nullptr &&
      options.external_probe_cache->batch_size() == options.eval_batch_size &&
      options.external_probe_cache->total_samples() == probe.size()) {
    return options.external_probe_cache;
  }
  local = ProbeBatchCache(probe, options.eval_batch_size);
  return &local;
}

std::uint64_t ClassScanScheduler::class_stream_seed(std::uint64_t base_seed,
                                                    std::int64_t target_class) noexcept {
  return hash_combine(base_seed, 0xc1a55'57e4ULL, static_cast<std::uint64_t>(target_class));
}

ProbeBatchCache ClassScanScheduler::make_cache(const Dataset& probe) const {
  return ProbeBatchCache(probe, options_.eval_batch_size);
}

ClassScanJob ClassScanScheduler::make_job(std::int64_t target_class,
                                          const ProbeBatchCache& cache,
                                          const ScanSharedState* shared) const noexcept {
  ClassScanJob job;
  job.target_class = target_class;
  job.rng_seed = class_stream_seed(options_.base_seed, target_class);
  job.probe_cache = &cache;
  job.shared = shared;
  return job;
}

DetectionReport ClassScanScheduler::finish(DetectionReport report, double wall_seconds) const {
  const std::size_t num_classes = report.per_class.size();
  // Normalize the completion-state vector (paths that predate it, like the
  // monolithic run(), leave it empty = every class finalized), then
  // re-grade finalized classes whose statistics diverged: a non-finite
  // mask-L1 or fooling rate is the quarantine condition everywhere.
  if (report.per_class_state.size() != num_classes) {
    report.per_class_state.assign(num_classes, ClassScanState::kFinalized);
  }
  // Ordered reduction: norms enter the MAD stage in class order. A class
  // that did not finalize feeds a NaN, which decide_backdoor_peeled peels
  // out of the median/MAD population; with every class finalized and finite
  // this is decide_backdoor verbatim.
  std::vector<double> norms(num_classes);
  for (std::size_t t = 0; t < num_classes; ++t) {
    if (report.per_class_state[t] == ClassScanState::kFinalized &&
        !(std::isfinite(report.per_class[t].mask_l1) &&
          std::isfinite(report.per_class[t].fooling_rate))) {
      report.per_class_state[t] = ClassScanState::kNumericallyUnstable;
    }
    norms[t] = report.per_class_state[t] == ClassScanState::kFinalized
                   ? report.per_class[t].mask_l1
                   : std::numeric_limits<double>::quiet_NaN();
  }
  report.verdict = decide_backdoor_peeled(norms, options_.mad_threshold);
  report.wall_seconds = wall_seconds;
  return report;
}

void ClassScanScheduler::throw_if_interrupted() const {
  if (options_.cancel != nullptr && options_.cancel->load(std::memory_order_relaxed)) {
    throw ScanCancelled();
  }
  if (options_.deadline.has_value() && std::chrono::steady_clock::now() >= *options_.deadline) {
    throw ScanTimedOut();
  }
}

void ClassScanScheduler::notify_progress(std::int64_t target_class, ClassScanEvent event,
                                         double mask_l1) const {
  if (options_.progress) options_.progress(target_class, event, mask_l1);
}

DetectionReport ClassScanScheduler::run(const std::string& method, Network& model,
                                        const Dataset& probe, const ReverseFn& reverse_one,
                                        const ScanSharedBuilder& shared_builder) const {
  const Timer wall;
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.resize(static_cast<std::size_t>(num_classes));

  // Materialized (or adopted) once, shared read-only by all K jobs.
  ProbeBatchCache local_cache;
  const ProbeBatchCache* eval_cache = select_scan_probe_cache(options_, probe, local_cache);

  // Detector-specific shared prefix, built sequentially on the reference
  // model before any clone exists.
  std::shared_ptr<const ScanSharedState> shared;
  if (shared_builder) shared = shared_builder(model, probe);

  // One model clone per class. The inner tensor kernels submit fixed,
  // size-derived tile lists to THIS pool via parallel_for_deterministic:
  // when the fan-out under-subscribes it (K < pool size), idle workers soak
  // up GEMM tiles; when it is saturated, tiles run inline on the submitting
  // worker. Each job writes only its own slot, its stream root depends only
  // on (base_seed, class), and the tile decomposition depends only on
  // operand sizes — never on the schedule — so the estimates are
  // bit-identical for any pool size.
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      Network clone = clone_network(model);
      const Timer timer;
      report.per_class[static_cast<std::size_t>(t)] =
          reverse_one(clone, probe, make_job(t, *eval_cache, shared.get()));
      report.per_class_seconds[static_cast<std::size_t>(t)] = timer.seconds();
      notify_progress(t, ClassScanEvent::kFinalized,
                      report.per_class[static_cast<std::size_t>(t)].mask_l1);
    }
  });

  return finish(std::move(report), wall.seconds());
}

DetectionReport ClassScanScheduler::run_early_exit(const std::string& method, Network& model,
                                                   const Dataset& probe,
                                                   std::int64_t total_steps,
                                                   const RefineTaskFn& make_task,
                                                   const ScanSharedBuilder& shared_builder) const {
  if (options_.early_exit.async) {
    return run_async_retire(method, model, probe, total_steps, make_task, shared_builder);
  }
  const Timer wall;
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.assign(static_cast<std::size_t>(num_classes), 0.0);
  report.per_class_state.assign(static_cast<std::size_t>(num_classes),
                                ClassScanState::kFinalized);

  ProbeBatchCache local_cache;
  const ProbeBatchCache* eval_cache = select_scan_probe_cache(options_, probe, local_cache);
  std::shared_ptr<const ScanSharedState> shared;
  if (shared_builder) shared = shared_builder(model, probe);

  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();

  // Phase 1 — parallel task construction: everything before the refinement
  // loop (for USB that is all of Alg. 1) runs here, one private clone per
  // class. Clones live alongside the tasks so run_steps/finalize can keep
  // borrowing them.
  std::vector<std::unique_ptr<Network>> clones(static_cast<std::size_t>(num_classes));
  std::vector<std::unique_ptr<ClassRefineTask>> tasks(static_cast<std::size_t>(num_classes));
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      const auto slot = static_cast<std::size_t>(t);
      clones[slot] = std::make_unique<Network>(clone_network(model));
      // Timer starts after the clone, matching run(): per_class_seconds
      // stays comparable between the two scan paths.
      const Timer timer;
      tasks[slot] = make_task(*clones[slot], probe, make_job(t, *eval_cache, shared.get()));
      report.per_class_seconds[slot] += timer.seconds();
    }
  });

  // Phase 2 — round-scheduled refinement over the shrinking active set.
  // Every decision is taken at a barrier from statistics that are
  // bit-deterministic for any thread count, so the schedule never leaks
  // into the results.
  const std::int64_t round_steps = options_.early_exit.round_steps > 0
                                       ? options_.early_exit.round_steps
                                       : std::max<std::int64_t>(1, (total_steps + 5) / 6);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(num_classes),
                                      std::max<std::int64_t>(0, total_steps));
  std::vector<std::int64_t> active;
  for (std::int64_t t = 0; t < num_classes; ++t) {
    if (remaining[static_cast<std::size_t>(t)] > 0) active.push_back(t);
  }
  std::int64_t rounds_done = 0;
  while (!active.empty()) {
    throw_if_interrupted();
    pool.parallel_for(static_cast<std::int64_t>(active.size()),
                      [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          const std::int64_t t = active[static_cast<std::size_t>(i)];
                          const auto slot = static_cast<std::size_t>(t);
                          const Timer timer;
                          const std::int64_t steps = std::min(round_steps, remaining[slot]);
                          const std::int64_t ran = tasks[slot]->run_steps(steps);
                          // Fewer than requested means the loop's own exit
                          // condition fired; the class is done either way.
                          remaining[slot] = ran < steps ? 0 : remaining[slot] - ran;
                          report.per_class_seconds[slot] += timer.seconds();
                          // Numerical quarantine at the round boundary: a
                          // diverged statistic stops the class here and
                          // keeps it out of every later cutoff population.
                          double stat = tasks[slot]->current_mask_l1();
                          if (USB_FAULT_NAN("scan.round_stat")) {
                            stat = std::numeric_limits<double>::quiet_NaN();
                          }
                          if (!std::isfinite(stat)) {
                            report.per_class_state[slot] = ClassScanState::kNumericallyUnstable;
                            remaining[slot] = 0;
                            notify_progress(t, ClassScanEvent::kQuarantined, stat);
                          }
                        }
                      });
    ++rounds_done;

    std::vector<std::int64_t> next;
    for (const std::int64_t t : active) {
      if (remaining[static_cast<std::size_t>(t)] > 0) next.push_back(t);
    }
    if (options_.early_exit.enabled && !next.empty() &&
        rounds_done >= options_.early_exit.min_rounds) {
      // Current statistics of ALL classes (stopped ones hold their frozen
      // value), in class order — the same population the final MAD rule
      // sees. Quarantined classes feed a NaN so early_exit_cutoff peels
      // them, exactly as decide_backdoor_peeled will at the reduction.
      std::vector<double> norms(static_cast<std::size_t>(num_classes));
      for (std::int64_t t = 0; t < num_classes; ++t) {
        const auto slot = static_cast<std::size_t>(t);
        norms[slot] = report.per_class_state[slot] == ClassScanState::kNumericallyUnstable
                          ? std::numeric_limits<double>::quiet_NaN()
                          : tasks[slot]->current_mask_l1();
      }
      const double cutoff = early_exit_cutoff(norms, options_.early_exit.margin);
      // Heuristic retirement: a statistic above the cutoff sits above the
      // running median by the MAD-outlier margin, and the decision rule
      // only flags LOW-side outliers — so we bet that a class this far
      // above the pack will not out-descend it if refined further, stop
      // it, and hand its worker slot to the remaining candidates. This is
      // a budget/accuracy trade, not a proof: mask-L1 is not monotone
      // under refinement, and a slow-converging backdoored class retired
      // at an early barrier is a possible false negative. margin and
      // min_rounds tune that risk (tests pin the verdict on a seeded
      // BadNet victim), and disabling early exit restores the exact scan.
      std::vector<std::int64_t> survivors;
      for (const std::int64_t t : next) {
        if (norms[static_cast<std::size_t>(t)] <= cutoff) {
          survivors.push_back(t);
        } else {
          notify_progress(t, ClassScanEvent::kRetired, norms[static_cast<std::size_t>(t)]);
        }
      }
      next = std::move(survivors);
    }
    active = std::move(next);
  }

  // Phase 3 — parallel finalize, slotted in class order. Quarantined
  // classes skip the fooling-rate evaluation (a forward pass over a
  // non-finite trigger buys nothing) and report a NaN statistic; their
  // slot is excluded from the verdict either way.
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      const auto slot = static_cast<std::size_t>(t);
      if (report.per_class_state[slot] == ClassScanState::kNumericallyUnstable) {
        report.per_class[slot].target_class = t;
        report.per_class[slot].mask_l1 = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      const Timer timer;
      report.per_class[slot] = tasks[slot]->finalize();
      report.per_class_seconds[slot] += timer.seconds();
      notify_progress(t, ClassScanEvent::kFinalized, report.per_class[slot].mask_l1);
    }
  });

  return finish(std::move(report), wall.seconds());
}

DetectionReport ClassScanScheduler::run_async_retire(
    const std::string& method, Network& model, const Dataset& probe, std::int64_t total_steps,
    const RefineTaskFn& make_task, const ScanSharedBuilder& shared_builder) const {
  const Timer wall;
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.assign(static_cast<std::size_t>(num_classes), 0.0);
  report.per_class_state.assign(static_cast<std::size_t>(num_classes),
                                ClassScanState::kFinalized);

  ProbeBatchCache local_cache;
  const ProbeBatchCache* eval_cache = select_scan_probe_cache(options_, probe, local_cache);
  std::shared_ptr<const ScanSharedState> shared;
  if (shared_builder) shared = shared_builder(model, probe);

  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();

  // Phase 1 — parallel task construction, exactly as run_early_exit.
  std::vector<std::unique_ptr<Network>> clones(static_cast<std::size_t>(num_classes));
  std::vector<std::unique_ptr<ClassRefineTask>> tasks(static_cast<std::size_t>(num_classes));
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      const auto slot = static_cast<std::size_t>(t);
      clones[slot] = std::make_unique<Network>(clone_network(model));
      const Timer timer;
      tasks[slot] = make_task(*clones[slot], probe, make_job(t, *eval_cache, shared.get()));
      report.per_class_seconds[slot] += timer.seconds();
    }
  });

  const std::int64_t round_steps = options_.early_exit.round_steps > 0
                                       ? options_.early_exit.round_steps
                                       : std::max<std::int64_t>(1, (total_steps + 5) / 6);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(num_classes),
                                      std::max<std::int64_t>(0, total_steps));

  // Phase 2a — the single rendezvous: every class advances min_rounds
  // rounds (or to exhaustion), so the cutoff below is computed at one
  // deterministic logical point of every trajectory.
  const std::int64_t rendezvous_steps =
      round_steps * std::max<std::int64_t>(1, options_.early_exit.min_rounds);
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      const auto slot = static_cast<std::size_t>(t);
      const Timer timer;
      const std::int64_t steps = std::min(rendezvous_steps, remaining[slot]);
      const std::int64_t ran = tasks[slot]->run_steps(steps);
      remaining[slot] = ran < steps ? 0 : remaining[slot] - ran;
      report.per_class_seconds[slot] += timer.seconds();
      double stat = tasks[slot]->current_mask_l1();
      if (USB_FAULT_NAN("scan.round_stat")) stat = std::numeric_limits<double>::quiet_NaN();
      if (!std::isfinite(stat)) {
        report.per_class_state[slot] = ClassScanState::kNumericallyUnstable;
        remaining[slot] = 0;
        notify_progress(t, ClassScanEvent::kQuarantined, stat);
      }
    }
  });

  // The cutoff is fixed here, from the class-ordered statistics — the only
  // cross-class data flow of the whole schedule. Every later decision is a
  // pure function of (a class's own deterministic trajectory, this
  // constant), which is the entire determinism argument: nothing a worker
  // does from now on can influence another class's result.
  double cutoff = std::numeric_limits<double>::infinity();
  if (options_.early_exit.enabled) {
    std::vector<double> norms(static_cast<std::size_t>(num_classes));
    for (std::int64_t t = 0; t < num_classes; ++t) {
      const auto slot = static_cast<std::size_t>(t);
      norms[slot] = report.per_class_state[slot] == ClassScanState::kNumericallyUnstable
                        ? std::numeric_limits<double>::quiet_NaN()
                        : tasks[slot]->current_mask_l1();
    }
    cutoff = early_exit_cutoff(norms, options_.early_exit.margin);
  }

  // Phase 2b — untethered refinement: still-active classes are claimed
  // dynamically (parallel_for_deterministic), each running its remaining
  // rounds back-to-back and retiring the moment its own mask-L1 crosses the
  // fixed cutoff. No further barriers: a retired or finished class's worker
  // immediately claims the next unstarted class.
  std::vector<std::int64_t> active;
  for (std::int64_t t = 0; t < num_classes; ++t) {
    if (remaining[static_cast<std::size_t>(t)] > 0) active.push_back(t);
  }
  pool.parallel_for_deterministic(
      static_cast<std::int64_t>(active.size()), [&](std::int64_t index) {
        const std::int64_t t = active[static_cast<std::size_t>(index)];
        const auto slot = static_cast<std::size_t>(t);
        const Timer timer;
        while (remaining[slot] > 0) {
          throw_if_interrupted();
          // Cutoff first: a class already above it (including right at the
          // rendezvous — the common case for obvious non-targets) retires
          // without spending another round.
          if (tasks[slot]->current_mask_l1() > cutoff) {
            notify_progress(t, ClassScanEvent::kRetired, tasks[slot]->current_mask_l1());
            break;
          }
          const std::int64_t steps = std::min(round_steps, remaining[slot]);
          const std::int64_t ran = tasks[slot]->run_steps(steps);
          remaining[slot] = ran < steps ? 0 : remaining[slot] - ran;
          double stat = tasks[slot]->current_mask_l1();
          if (USB_FAULT_NAN("scan.round_stat")) stat = std::numeric_limits<double>::quiet_NaN();
          if (!std::isfinite(stat)) {
            report.per_class_state[slot] = ClassScanState::kNumericallyUnstable;
            remaining[slot] = 0;
            notify_progress(t, ClassScanEvent::kQuarantined, stat);
          }
        }
        report.per_class_seconds[slot] += timer.seconds();
      });

  // Phase 3 — parallel finalize, slotted in class order. Quarantined
  // classes skip the fooling-rate evaluation (a forward pass over a
  // non-finite trigger buys nothing) and report a NaN statistic; their
  // slot is excluded from the verdict either way.
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      throw_if_interrupted();
      const auto slot = static_cast<std::size_t>(t);
      if (report.per_class_state[slot] == ClassScanState::kNumericallyUnstable) {
        report.per_class[slot].target_class = t;
        report.per_class[slot].mask_l1 = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      const Timer timer;
      report.per_class[slot] = tasks[slot]->finalize();
      report.per_class_seconds[slot] += timer.seconds();
      notify_progress(t, ClassScanEvent::kFinalized, report.per_class[slot].mask_l1);
    }
  });

  return finish(std::move(report), wall.seconds());
}

TriggerEstimate finalize_estimate(Network& model, const ClassScanJob& job,
                                  const MaskedTrigger& trigger, float last_loss,
                                  TensorArena* arena) {
  TriggerEstimate estimate;
  estimate.target_class = job.target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = fooling_rate(model, *job.probe_cache, trigger, job.target_class, arena);
  return estimate;
}

double fooling_rate(Network& model, const ProbeBatchCache& cache, const MaskedTrigger& trigger,
                    std::int64_t target_class, TensorArena* arena) {
  std::int64_t hits = 0;
  for (const Batch& batch : cache.batches()) {
    // Both branches compute the same blend and forward pass; the arena
    // branch merely recycles the storage (eval batches are usually a
    // different size than refine batches, so the first evaluation on a
    // fresh arena still grows slots — every later one reuses them).
    const auto count_batch = [&](const Tensor& logits) {
      for (const std::int64_t pred : argmax_rows(logits)) {
        if (pred == target_class) ++hits;
      }
    };
    if (arena != nullptr) {
      const TensorArena::Scope scope(*arena);
      count_batch(model.forward_into(trigger.apply_into(batch.images, *arena), *arena));
    } else {
      count_batch(model.forward(trigger.apply(batch.images)));
    }
  }
  return cache.total_samples() == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(cache.total_samples());
}

}  // namespace usb
