#include "defenses/class_scan_scheduler.h"

#include "defenses/masked_trigger.h"
#include "nn/checkpoint.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace usb {

ProbeBatchCache::ProbeBatchCache(const Dataset& probe, std::int64_t batch_size)
    : batch_size_(batch_size) {
  // Sequential, unshuffled: the exact batching of the historical evaluation
  // loaders (DataLoader(probe, 128, shuffle=false, seed=0)).
  DataLoader loader(probe, batch_size, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  while (loader.next(batch)) {
    total_samples_ += batch.images.numel() == 0 ? 0 : batch.images.dim(0);
    batches_.push_back(batch);
  }
}

std::uint64_t ClassScanScheduler::class_stream_seed(std::uint64_t base_seed,
                                                    std::int64_t target_class) noexcept {
  return hash_combine(base_seed, 0xc1a55'57e4ULL, static_cast<std::uint64_t>(target_class));
}

ProbeBatchCache ClassScanScheduler::make_cache(const Dataset& probe) const {
  return ProbeBatchCache(probe, options_.eval_batch_size);
}

ClassScanJob ClassScanScheduler::make_job(std::int64_t target_class,
                                          const ProbeBatchCache& cache) const noexcept {
  ClassScanJob job;
  job.target_class = target_class;
  job.rng_seed = class_stream_seed(options_.base_seed, target_class);
  job.probe_cache = &cache;
  return job;
}

DetectionReport ClassScanScheduler::run(const std::string& method, Network& model,
                                        const Dataset& probe,
                                        const ReverseFn& reverse_one) const {
  const std::int64_t num_classes = probe.spec().num_classes;
  DetectionReport report;
  report.method = method;
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  report.per_class_seconds.resize(static_cast<std::size_t>(num_classes));

  // Materialized once, shared read-only by all K jobs.
  const ProbeBatchCache eval_cache = make_cache(probe);

  // One model clone per class. The inner tensor kernels submit fixed,
  // size-derived tile lists to THIS pool via parallel_for_deterministic:
  // when the fan-out under-subscribes it (K < pool size), idle workers soak
  // up GEMM tiles; when it is saturated, tiles run inline on the submitting
  // worker. Each job writes only its own slot, its stream root depends only
  // on (base_seed, class), and the tile decomposition depends only on
  // operand sizes — never on the schedule — so the estimates are
  // bit-identical for any pool size.
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();
  pool.parallel_for(num_classes, [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
    for (std::int64_t t = begin; t < end; ++t) {
      Network clone = clone_network(model);
      const Timer timer;
      report.per_class[static_cast<std::size_t>(t)] =
          reverse_one(clone, probe, make_job(t, eval_cache));
      report.per_class_seconds[static_cast<std::size_t>(t)] = timer.seconds();
    }
  });

  // Ordered reduction: norms enter the MAD stage in class order.
  std::vector<double> norms(static_cast<std::size_t>(num_classes));
  for (std::size_t t = 0; t < norms.size(); ++t) norms[t] = report.per_class[t].mask_l1;
  report.verdict = decide_backdoor(norms, options_.mad_threshold);
  return report;
}

double fooling_rate(Network& model, const ProbeBatchCache& cache, const MaskedTrigger& trigger,
                    std::int64_t target_class) {
  std::int64_t hits = 0;
  for (const Batch& batch : cache.batches()) {
    const Tensor logits = model.forward(trigger.apply(batch.images));
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
    }
  }
  return cache.total_samples() == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(cache.total_samples());
}

}  // namespace usb
