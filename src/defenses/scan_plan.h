// A detector's scan, reified.
//
// Detector::plan() packages everything ClassScanScheduler needs to execute
// the K-class fan-out — the per-class resumable-task factory, the optional
// shared-prefix builder, and the scheduler options derived from the
// detector's config — without binding a model, a probe set, a pool, or a
// schedule. Two consumers run plans:
//
//  - Detector::detect(): run_scan_plan(plan(), model, probe) on the calling
//    thread — the legacy blocking API, byte-for-byte the historical
//    per-detector detect() bodies;
//  - DetectionService: copies the plan, overrides options (service pool,
//    ProbeStore-shared probe cache, cancellation flag, progress callback,
//    request-level early-exit / async-retirement settings) and runs it on an
//    executor thread.
//
// The plan's closures borrow the detector that built them; the detector
// must outlive every run of the plan.
#pragma once

#include "defenses/class_scan_scheduler.h"
#include "defenses/detector.h"

namespace usb {

struct ScanPlan {
  std::string method;
  ClassScanOptions options;
  /// Full refinement budget per class (total run_steps of one task).
  std::int64_t total_steps = 0;
  ClassScanScheduler::RefineTaskFn make_task;
  ScanSharedBuilder shared_builder;  // null when the detector shares nothing
};

/// Runs a plan to completion on the calling thread — the single scan
/// execution path behind both detect() and the service. Early exit disabled
/// takes the monolithic run() path (each class's task constructed, advanced
/// through its whole budget in one slice, finalized — exactly the historical
/// reverse_engineer_class body); enabled takes run_early_exit(), which
/// itself dispatches to the async-retirement schedule when
/// options.early_exit.async is set.
[[nodiscard]] DetectionReport run_scan_plan(const ScanPlan& plan, Network& model,
                                            const Dataset& probe);

}  // namespace usb
