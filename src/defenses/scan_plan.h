// A detector's scan, reified.
//
// Detector::plan() packages everything ClassScanScheduler needs to execute
// the K-class fan-out — the per-class resumable-task factory, the optional
// shared-prefix builder, and the scheduler options derived from the
// detector's config — without binding a model, a probe set, a pool, or a
// schedule. Two consumers run plans:
//
//  - Detector::detect(): run_scan_plan(plan(), model, probe) on the calling
//    thread — the legacy blocking API, byte-for-byte the historical
//    per-detector detect() bodies;
//  - DetectionService: copies the plan, overrides options (ProbeStore-shared
//    probe cache, progress callback, request-level early-exit /
//    async-retirement settings) and drives it STAGE BY STAGE through a
//    StagedScan: every task construction, refinement round, and finalize
//    becomes one item on the service's global cross-request class-job
//    scheduler (service/round_scheduler.h).
//
// The plan's closures borrow the detector that built them; the detector
// must outlive every run of the plan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "defenses/class_scan_scheduler.h"
#include "defenses/detector.h"
#include "utils/timer.h"

namespace usb {

struct ScanPlan {
  std::string method;
  ClassScanOptions options;
  /// Full refinement budget per class (total run_steps of one task).
  std::int64_t total_steps = 0;
  ClassScanScheduler::RefineTaskFn make_task;
  ScanSharedBuilder shared_builder;  // null when the detector shares nothing
};

/// One scan decomposed into schedulable stages, for callers that own the
/// schedule (DetectionService's global class-job scheduler) instead of
/// blocking in run_scan_plan. The stages mirror the blocking paths exactly:
///
///   prepare()                          once; probe-cache adoption + shared
///                                      prefix on the reference model
///   construct_class(t)                 per class; clone + task ctor
///   run_round(t) / retire_class(t)     the round loop, sliced
///   mad_cutoff()                       the barrier/rendezvous statistic
///   finalize_class(t)                  per class; fooling rate + estimate
///   take_report()                      once; ordered MAD reduce
///
/// Because run_steps slices concatenate bit-identically and every cutoff is
/// taken at a logical point fixed by the caller's schedule structure (see
/// class_scan_scheduler.h), a driver that replays one of the three blocking
/// schedules — monolithic, per-round barrier, async rendezvous — produces a
/// report bit-identical to run_scan_plan for ANY executor count, pool size,
/// priority assignment, or interleaving with other scans.
///
/// Thread-safety: stages for DISTINCT classes may run concurrently (each
/// touches only its class's clone/task/report slots). prepare(),
/// mad_cutoff(), and take_report() require quiescence (no class stage in
/// flight); cross-stage ordering and visibility are the caller's (the
/// service sequences items through its per-scan mutex). The model and probe
/// must outlive the StagedScan; tasks — and their clones — stay alive until
/// destruction so mad_cutoff can keep reading finalized classes' frozen
/// statistics, exactly like the blocking early-exit path.
class StagedScan {
 public:
  /// Exclusive-model mode: `model` is this scan's private instance (the
  /// service's submit-time clone, or detect()'s caller-owned model); the
  /// shared-prefix builder may run forward passes directly on it.
  StagedScan(ScanPlan plan, Network& model, const Dataset& probe);
  /// Shared-model mode: `model` is an IMMUTABLE instance shared with other
  /// concurrent scans (a ModelStore resident, pinned by the shared_ptr for
  /// this scan's lifetime). Per-class clones read it race-free
  /// (clone_network takes const&); the shared-prefix builder — whose forward
  /// passes would mutate per-instance forward caches — runs on a private
  /// temporary clone instead. Bit-identical to exclusive mode: forward is a
  /// pure function of (weights, input) and clones copy every state tensor.
  StagedScan(ScanPlan plan, std::shared_ptr<const Network> model, const Dataset& probe);
  /// Releases the per-class clone bytes registered with MemoryBudget.
  ~StagedScan();

  StagedScan(const StagedScan&) = delete;
  StagedScan& operator=(const StagedScan&) = delete;

  [[nodiscard]] std::int64_t num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] bool early_exit_enabled() const noexcept {
    return plan_.options.early_exit.enabled;
  }
  [[nodiscard]] bool async_retirement() const noexcept { return plan_.options.early_exit.async; }
  [[nodiscard]] std::int64_t min_rounds() const noexcept {
    return plan_.options.early_exit.min_rounds;
  }
  /// Steps per round, derived exactly as the blocking paths derive it.
  [[nodiscard]] std::int64_t round_steps() const noexcept { return round_steps_; }

  /// Adopts or builds the probe cache and runs the detector's shared-prefix
  /// builder on the reference model. Call once, before any other stage.
  void prepare();

  /// Clones the model and constructs class t's resumable task (the whole
  /// pre-refinement pipeline). Timer parity with the blocking paths: the
  /// per-class clock starts after the clone.
  void construct_class(std::int64_t target_class);

  /// Advances class t by one round (min(round_steps, its remaining
  /// budget)); returns true while budget remains afterwards. A task whose
  /// own exit condition fires mid-round zeroes its budget, same as the
  /// blocking paths.
  bool run_round(std::int64_t target_class);

  [[nodiscard]] bool has_budget(std::int64_t target_class) const;

  /// Current mask-L1 statistic of a constructed class (frozen once the
  /// class stops running rounds). Cheap, non-mutating. A quarantined class
  /// reads NaN so every cutoff population it feeds peels it out.
  [[nodiscard]] double stat(std::int64_t target_class) const;

  /// True once run_round observed a non-finite statistic for class t and
  /// quarantined it (budget zeroed, per-class state kNumericallyUnstable,
  /// excluded from cutoffs and the verdict).
  [[nodiscard]] bool quarantined(std::int64_t target_class) const;

  /// The early-exit cutoff over ALL classes' current statistics in class
  /// order — median + margin * 1.4826 * MAD, the same population and
  /// formula as the blocking barriers. Requires every class constructed and
  /// no class stage in flight.
  [[nodiscard]] double mad_cutoff() const;

  /// Drops class t's remaining budget and emits the kRetired progress
  /// event with its current statistic.
  void retire_class(std::int64_t target_class);

  /// Evaluates class t's fooling rate, assembles its estimate, and emits
  /// kFinalized. Exactly once per class, after its last round.
  void finalize_class(std::int64_t target_class);

  /// Ordered MAD reduction + wall time. Call once, with no class stage in
  /// flight — normally after every class finalized, but also legal on a
  /// PARTIAL scan (deadline expiry): classes that never finalized keep
  /// their kPending/kRefining state, are peeled out of the verdict, and the
  /// report says so via per_class_state.
  [[nodiscard]] DetectionReport take_report();

 private:
  StagedScan(ScanPlan plan, Network* model, std::shared_ptr<const Network> shared,
             const Dataset& probe);

  void notify(std::int64_t target_class, ClassScanEvent event, double mask_l1) const;

  /// The read-only reference model: the exclusive instance or the shared
  /// one. Only clone_network() and the (exclusive-mode) prefix build touch
  /// the model; every other stage works on per-class clones.
  [[nodiscard]] const Network& reference() const noexcept {
    return shared_model_ != nullptr ? *shared_model_ : *model_;
  }

  ScanPlan plan_;
  ClassScanScheduler scheduler_;
  Network* model_ = nullptr;                     // exclusive mode
  std::shared_ptr<const Network> shared_model_;  // shared mode (pins the owner)
  const Dataset* probe_;
  std::int64_t num_classes_;
  std::int64_t round_steps_;
  Timer wall_;

  ProbeBatchCache local_cache_;
  const ProbeBatchCache* eval_cache_ = nullptr;
  std::shared_ptr<const ScanSharedState> shared_;
  std::vector<std::unique_ptr<Network>> clones_;
  std::vector<std::unique_ptr<ClassRefineTask>> tasks_;
  std::vector<std::int64_t> remaining_;
  std::vector<std::int64_t> clone_budget_bytes_;  // registered with MemoryBudget
  DetectionReport report_;
};

/// Runs a plan to completion on the calling thread — the single scan
/// execution path behind both detect() and the service. Early exit disabled
/// takes the monolithic run() path (each class's task constructed, advanced
/// through its whole budget in one slice, finalized — exactly the historical
/// reverse_engineer_class body); enabled takes run_early_exit(), which
/// itself dispatches to the async-retirement schedule when
/// options.early_exit.async is set.
[[nodiscard]] DetectionReport run_scan_plan(const ScanPlan& plan, Network& model,
                                            const Dataset& probe);

}  // namespace usb
