#include "defenses/neural_cleanse.h"

#include <algorithm>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace usb {
namespace {

/// Fooling rate of the final trigger over the full probe set.
double final_fooling_rate(Network& model, const Dataset& probe, const MaskedTrigger& trigger,
                          std::int64_t target_class) {
  DataLoader loader(probe, 128, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    const Tensor logits = model.forward(trigger.apply(batch.images));
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

TriggerEstimate NeuralCleanse::reverse_engineer_class(Network& model, const Dataset& probe,
                                                      std::int64_t target_class) {
  model.set_training(false);
  model.set_param_grads_enabled(false);
  Rng rng(hash_combine(config_.seed, static_cast<std::uint64_t>(target_class)));
  MaskedTrigger trigger(probe.spec().channels, probe.spec().image_size, rng, config_.lr);
  TargetedCrossEntropy loss;
  DataLoader loader(probe, config_.batch_size, /*shuffle=*/true,
                    hash_combine(config_.seed, 0x2cULL, static_cast<std::uint64_t>(target_class)));

  float lambda = config_.lambda_init;
  float last_loss = 0.0F;
  Batch batch;
  for (std::int64_t step = 0; step < config_.steps; ++step) {
    if (!loader.next(batch)) {
      loader.new_epoch();
      if (!loader.next(batch)) break;
    }
    trigger.zero_grad();
    const Tensor blended = trigger.apply(batch.images);
    const Tensor logits = model.forward(blended);
    last_loss = loss.forward(logits, target_class);
    const Tensor dblended = model.backward(loss.backward());
    trigger.accumulate_from_output_grad(dblended, batch.images);
    trigger.add_mask_l1_grad(lambda);
    trigger.step();

    // Dynamic lambda (Neural Cleanse schedule): push sparsity while the
    // trigger still flips the batch reliably, relax otherwise.
    std::int64_t hits = 0;
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
    }
    const double success =
        static_cast<double>(hits) / static_cast<double>(batch.labels.size());
    if (success > config_.success_threshold) {
      lambda = std::min(lambda * config_.lambda_up, 100.0F * config_.lambda_init);
    } else {
      lambda = std::max(lambda / config_.lambda_down, 1e-3F * config_.lambda_init);
    }
  }

  TriggerEstimate estimate;
  estimate.target_class = target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = final_fooling_rate(model, probe, trigger, target_class);
  return estimate;
}

DetectionReport NeuralCleanse::detect(Network& model, const Dataset& probe) {
  return run_per_class_detection(
      name(), model, probe, config_.mad_threshold,
      [this](Network& clone, const Dataset& data, std::int64_t t) {
        return reverse_engineer_class(clone, data, t);
      });
}

}  // namespace usb
