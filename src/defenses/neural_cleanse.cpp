#include "defenses/neural_cleanse.h"

#include <algorithm>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {
namespace {

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0x01;
constexpr std::uint64_t kLoaderSalt = 0x2c;

}  // namespace

ClassScanScheduler NeuralCleanse::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.mad_threshold;
  options.base_seed = config_.seed;
  options.pool = config_.scan_pool;
  return ClassScanScheduler(options);
}

TriggerEstimate NeuralCleanse::reverse_engineer_class(Network& model, const Dataset& probe,
                                                      std::int64_t target_class) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache));
}

TriggerEstimate NeuralCleanse::reverse_engineer_class(Network& model, const Dataset& probe,
                                                      const ClassScanJob& job) {
  const std::int64_t target_class = job.target_class;
  model.set_training(false);
  model.set_param_grads_enabled(false);
  Rng rng(hash_combine(job.rng_seed, kInitSalt));
  MaskedTrigger trigger(probe.spec().channels, probe.spec().image_size, rng, config_.lr);
  TargetedCrossEntropy loss;
  DataLoader loader(probe, config_.batch_size, /*shuffle=*/true,
                    hash_combine(job.rng_seed, kLoaderSalt));

  float lambda = config_.lambda_init;
  float last_loss = 0.0F;
  Batch batch;
  for (std::int64_t step = 0; step < config_.steps; ++step) {
    if (!loader.next(batch)) {
      loader.new_epoch();
      if (!loader.next(batch)) break;
    }
    trigger.zero_grad();
    const Tensor blended = trigger.apply(batch.images);
    const Tensor logits = model.forward(blended);
    last_loss = loss.forward(logits, target_class);
    const Tensor dblended = model.backward(loss.backward());
    trigger.accumulate_from_output_grad(dblended, batch.images);
    trigger.add_mask_l1_grad(lambda);
    trigger.step();

    // Dynamic lambda (Neural Cleanse schedule): push sparsity while the
    // trigger still flips the batch reliably, relax otherwise.
    std::int64_t hits = 0;
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
    }
    const double success =
        static_cast<double>(hits) / static_cast<double>(batch.labels.size());
    if (success > config_.success_threshold) {
      lambda = std::min(lambda * config_.lambda_up, 100.0F * config_.lambda_init);
    } else {
      lambda = std::max(lambda / config_.lambda_down, 1e-3F * config_.lambda_init);
    }
  }

  TriggerEstimate estimate;
  estimate.target_class = target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = fooling_rate(model, *job.probe_cache, trigger, target_class);
  return estimate;
}

DetectionReport NeuralCleanse::detect(Network& model, const Dataset& probe) {
  return make_scheduler().run(
      name(), model, probe,
      [this](Network& clone, const Dataset& data, const ClassScanJob& job) {
        return reverse_engineer_class(clone, data, job);
      });
}

}  // namespace usb
