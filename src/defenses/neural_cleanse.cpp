#include "defenses/neural_cleanse.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "defenses/scan_plan.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {
namespace {

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0x01;
constexpr std::uint64_t kLoaderSalt = 0x2c;

/// The per-class NC optimization in resumable form (see ClassRefineTask):
/// run_steps slices concatenate bit-identically to one uninterrupted loop —
/// the body never reads the step index, and the loader cursor, Adam
/// moments, dynamic lambda and last loss all live here.
class NcRefineTask final : public ClassRefineTask {
 public:
  NcRefineTask(const ReverseOptConfig& config, Network& model, const Dataset& probe,
               const ClassScanJob& job)
      : config_(config),
        model_(model),
        job_(job),
        loader_(probe, config.batch_size, /*shuffle=*/true,
                hash_combine(job.rng_seed, kLoaderSalt)),
        lambda_(config.lambda_init) {
    model_.set_training(false);
    model_.set_param_grads_enabled(false);
    Rng rng(hash_combine(job_.rng_seed, kInitSalt));
    trigger_.emplace(probe.spec().channels, probe.spec().image_size, rng, config_.lr);
  }

  std::int64_t run_steps(std::int64_t steps) override {
    if (exhausted_) return 0;
    std::int64_t ran = 0;
    while (ran < steps) {
      if (!loader_.next(batch_)) {
        loader_.new_epoch();
        if (!loader_.next(batch_)) {
          exhausted_ = true;
          break;
        }
      }
      // Per-step tensors live in the task arena (reset here), the loader
      // batch and trigger scratch are recycled members: the steady-state
      // step performs zero Tensor heap allocations.
      arena_.reset();
      trigger_->zero_grad();
      const Tensor& blended = trigger_->apply_into(batch_.images, arena_);
      const Tensor& logits = model_.forward_into(blended, arena_);
      last_loss_ = loss_.forward(logits, job_.target_class);
      const Tensor& dblended = model_.backward_into(loss_.backward_into(arena_), arena_);
      trigger_->accumulate_from_output_grad(dblended, batch_.images);
      trigger_->add_mask_l1_grad(lambda_);
      trigger_->step();

      // Dynamic lambda (Neural Cleanse schedule): push sparsity while the
      // trigger still flips the batch reliably, relax otherwise.
      std::int64_t hits = 0;
      for (const std::int64_t pred : argmax_rows(logits)) {
        if (pred == job_.target_class) ++hits;
      }
      const double success =
          static_cast<double>(hits) / static_cast<double>(batch_.labels.size());
      if (success > config_.success_threshold) {
        lambda_ = std::min(lambda_ * config_.lambda_up, 100.0F * config_.lambda_init);
      } else {
        lambda_ = std::max(lambda_ / config_.lambda_down, 1e-3F * config_.lambda_init);
      }
      ++ran;
    }
    return ran;
  }

  [[nodiscard]] double current_mask_l1() const override { return trigger_->mask_l1(); }

  [[nodiscard]] TriggerEstimate finalize() override {
    return finalize_estimate(model_, job_, *trigger_, last_loss_, &arena_);
  }

 private:
  const ReverseOptConfig& config_;
  Network& model_;
  const ClassScanJob job_;
  DataLoader loader_;
  TensorArena arena_;
  Batch batch_;
  std::optional<MaskedTrigger> trigger_;
  TargetedCrossEntropy loss_;
  float lambda_;
  float last_loss_ = 0.0F;
  bool exhausted_ = false;
};

}  // namespace

ClassScanScheduler NeuralCleanse::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.mad_threshold;
  options.base_seed = config_.seed;
  options.pool = config_.scan_pool;
  options.external_probe_cache = config_.shared_probe_cache;
  options.early_exit = config_.early_exit;
  return ClassScanScheduler(options);
}

TriggerEstimate NeuralCleanse::reverse_engineer_class(Network& model, const Dataset& probe,
                                                      std::int64_t target_class) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache));
}

TriggerEstimate NeuralCleanse::reverse_engineer_class(Network& model, const Dataset& probe,
                                                      const ClassScanJob& job) {
  NcRefineTask task(config_, model, probe, job);
  (void)task.run_steps(config_.steps);
  return task.finalize();
}

ScanPlan NeuralCleanse::plan() const {
  ScanPlan scan;
  scan.method = name();
  scan.options = make_scheduler().options();
  scan.total_steps = config_.steps;
  scan.make_task = [this](Network& clone, const Dataset& data,
                          const ClassScanJob& job) -> std::unique_ptr<ClassRefineTask> {
    return std::make_unique<NcRefineTask>(config_, clone, data, job);
  };
  return scan;
}

}  // namespace usb
