// Neural Cleanse (Wang et al., S&P 2019).
//
// For every class t, optimizes a (pattern, mask) pair so that blending it
// into clean images flips the model to t, under an L1 penalty on the mask
// with the dynamic-lambda schedule of the original paper. The per-class
// mask-L1 statistics feed the MAD outlier rule. The optimization starts
// from a RANDOM point and only the blending reaches the pattern — the
// property the USB paper's Fig. 1 criticizes (the pattern barely moves),
// reproduced faithfully here.
#pragma once

#include "defenses/class_scan_scheduler.h"
#include "defenses/detector.h"

namespace usb {

struct ReverseOptConfig {
  std::int64_t steps = 100;       // optimization iterations per class
  std::int64_t batch_size = 16;
  float lr = 0.1F;                // paper: lr = 0.1
  float lambda_init = 1e-2F;      // initial mask-L1 weight
  double success_threshold = 0.9; // dynamic lambda target fooling rate
  float lambda_up = 1.3F;
  float lambda_down = 1.5F;
  double mad_threshold = 2.0;
  std::uint64_t seed = 99;
  /// Scan-pool override for tests/benches; nullptr means the global pool
  /// (sized from USB_THREADS).
  ThreadPool* scan_pool = nullptr;
  /// Prebuilt full-probe evaluation cache to reuse across detect() calls on
  /// the same probe set (see ClassScanOptions::external_probe_cache).
  const ProbeBatchCache* shared_probe_cache = nullptr;
  /// Early-exit round scheduling of the optimization loop; bit-identical to
  /// the monolithic scan when disabled.
  EarlyExitOptions early_exit;
};

class NeuralCleanse final : public Detector {
 public:
  explicit NeuralCleanse(ReverseOptConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "NC"; }
  /// The reified scan (see defenses/scan_plan.h); detect() (inherited) runs
  /// it synchronously, DetectionService runs it with overrides.
  [[nodiscard]] ScanPlan plan() const override;

  /// Reverse engineers the trigger for a single class (used by the figure
  /// benches to visualize per-class results). Seeds exactly as the parallel
  /// scan does, so results match detect() bit for bit.
  [[nodiscard]] TriggerEstimate reverse_engineer_class(Network& model, const Dataset& probe,
                                                       std::int64_t target_class);

  /// Scheduler job body: same as above, but against a shared probe cache.
  [[nodiscard]] TriggerEstimate reverse_engineer_class(Network& model, const Dataset& probe,
                                                       const ClassScanJob& job);

 private:
  [[nodiscard]] ClassScanScheduler make_scheduler() const;

  ReverseOptConfig config_;
};

}  // namespace usb
