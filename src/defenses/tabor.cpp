#include "defenses/tabor.h"

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/timer.h"

namespace usb {
namespace {

double batch_fooling_rate(const Tensor& logits, std::int64_t target_class) {
  std::int64_t hits = 0;
  const std::vector<std::int64_t> preds = argmax_rows(logits);
  for (const std::int64_t pred : preds) {
    if (pred == target_class) ++hits;
  }
  return preds.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(preds.size());
}

double final_fooling_rate(Network& model, const Dataset& probe, const MaskedTrigger& trigger,
                          std::int64_t target_class) {
  DataLoader loader(probe, 128, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    const Tensor logits = model.forward(trigger.apply(batch.images));
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target_class) ++hits;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

TriggerEstimate Tabor::reverse_engineer_class(Network& model, const Dataset& probe,
                                              std::int64_t target_class) {
  model.set_training(false);
  model.set_param_grads_enabled(false);
  const ReverseOptConfig& base = config_.base;
  Rng rng(hash_combine(base.seed, 0x7ab0ULL, static_cast<std::uint64_t>(target_class)));
  MaskedTrigger trigger(probe.spec().channels, probe.spec().image_size, rng, base.lr);
  TargetedCrossEntropy target_loss;
  SoftmaxCrossEntropy true_loss;
  TargetedCrossEntropy overlay_loss;
  DataLoader loader(probe, base.batch_size, /*shuffle=*/true,
                    hash_combine(base.seed, 0x7ab1ULL, static_cast<std::uint64_t>(target_class)));

  const std::int64_t channels = probe.spec().channels;
  const std::int64_t size = probe.spec().image_size;
  const std::int64_t spatial = size * size;

  float lambda = base.lambda_init;
  float last_loss = 0.0F;
  Batch batch;
  for (std::int64_t step = 0; step < base.steps; ++step) {
    if (!loader.next(batch)) {
      loader.new_epoch();
      if (!loader.next(batch)) break;
    }
    trigger.zero_grad();

    // Main NC objective.
    const Tensor blended = trigger.apply(batch.images);
    const Tensor logits = model.forward(blended);
    last_loss = target_loss.forward(logits, target_class);
    const Tensor dblended = model.backward(target_loss.backward());
    trigger.accumulate_from_output_grad(dblended, batch.images);
    trigger.add_mask_l1_grad(lambda);

    const Tensor m = trigger.mask();
    const Tensor p = trigger.pattern();

    // R1: elastic net on the mask and on the out-of-mask pattern (1-m)*p.
    trigger.add_mask_elastic_grad(config_.elastic_mask_weight);
    {
      Tensor dp(p.shape());
      Tensor dm(m.shape());
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          const float value = (1.0F - m[s]) * p[c * spatial + s];
          const float upstream =
              config_.elastic_pattern_weight * ((value > 0.0F ? 1.0F : 0.0F) + 2.0F * value);
          dp[c * spatial + s] += upstream * (1.0F - m[s]);
          dm[s] += upstream * (-p[c * spatial + s]);
        }
      }
      trigger.add_pattern_value_grad(dp);
      trigger.add_mask_value_grad(dm);
    }

    // R2: total-variation smoothness on the mask.
    trigger.add_mask_tv_grad(config_.tv_weight);

    // R3 "blocking": removing the masked region must preserve the true
    // labels: CE(f(x * (1-m)), y).
    {
      Tensor removed = batch.images;
      const std::int64_t bsz = removed.dim(0);
      for (std::int64_t n = 0; n < bsz; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
          float* row = removed.raw() + (n * channels + c) * spatial;
          for (std::int64_t s = 0; s < spatial; ++s) row[s] *= 1.0F - m[s];
        }
      }
      const Tensor removed_logits = model.forward(removed);
      (void)true_loss.forward(removed_logits, batch.labels);
      Tensor dremoved = model.backward(true_loss.backward());
      Tensor dm(m.shape());
      for (std::int64_t n = 0; n < bsz; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
          const float* drow = dremoved.raw() + (n * channels + c) * spatial;
          const float* xrow = batch.images.raw() + (n * channels + c) * spatial;
          for (std::int64_t s = 0; s < spatial; ++s) dm[s] += drow[s] * (-xrow[s]);
        }
      }
      dm *= config_.blocking_weight;
      trigger.add_mask_value_grad(dm);
    }

    // R4 "overlaying": the isolated trigger p*m must classify to target.
    {
      Tensor isolated(Shape{1, channels, size, size});
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          isolated[c * spatial + s] = p[c * spatial + s] * m[s];
        }
      }
      const Tensor iso_logits = model.forward(isolated);
      (void)overlay_loss.forward(iso_logits, target_class);
      Tensor diso = model.backward(overlay_loss.backward());
      Tensor dp(p.shape());
      Tensor dm(m.shape());
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          dp[c * spatial + s] += diso[c * spatial + s] * m[s];
          dm[s] += diso[c * spatial + s] * p[c * spatial + s];
        }
      }
      dp *= config_.overlay_weight;
      dm *= config_.overlay_weight;
      trigger.add_pattern_value_grad(dp);
      trigger.add_mask_value_grad(dm);
    }

    trigger.step();

    const double success = batch_fooling_rate(logits, target_class);
    if (success > base.success_threshold) {
      lambda = std::min(lambda * base.lambda_up, 100.0F * base.lambda_init);
    } else {
      lambda = std::max(lambda / base.lambda_down, 1e-3F * base.lambda_init);
    }
  }

  TriggerEstimate estimate;
  estimate.target_class = target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = final_fooling_rate(model, probe, trigger, target_class);
  return estimate;
}

DetectionReport Tabor::detect(Network& model, const Dataset& probe) {
  return run_per_class_detection(
      name(), model, probe, config_.base.mad_threshold,
      [this](Network& clone, const Dataset& data, std::int64_t t) {
        return reverse_engineer_class(clone, data, t);
      });
}

}  // namespace usb
