#include "defenses/tabor.h"

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {
namespace {

double batch_fooling_rate(const Tensor& logits, std::int64_t target_class) {
  std::int64_t hits = 0;
  const std::vector<std::int64_t> preds = argmax_rows(logits);
  for (const std::int64_t pred : preds) {
    if (pred == target_class) ++hits;
  }
  return preds.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(preds.size());
}

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0x7ab0;
constexpr std::uint64_t kLoaderSalt = 0x7ab1;

}  // namespace

ClassScanScheduler Tabor::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.base.mad_threshold;
  options.base_seed = config_.base.seed;
  options.pool = config_.base.scan_pool;
  return ClassScanScheduler(options);
}

TriggerEstimate Tabor::reverse_engineer_class(Network& model, const Dataset& probe,
                                              std::int64_t target_class) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache));
}

TriggerEstimate Tabor::reverse_engineer_class(Network& model, const Dataset& probe,
                                              const ClassScanJob& job) {
  const std::int64_t target_class = job.target_class;
  model.set_training(false);
  model.set_param_grads_enabled(false);
  const ReverseOptConfig& base = config_.base;
  Rng rng(hash_combine(job.rng_seed, kInitSalt));
  MaskedTrigger trigger(probe.spec().channels, probe.spec().image_size, rng, base.lr);
  TargetedCrossEntropy target_loss;
  SoftmaxCrossEntropy true_loss;
  TargetedCrossEntropy overlay_loss;
  DataLoader loader(probe, base.batch_size, /*shuffle=*/true,
                    hash_combine(job.rng_seed, kLoaderSalt));

  const std::int64_t channels = probe.spec().channels;
  const std::int64_t size = probe.spec().image_size;
  const std::int64_t spatial = size * size;

  float lambda = base.lambda_init;
  float last_loss = 0.0F;
  Batch batch;
  for (std::int64_t step = 0; step < base.steps; ++step) {
    if (!loader.next(batch)) {
      loader.new_epoch();
      if (!loader.next(batch)) break;
    }
    trigger.zero_grad();

    // Main NC objective.
    const Tensor blended = trigger.apply(batch.images);
    const Tensor logits = model.forward(blended);
    last_loss = target_loss.forward(logits, target_class);
    const Tensor dblended = model.backward(target_loss.backward());
    trigger.accumulate_from_output_grad(dblended, batch.images);
    trigger.add_mask_l1_grad(lambda);

    const Tensor m = trigger.mask();
    const Tensor p = trigger.pattern();

    // R1: elastic net on the mask and on the out-of-mask pattern (1-m)*p.
    trigger.add_mask_elastic_grad(config_.elastic_mask_weight);
    {
      Tensor dp(p.shape());
      Tensor dm(m.shape());
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          const float value = (1.0F - m[s]) * p[c * spatial + s];
          const float upstream =
              config_.elastic_pattern_weight * ((value > 0.0F ? 1.0F : 0.0F) + 2.0F * value);
          dp[c * spatial + s] += upstream * (1.0F - m[s]);
          dm[s] += upstream * (-p[c * spatial + s]);
        }
      }
      trigger.add_pattern_value_grad(dp);
      trigger.add_mask_value_grad(dm);
    }

    // R2: total-variation smoothness on the mask.
    trigger.add_mask_tv_grad(config_.tv_weight);

    // R3 "blocking": removing the masked region must preserve the true
    // labels: CE(f(x * (1-m)), y).
    {
      Tensor removed = batch.images;
      const std::int64_t bsz = removed.dim(0);
      for (std::int64_t n = 0; n < bsz; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
          float* row = removed.raw() + (n * channels + c) * spatial;
          for (std::int64_t s = 0; s < spatial; ++s) row[s] *= 1.0F - m[s];
        }
      }
      const Tensor removed_logits = model.forward(removed);
      (void)true_loss.forward(removed_logits, batch.labels);
      Tensor dremoved = model.backward(true_loss.backward());
      Tensor dm(m.shape());
      for (std::int64_t n = 0; n < bsz; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
          const float* drow = dremoved.raw() + (n * channels + c) * spatial;
          const float* xrow = batch.images.raw() + (n * channels + c) * spatial;
          for (std::int64_t s = 0; s < spatial; ++s) dm[s] += drow[s] * (-xrow[s]);
        }
      }
      dm *= config_.blocking_weight;
      trigger.add_mask_value_grad(dm);
    }

    // R4 "overlaying": the isolated trigger p*m must classify to target.
    {
      Tensor isolated(Shape{1, channels, size, size});
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          isolated[c * spatial + s] = p[c * spatial + s] * m[s];
        }
      }
      const Tensor iso_logits = model.forward(isolated);
      (void)overlay_loss.forward(iso_logits, target_class);
      Tensor diso = model.backward(overlay_loss.backward());
      Tensor dp(p.shape());
      Tensor dm(m.shape());
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t s = 0; s < spatial; ++s) {
          dp[c * spatial + s] += diso[c * spatial + s] * m[s];
          dm[s] += diso[c * spatial + s] * p[c * spatial + s];
        }
      }
      dp *= config_.overlay_weight;
      dm *= config_.overlay_weight;
      trigger.add_pattern_value_grad(dp);
      trigger.add_mask_value_grad(dm);
    }

    trigger.step();

    const double success = batch_fooling_rate(logits, target_class);
    if (success > base.success_threshold) {
      lambda = std::min(lambda * base.lambda_up, 100.0F * base.lambda_init);
    } else {
      lambda = std::max(lambda / base.lambda_down, 1e-3F * base.lambda_init);
    }
  }

  TriggerEstimate estimate;
  estimate.target_class = target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = fooling_rate(model, *job.probe_cache, trigger, target_class);
  return estimate;
}

DetectionReport Tabor::detect(Network& model, const Dataset& probe) {
  return make_scheduler().run(
      name(), model, probe,
      [this](Network& clone, const Dataset& data, const ClassScanJob& job) {
        return reverse_engineer_class(clone, data, job);
      });
}

}  // namespace usb
