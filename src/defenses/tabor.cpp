#include "defenses/tabor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "defenses/scan_plan.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace usb {
namespace {

double batch_fooling_rate(const Tensor& logits, std::int64_t target_class) {
  std::int64_t hits = 0;
  const std::vector<std::int64_t> preds = argmax_rows(logits);
  for (const std::int64_t pred : preds) {
    if (pred == target_class) ++hits;
  }
  return preds.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(preds.size());
}

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0x7ab0;
constexpr std::uint64_t kLoaderSalt = 0x7ab1;

/// The per-class TABOR optimization in resumable form (see ClassRefineTask):
/// run_steps slices concatenate bit-identically to one uninterrupted loop —
/// the body never reads the step index, and the loader cursor, Adam moments,
/// dynamic lambda and last loss all live here. Each step still pays the R3
/// and R4 extra forward/backward passes, the cost structure the paper's
/// Table 7 reports — early exit attacks exactly that (K x steps x 3
/// forwards) budget.
class TaborRefineTask final : public ClassRefineTask {
 public:
  TaborRefineTask(const TaborConfig& config, Network& model, const Dataset& probe,
                  const ClassScanJob& job)
      : config_(config),
        model_(model),
        job_(job),
        loader_(probe, config.base.batch_size, /*shuffle=*/true,
                hash_combine(job.rng_seed, kLoaderSalt)),
        channels_(probe.spec().channels),
        size_(probe.spec().image_size),
        lambda_(config.base.lambda_init) {
    model_.set_training(false);
    model_.set_param_grads_enabled(false);
    Rng rng(hash_combine(job_.rng_seed, kInitSalt));
    trigger_.emplace(channels_, size_, rng, config_.base.lr);
  }

  std::int64_t run_steps(std::int64_t steps) override {
    if (exhausted_) return 0;
    const ReverseOptConfig& base = config_.base;
    const std::int64_t spatial = size_ * size_;
    std::int64_t ran = 0;
    while (ran < steps) {
      if (!loader_.next(batch_)) {
        loader_.new_epoch();
        if (!loader_.next(batch_)) {
          exhausted_ = true;
          break;
        }
      }
      // All per-step tensors — the three forward/backward chains and every
      // regularizer accumulator — live in the task arena (reset here), so
      // the steady-state TABOR step (the heaviest of the three detectors)
      // allocates nothing.
      arena_.reset();
      trigger_->zero_grad();

      // Main NC objective.
      const Tensor& blended = trigger_->apply_into(batch_.images, arena_);
      const Tensor& logits = model_.forward_into(blended, arena_);
      last_loss_ = target_loss_.forward(logits, job_.target_class);
      const Tensor& dblended =
          model_.backward_into(target_loss_.backward_into(arena_), arena_);
      trigger_->accumulate_from_output_grad(dblended, batch_.images);
      trigger_->add_mask_l1_grad(lambda_);

      const Tensor& m = trigger_->mask_values();
      const Tensor& p = trigger_->pattern_values();

      // R1: elastic net on the mask and on the out-of-mask pattern (1-m)*p.
      trigger_->add_mask_elastic_grad(config_.elastic_mask_weight);
      {
        Tensor& dp = arena_.zeros(p.shape());
        Tensor& dm = arena_.zeros(m.shape());
        for (std::int64_t c = 0; c < channels_; ++c) {
          for (std::int64_t s = 0; s < spatial; ++s) {
            const float value = (1.0F - m[s]) * p[c * spatial + s];
            const float upstream =
                config_.elastic_pattern_weight * ((value > 0.0F ? 1.0F : 0.0F) + 2.0F * value);
            dp[c * spatial + s] += upstream * (1.0F - m[s]);
            dm[s] += upstream * (-p[c * spatial + s]);
          }
        }
        trigger_->add_pattern_value_grad(dp);
        trigger_->add_mask_value_grad(dm);
      }

      // R2: total-variation smoothness on the mask.
      trigger_->add_mask_tv_grad(config_.tv_weight);

      // R3 "blocking": removing the masked region must preserve the true
      // labels: CE(f(x * (1-m)), y).
      {
        Tensor& removed = arena_.alloc(batch_.images.shape());
        const std::int64_t bsz = removed.dim(0);
        for (std::int64_t n = 0; n < bsz; ++n) {
          for (std::int64_t c = 0; c < channels_; ++c) {
            const float* xrow = batch_.images.raw() + (n * channels_ + c) * spatial;
            float* row = removed.raw() + (n * channels_ + c) * spatial;
            for (std::int64_t s = 0; s < spatial; ++s) row[s] = xrow[s] * (1.0F - m[s]);
          }
        }
        const Tensor& removed_logits = model_.forward_into(removed, arena_);
        (void)true_loss_.forward(removed_logits, batch_.labels);
        const Tensor& dremoved =
            model_.backward_into(true_loss_.backward_into(arena_), arena_);
        Tensor& dm = arena_.zeros(m.shape());
        for (std::int64_t n = 0; n < bsz; ++n) {
          for (std::int64_t c = 0; c < channels_; ++c) {
            const float* drow = dremoved.raw() + (n * channels_ + c) * spatial;
            const float* xrow = batch_.images.raw() + (n * channels_ + c) * spatial;
            for (std::int64_t s = 0; s < spatial; ++s) dm[s] += drow[s] * (-xrow[s]);
          }
        }
        dm *= config_.blocking_weight;
        trigger_->add_mask_value_grad(dm);
      }

      // R4 "overlaying": the isolated trigger p*m must classify to target.
      {
        Tensor& isolated = arena_.alloc(Shape{1, channels_, size_, size_});
        for (std::int64_t c = 0; c < channels_; ++c) {
          for (std::int64_t s = 0; s < spatial; ++s) {
            isolated[c * spatial + s] = p[c * spatial + s] * m[s];
          }
        }
        const Tensor& iso_logits = model_.forward_into(isolated, arena_);
        (void)overlay_loss_.forward(iso_logits, job_.target_class);
        const Tensor& diso =
            model_.backward_into(overlay_loss_.backward_into(arena_), arena_);
        Tensor& dp = arena_.zeros(p.shape());
        Tensor& dm = arena_.zeros(m.shape());
        for (std::int64_t c = 0; c < channels_; ++c) {
          for (std::int64_t s = 0; s < spatial; ++s) {
            dp[c * spatial + s] += diso[c * spatial + s] * m[s];
            dm[s] += diso[c * spatial + s] * p[c * spatial + s];
          }
        }
        dp *= config_.overlay_weight;
        dm *= config_.overlay_weight;
        trigger_->add_pattern_value_grad(dp);
        trigger_->add_mask_value_grad(dm);
      }

      trigger_->step();

      const double success = batch_fooling_rate(logits, job_.target_class);
      if (success > base.success_threshold) {
        lambda_ = std::min(lambda_ * base.lambda_up, 100.0F * base.lambda_init);
      } else {
        lambda_ = std::max(lambda_ / base.lambda_down, 1e-3F * base.lambda_init);
      }
      ++ran;
    }
    return ran;
  }

  [[nodiscard]] double current_mask_l1() const override { return trigger_->mask_l1(); }

  [[nodiscard]] TriggerEstimate finalize() override {
    return finalize_estimate(model_, job_, *trigger_, last_loss_, &arena_);
  }

 private:
  const TaborConfig& config_;
  Network& model_;
  const ClassScanJob job_;
  DataLoader loader_;
  TensorArena arena_;
  Batch batch_;
  std::optional<MaskedTrigger> trigger_;
  TargetedCrossEntropy target_loss_;
  SoftmaxCrossEntropy true_loss_;
  TargetedCrossEntropy overlay_loss_;
  std::int64_t channels_;
  std::int64_t size_;
  float lambda_;
  float last_loss_ = 0.0F;
  bool exhausted_ = false;
};

}  // namespace

ClassScanScheduler Tabor::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.base.mad_threshold;
  options.base_seed = config_.base.seed;
  options.pool = config_.base.scan_pool;
  options.external_probe_cache = config_.base.shared_probe_cache;
  options.early_exit = config_.base.early_exit;
  return ClassScanScheduler(options);
}

TriggerEstimate Tabor::reverse_engineer_class(Network& model, const Dataset& probe,
                                              std::int64_t target_class) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache));
}

TriggerEstimate Tabor::reverse_engineer_class(Network& model, const Dataset& probe,
                                              const ClassScanJob& job) {
  TaborRefineTask task(config_, model, probe, job);
  (void)task.run_steps(config_.base.steps);
  return task.finalize();
}

ScanPlan Tabor::plan() const {
  ScanPlan scan;
  scan.method = name();
  scan.options = make_scheduler().options();
  scan.total_steps = config_.base.steps;
  scan.make_task = [this](Network& clone, const Dataset& data,
                          const ClassScanJob& job) -> std::unique_ptr<ClassRefineTask> {
    return std::make_unique<TaborRefineTask>(config_, clone, data, job);
  };
  return scan;
}

}  // namespace usb
